//! Replication benchmark: `BENCH_failover.json`.
//!
//! The replication counterpart to the `faults` experiment: a
//! primary/replica pair joined by the WAL-shipping channel (see
//! `kiff_serve::replication`), measured in three phases:
//!
//! 1. **Replicated load.** Update batches stream into the primary while
//!    `neighbors` probes hit both nodes. Gates: replica read p99 `<= 2x`
//!    the primary read p99 (**hard** — replica reads must not pay a
//!    replication tax), and steady-state replication lag `<= 1` batch
//!    once the stream drains (**hard** — semi-sync shipping keeps the
//!    replica at most one in-flight batch behind).
//! 2. **Forced failover.** The primary is killed mid-stream; a
//!    [`FailoverClient`] rides through the election. Gate:
//!    client-observed unavailability — from the kill to the first
//!    acknowledged write on the promoted replica — `<= 2s` (**hard**).
//! 3. **Exactly-once verification.** The survivor's recovered state
//!    must be bit-exact against a fault-free in-process replay of every
//!    acknowledged batch, with the applied high-water mark at the last
//!    batch id (**hard**).

use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use kiff_dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff_dataset::zipf::Zipf;
use kiff_dataset::Dataset;
use kiff_online::{OnlineConfig, OnlineKnn, Update};
use kiff_serve::{
    recover, Client, EngineHost, FailoverClient, ReplicationConfig, RetryPolicy, Server,
    ServerConfig, StoreConfig,
};
use kiff_telemetry::Registry;

use super::{Ctx, STREAM_K};

const BATCH: usize = 8;
/// Hard gate: replica read p99 as a multiple of the primary's.
const MAX_REPLICA_READ_FACTOR: f64 = 2.0;
/// Hard gate: replication lag (batches) once the stream drains.
const MAX_STEADY_LAG: u64 = 1;
/// Hard gate: client-observed unavailability across the failover.
const MAX_UNAVAILABILITY_MS: f64 = 2_000.0;
/// Replication heartbeat — elections fire after four silent intervals,
/// so this bounds how fast the failover gate can possibly pass.
const HEARTBEAT: Duration = Duration::from_millis(50);

/// Smaller than the `serve` population: two replicated daemons run per
/// pass, and the subject is the channel, not raw throughput.
fn failover_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    let users = ((4_000.0 * m) as usize).max(600);
    generate_planted(&PlantedConfig {
        name: "bench-failover".to_string(),
        num_users: users,
        num_items: (users * 4) / 5,
        communities: 8,
        ratings_per_user: 20,
        affinity: 0.8,
        ..PlantedConfig::tiny("bench-failover", seed)
    })
    .0
}

/// Zipf-skewed update batches, deterministic in the seed.
fn failover_stream(ds: &Dataset, seed: u64, batches: usize) -> Vec<Vec<Update>> {
    let user_dist = Zipf::new(ds.num_users(), 1.1);
    let item_dist = Zipf::new(ds.num_items(), 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..BATCH)
                .map(|_| Update::AddRating {
                    user: user_dist.sample(&mut rng) as u32,
                    item: item_dist.sample(&mut rng) as u32,
                    rating: 1.0,
                })
                .collect()
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kiff-bench-failover-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Reserves a concrete loopback address (the peer lists must name every
/// daemon up front, so ephemeral binding can't be used here).
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

fn p99_us(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)]
}

struct Daemon {
    addr: String,
    handle: std::thread::JoinHandle<Result<(), kiff_core::KiffError>>,
}

fn spawn_member(
    dir: &PathBuf,
    base: &Dataset,
    addr: &str,
    replica_of: Option<&str>,
    peers: &[String],
) -> Daemon {
    let cfg = StoreConfig::new(dir).with_snapshot_every(0);
    let registry = Registry::new();
    let config = OnlineConfig::new(STREAM_K).with_telemetry(registry.clone());
    let rec = recover(&cfg, base, None, config, None).expect("fresh scratch directory recovers");
    let host = EngineHost::new(rec.engine, Some(rec.store), registry);
    let mut rc = ReplicationConfig::new("127.0.0.1:0")
        .with_peers(peers.to_vec())
        .with_heartbeat(HEARTBEAT);
    if let Some(primary) = replica_of {
        rc = rc.replica_of(primary);
    }
    let server_config = ServerConfig {
        recovery_interval: Duration::from_millis(5),
        replication: Some(rc),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(addr, host, server_config).expect("bind reserved port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    Daemon { addr, handle }
}

fn shutdown_daemon(daemon: Daemon) {
    for _ in 0..50 {
        match Client::connect(&daemon.addr) {
            Ok(mut c) => {
                if c.shutdown().is_ok() {
                    break;
                }
            }
            Err(_) => break, // already down
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon
        .handle
        .join()
        .expect("daemon thread")
        .expect("clean daemon exit");
}

/// Runs the replication benchmark and writes `BENCH_failover.json`.
pub fn failover(ctx: &mut Ctx) -> String {
    let base = failover_dataset(ctx.scale.multiplier, ctx.seed);
    let batches = ((120.0 * ctx.scale.multiplier.clamp(0.05, 2.0)) as usize).max(50);
    let stream = failover_stream(&base, ctx.seed, batches);
    let users = base.num_users() as u32;
    let config = || OnlineConfig::new(STREAM_K);

    let (addr_a, addr_b) = (free_addr(), free_addr());
    let peers = vec![addr_a.clone(), addr_b.clone()];
    let dir_a = scratch("primary");
    let dir_b = scratch("replica");
    let primary = spawn_member(&dir_a, &base, &addr_a, None, &peers);
    let replica = spawn_member(&dir_b, &base, &addr_b, Some(&addr_a), &peers);

    // Phase 1: replicated load. Writes go to the primary; `neighbors`
    // probes hit both nodes so the read p99s compare like-for-like.
    let mut writer = Client::connect(&addr_a).expect("connect primary");
    let mut primary_reader = Client::connect(&addr_a).expect("connect primary reader");
    let mut replica_reader = Client::connect(&addr_b).expect("connect replica reader");
    // Let the channel attach before measuring: the first batches would
    // otherwise race the replica's catch-up dial.
    writer.update_batch(&stream[0], 1).expect("first batch");
    let attach = Instant::now();
    while replica_reader.health().expect("replica health").seq != Some(BATCH as u64) {
        assert!(
            attach.elapsed() < Duration::from_secs(10),
            "replica never attached to the primary"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let split = stream.len() * 2 / 3; // phase 1 load; the rest rides the failover
    let mut primary_reads_us = Vec::new();
    let mut replica_reads_us = Vec::new();
    let mut acked: Vec<Vec<Update>> = vec![stream[0].clone()];
    for (i, batch) in stream[1..split].iter().enumerate() {
        writer
            .update_batch(batch, acked.len() as u64 + 1)
            .expect("replicated write");
        acked.push(batch.clone());
        for probe in 0..2u32 {
            let user = (i as u32 * 7 + probe * 13) % users;
            let t = Instant::now();
            primary_reader.neighbors(user).expect("primary read");
            primary_reads_us.push(t.elapsed().as_secs_f64() * 1e6);
            let t = Instant::now();
            replica_reader.neighbors(user).expect("replica read");
            replica_reads_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    let primary_p99 = p99_us(&mut primary_reads_us);
    let replica_p99 = p99_us(&mut replica_reads_us);
    let read_factor = replica_p99 / primary_p99.max(1e-9);

    // Steady-state lag once the stream drains: semi-sync shipping means
    // at most the one in-flight batch.
    let settle = Instant::now();
    let mut steady_lag = u64::MAX;
    while settle.elapsed() < Duration::from_secs(5) {
        steady_lag = writer.health().expect("primary health").replication_lag;
        if steady_lag <= MAX_STEADY_LAG {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let replicated_seq = replica_reader.health().expect("replica health").seq;
    drop((writer, primary_reader, replica_reader));

    // Phase 2: forced failover. The failover client keeps writing; the
    // primary dies; the gap until the next acknowledged write on the
    // promoted replica is the client-observed unavailability.
    let policy = RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(200),
        seed: ctx.seed,
    };
    let mut fc = FailoverClient::connect(&peers, policy).expect("failover client connects");
    assert_eq!(
        fc.leader(),
        Some(addr_a.as_str()),
        "discovery finds the primary"
    );

    shutdown_daemon(primary);
    let killed = Instant::now();
    let mut unavailability_ms = f64::INFINITY;
    for batch in &stream[split..] {
        let ack = fc.update(batch);
        assert!(ack.is_ok(), "post-kill batch must land: {:?}", ack.err());
        if unavailability_ms.is_infinite() {
            unavailability_ms = killed.elapsed().as_secs_f64() * 1e3;
        }
        acked.push(batch.clone());
    }
    let failed_over = fc.leader() == Some(addr_b.as_str());
    let failovers = fc.failovers();
    let retries = fc.retries();

    // The survivor must have promoted itself with a bumped epoch.
    let mut survivor = Client::connect(&addr_b).expect("connect survivor");
    let promote = Instant::now();
    let health = loop {
        let h = survivor.health().expect("survivor health");
        if h.role.as_deref() == Some("primary") {
            break h;
        }
        assert!(
            promote.elapsed() < Duration::from_secs(10),
            "survivor never promoted"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    drop(survivor);
    shutdown_daemon(replica);

    // Phase 3: exactly-once. Recover the survivor and compare
    // bit-exactly against a fault-free replay of the acknowledged
    // batches.
    let cfg = StoreConfig::new(&dir_b).with_snapshot_every(0);
    let rec = recover(&cfg, &base, None, config(), None).expect("survivor recovers");
    let mut reference = OnlineKnn::new(&base, config());
    for batch in &acked {
        reference.apply_batch(batch.clone());
    }
    let bit_exact = rec.engine.graph().as_ref() == reference.graph().as_ref();
    let hwm_exact = rec.store.batch_hwm() == acked.len() as u64;
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();

    let mut out = String::new();
    out.push_str(&format!(
        "Replication benchmark on {}: {} users, {} update batches of {BATCH}, \
         heartbeat {:?}\n\n\
         phase 1: replicated load ({} batches)\n\
         {:>24}: {primary_p99:>10.0} us\n\
         {:>24}: {replica_p99:>10.0} us ({read_factor:.2}x primary, gate <= {MAX_REPLICA_READ_FACTOR}x)\n\
         {:>24}: {steady_lag:>10} batch(es) (gate <= {MAX_STEADY_LAG})\n\
         {:>24}: {:>10?}\n\n",
        base.name(),
        base.num_users(),
        stream.len(),
        HEARTBEAT,
        split,
        "primary read p99",
        "replica read p99",
        "steady-state lag",
        "replicated seq",
        replicated_seq,
    ));
    out.push_str(&format!(
        "phase 2: forced failover ({} batches ride through)\n\
         {:>24}: {unavailability_ms:>10.1} ms (gate <= {MAX_UNAVAILABILITY_MS:.0})\n\
         {:>24}: {:>10} (leader now {}; {failovers} failover(s), {retries} retries)\n\
         {:>24}: epoch {} role {}\n\n\
         exactly-once: bit_exact={bit_exact} hwm_exact={hwm_exact} \
         (hwm {} == acked {})\n",
        stream.len() - split,
        "unavailability",
        "re-routed",
        failed_over,
        if failed_over { &addr_b } else { "<unchanged>" },
        "survivor",
        health.epoch,
        health.role.as_deref().unwrap_or("?"),
        rec.store.batch_hwm(),
        acked.len(),
    ));

    let mut fail = |msg: String| {
        eprintln!("FAILOVER VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    };
    if read_factor > MAX_REPLICA_READ_FACTOR {
        fail(format!(
            "failover/replica-reads: replica read p99 {replica_p99:.0} us is \
             {read_factor:.2}x the primary's {primary_p99:.0} us (gate <= {MAX_REPLICA_READ_FACTOR}x)"
        ));
    }
    if steady_lag > MAX_STEADY_LAG {
        fail(format!(
            "failover/lag: steady-state replication lag {steady_lag} batches \
             (gate <= {MAX_STEADY_LAG})"
        ));
    }
    if !failed_over || unavailability_ms > MAX_UNAVAILABILITY_MS {
        fail(format!(
            "failover/unavailability: re-routed={failed_over} \
             unavailability {unavailability_ms:.1} ms (gate <= {MAX_UNAVAILABILITY_MS:.0})"
        ));
    }
    if !bit_exact || !hwm_exact || health.epoch == 0 {
        fail(format!(
            "failover/exactly-once: bit_exact={bit_exact} hwm_exact={hwm_exact} \
             epoch={} (hwm {} vs {} acked batches)",
            health.epoch,
            rec.store.batch_hwm(),
            acked.len()
        ));
    }

    let dataset_v = serde_json::json!({
        "name": base.name(),
        "num_users": base.num_users(),
        "num_items": base.num_items(),
        "update_batches": stream.len(),
        "batch": BATCH,
        "heartbeat_ms": HEARTBEAT.as_millis() as u64
    });
    let load_v = serde_json::json!({
        "batches": split,
        "primary_read_p99_us": primary_p99,
        "replica_read_p99_us": replica_p99,
        "replica_read_factor": read_factor,
        "max_replica_read_factor": MAX_REPLICA_READ_FACTOR,
        "steady_lag_batches": steady_lag,
        "max_steady_lag_batches": MAX_STEADY_LAG
    });
    let failover_v = serde_json::json!({
        "batches": stream.len() - split,
        "unavailability_ms": unavailability_ms,
        "max_unavailability_ms": MAX_UNAVAILABILITY_MS,
        "re_routed": failed_over,
        "failovers": failovers,
        "retries": retries,
        "survivor_epoch": health.epoch,
        "survivor_role": health.role
    });
    let exactly_once_v = serde_json::json!({
        "bit_exact": bit_exact,
        "batch_hwm": rec.store.batch_hwm(),
        "acked_batches": acked.len()
    });
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "load": load_v,
        "failover": failover_v,
        "exactly_once": exactly_once_v
    });
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_failover.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_failover.json: {e}"));
    }
    ctx.finish(
        "failover",
        "Replication: primary/replica WAL shipping, forced failover, exactly-once across the kill",
        out,
        &payload,
    )
}
