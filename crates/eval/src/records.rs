//! Serialisable experiment records.
//!
//! The `experiments` binary writes one JSON record per experiment next to
//! the human-readable table, so paper-vs-measured comparisons in
//! EXPERIMENTS.md are backed by machine-checkable data.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One algorithm run on one dataset — the Table II row shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoRunRecord {
    /// Algorithm name (`KIFF`, `NN-Descent`, `HyRec`).
    pub algorithm: String,
    /// Dataset name.
    pub dataset: String,
    /// Neighbourhood size.
    pub k: usize,
    /// Recall against exact ground truth (Eq. 4).
    pub recall: f64,
    /// End-to-end wall time in seconds.
    pub wall_time_s: f64,
    /// Scan rate (fraction, not percent).
    pub scan_rate: f64,
    /// Refinement iterations.
    pub iterations: usize,
    /// Preprocessing share of accumulated worker time.
    pub preprocessing_s: f64,
    /// Candidate-selection share.
    pub candidate_selection_s: f64,
    /// Similarity-computation share.
    pub similarity_s: f64,
}

/// A named experiment with arbitrary JSON payload rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id (`table2`, `fig8`, …).
    pub id: String,
    /// Free-form description.
    pub description: String,
    /// Payload (experiment-specific shape).
    pub data: serde_json::Value,
}

impl ExperimentRecord {
    /// Creates a record with a serialisable payload.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        data: &impl Serialize,
    ) -> serde_json::Result<Self> {
        Ok(Self {
            id: id.into(),
            description: description.into(),
            data: serde_json::to_value(data)?,
        })
    }

    /// Writes the record as pretty JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, text)
    }

    /// Loads a record written by [`ExperimentRecord::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> AlgoRunRecord {
        AlgoRunRecord {
            algorithm: "KIFF".into(),
            dataset: "Wikipedia".into(),
            k: 20,
            recall: 0.99,
            wall_time_s: 4.4,
            scan_rate: 0.0737,
            iterations: 22,
            preprocessing_s: 0.5,
            candidate_selection_s: 0.4,
            similarity_s: 3.0,
        }
    }

    #[test]
    fn run_record_round_trips() {
        let rec = sample_run();
        let json = serde_json::to_string(&rec).unwrap();
        let back: AlgoRunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn experiment_record_save_load() {
        let runs = vec![sample_run()];
        let rec = ExperimentRecord::new("table2", "overall perf", &runs).unwrap();
        let dir = std::env::temp_dir().join("kiff-eval-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table2.json");
        rec.save(&path).unwrap();
        let back = ExperimentRecord::load(&path).unwrap();
        assert_eq!(back.id, "table2");
        let rows: Vec<AlgoRunRecord> = serde_json::from_value(back.data).unwrap();
        assert_eq!(rows, runs);
        std::fs::remove_file(path).ok();
    }
}
