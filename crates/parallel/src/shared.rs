//! Disjoint-range shared slice writes.
//!
//! The flat-CSR assembly in `kiff-core` writes every user's ranked
//! candidates directly into one shared output slice: worker threads own
//! disjoint index ranges (derived from the per-user CSR offsets), so no
//! two workers ever touch the same element. [`SharedSlice`] is the small
//! unsafe cell making that pattern expressible without locks or channels:
//! it hands out `&mut` sub-slices on the caller's promise that concurrent
//! requests never overlap.

use std::marker::PhantomData;

/// A shareable view over a mutable slice that lends out disjoint
/// sub-slices to concurrent workers.
///
/// The aliasing contract is the caller's: [`SharedSlice::slice_mut`] is
/// `unsafe` and must only be called for ranges no other live borrow
/// covers. Bounds are still checked — only the disjointness is trusted.
#[derive(Debug)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper itself only stores the base pointer; element access
// goes through `slice_mut`, whose disjointness contract makes concurrent
// use race-free for `T: Send`.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps `slice` for disjoint concurrent writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Total number of elements behind the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lends out `start..start + len` mutably.
    ///
    /// # Safety
    /// No other live borrow (from this or any thread) may overlap the
    /// requested range for the lifetime of the returned slice.
    ///
    /// # Panics
    /// Panics when the range exceeds the underlying slice.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the whole point: disjoint ranges from a shared handle
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "range {start}..{} out of bounds (len {})",
            start + len,
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parallel_for;

    #[test]
    fn disjoint_parallel_writes_land() {
        let n = 10_000;
        let mut data = vec![0u32; n];
        {
            let shared = SharedSlice::new(&mut data);
            parallel_for(4, n, 64, |range| {
                // SAFETY: parallel_for hands out disjoint ranges.
                let chunk = unsafe { shared.slice_mut(range.start, range.len()) };
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (range.start + i) as u32;
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn zero_length_borrow_at_end_is_fine() {
        let mut data = [1u8, 2, 3];
        let shared = SharedSlice::new(&mut data);
        assert_eq!(unsafe { shared.slice_mut(3, 0) }.len(), 0);
        assert_eq!(shared.len(), 3);
        assert!(!shared.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut data = [0u8; 4];
        let shared = SharedSlice::new(&mut data);
        let _ = unsafe { shared.slice_mut(2, 3) };
    }
}
