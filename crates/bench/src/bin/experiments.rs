//! Regenerates every table and figure of the KIFF paper.
//!
//! ```text
//! experiments all                      # everything, default scales
//! experiments table2 fig8              # selected experiments
//! experiments all --scale 0.25         # quick pass at quarter scale
//! experiments all --threads 4 --seed 7 --out results/
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use kiff_bench::datasets::SuiteScale;
use kiff_bench::experiments::{run_experiment, Ctx, ALL};

struct Args {
    ids: Vec<String>,
    scale: f64,
    seed: u64,
    threads: Option<usize>,
    out: PathBuf,
    recall_floor: Option<f64>,
}

fn usage() -> String {
    format!(
        "usage: experiments <ids...|all> [--scale F] [--seed N] [--threads N] [--out DIR]\n\
         \x20                            [--recall-floor F]\n\
         --recall-floor fails the run when a streaming experiment's\n\
         recall-vs-rebuild drops below F (the CI bench-regression gate)\n\
         experiments: {}",
        ALL.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        scale: 1.0,
        seed: 42,
        threads: None,
        out: PathBuf::from("results"),
        recall_floor: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = iter
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                args.seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                args.threads = Some(
                    iter.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                );
            }
            "--out" => {
                args.out = PathBuf::from(iter.next().ok_or("--out needs a value")?);
            }
            "--recall-floor" => {
                args.recall_floor = Some(
                    iter.next()
                        .ok_or("--recall-floor needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --recall-floor: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'\n{}", usage()));
            }
            id => args.ids.push(id.to_string()),
        }
    }
    if args.ids.is_empty() {
        return Err(usage());
    }
    if args.ids.iter().any(|i| i == "all") {
        args.ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut ctx = Ctx::new(
        args.out.clone(),
        SuiteScale {
            multiplier: args.scale,
        },
        args.seed,
        args.threads,
    );
    ctx.recall_floor = args.recall_floor;
    let suite_start = Instant::now();
    let mut failed = false;
    for id in &args.ids {
        eprintln!("== {id} ==");
        let start = Instant::now();
        match run_experiment(id, &mut ctx) {
            Ok(text) => {
                println!("{text}");
                eprintln!("== {id} done in {:.1}s ==\n", start.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    eprintln!(
        "suite finished in {:.1}s; reports in {}",
        suite_start.elapsed().as_secs_f64(),
        args.out.display()
    );
    if !ctx.violations.is_empty() {
        eprintln!("recall floor violations:");
        for v in &ctx.violations {
            eprintln!("  {v}");
        }
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
