//! CSR-backed bipartite dataset storage.

use std::sync::OnceLock;

use kiff_collections::{Csr, CsrBuilder};

use crate::types::{ItemId, ProfileRef, Rating, UserId};

/// A sparse user–item dataset: the labelled bipartite graph `G = (U ∪ I, E,
/// ρ)` of §III-A.
///
/// User profiles are stored as CSR rows sorted by item id. Item profiles
/// (the transpose, `IP_i = {u : i ∈ UP_u}`) are derived lazily on first use
/// and cached — their construction cost is exactly what Table IV of the
/// paper measures, so [`Dataset::build_item_profiles`] also exists as an
/// explicit, uncached operation for benchmarking.
#[derive(Debug)]
pub struct Dataset {
    name: String,
    num_items: usize,
    users: Csr,
    items_cache: OnceLock<Csr>,
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            num_items: self.num_items,
            users: self.users.clone(),
            items_cache: OnceLock::new(),
        }
    }
}

impl Dataset {
    /// Wraps an already-built user CSR. Prefer [`DatasetBuilder`].
    pub fn from_users_csr(name: impl Into<String>, num_items: usize, users: Csr) -> Self {
        Self {
            name: name.into(),
            num_items,
            users,
            items_cache: OnceLock::new(),
        }
    }

    /// Human-readable dataset name (e.g. `"wikipedia-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `|U|` — number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.users.rows()
    }

    /// `|I|` — number of items.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// `|E|` — number of ratings (edges of the bipartite graph).
    #[inline]
    pub fn num_ratings(&self) -> usize {
        self.users.nnz()
    }

    /// Fraction of present edges over the complete bipartite graph:
    /// `|E| / (|U| × |I|)` — the quantity Table I calls *density*.
    pub fn density(&self) -> f64 {
        let denom = self.num_users() as f64 * self.num_items as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.num_ratings() as f64 / denom
        }
    }

    /// The profile `UP_u`: sorted items rated by `u` with their ratings.
    #[inline]
    pub fn user_profile(&self, u: UserId) -> ProfileRef<'_> {
        let (items, ratings) = self.users.row_entries(u);
        ProfileRef { items, ratings }
    }

    /// `|UP_u|`.
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        self.users.degree(u)
    }

    /// The raw user-side CSR.
    pub fn users_csr(&self) -> &Csr {
        &self.users
    }

    /// The item-side CSR (`IP_i` rows), built on first call and cached.
    pub fn item_profiles(&self) -> &Csr {
        self.items_cache
            .get_or_init(|| self.users.transpose(self.num_items))
    }

    /// Builds the item profiles *without* caching — the measurable
    /// preprocessing step of Table IV.
    pub fn build_item_profiles(&self) -> Csr {
        self.users.transpose(self.num_items)
    }

    /// The profile `IP_i`: sorted users who rated `i` (with ratings).
    pub fn item_profile(&self, i: ItemId) -> ProfileRef<'_> {
        let (items, ratings) = self.item_profiles().row_entries(i);
        ProfileRef { items, ratings }
    }

    /// Iterates all `(user, item, rating)` triples.
    pub fn iter_ratings(&self) -> impl Iterator<Item = (UserId, ItemId, Rating)> + '_ {
        self.users.iter_edges()
    }

    /// Renames the dataset (used by the density-family derivation).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// Incremental [`Dataset`] construction from `(user, item, rating)` triples.
///
/// Triples may arrive in any order; duplicate `(user, item)` pairs merge by
/// summing ratings (a repeated check-in means "visited again").
#[derive(Debug)]
pub struct DatasetBuilder {
    name: String,
    num_items: usize,
    csr: CsrBuilder,
}

impl DatasetBuilder {
    /// Builder for a dataset of `num_users × num_items`.
    pub fn new(name: impl Into<String>, num_users: usize, num_items: usize) -> Self {
        Self {
            name: name.into(),
            num_items,
            csr: CsrBuilder::new(num_users),
        }
    }

    /// Pre-allocates space for `n` ratings.
    pub fn reserve(&mut self, n: usize) {
        self.csr.reserve_edges(n);
    }

    /// Records `ρ(user, item) = rating`.
    ///
    /// # Panics
    /// Panics if `user` or `item` is out of the declared bounds, or the
    /// rating is not finite and positive — the metrics of the paper
    /// (Eq. 5–6) require non-negative similarity contributions.
    pub fn add_rating(&mut self, user: UserId, item: ItemId, rating: Rating) {
        assert!(
            (item as usize) < self.num_items,
            "item {item} out of bounds ({} items)",
            self.num_items
        );
        assert!(
            rating.is_finite() && rating > 0.0,
            "rating must be finite and positive, got {rating}"
        );
        self.csr.push(user, item, rating);
    }

    /// Number of ratings recorded so far.
    pub fn len(&self) -> usize {
        self.csr.len()
    }

    /// Whether no rating has been recorded.
    pub fn is_empty(&self) -> bool {
        self.csr.is_empty()
    }

    /// Assembles the dataset.
    pub fn build(self) -> Dataset {
        Dataset {
            name: self.name,
            num_items: self.num_items,
            users: self.csr.build(),
            items_cache: OnceLock::new(),
        }
    }
}

/// Builds the paper's Figure 2 toy dataset (Alice, Bob, Carl, Dave / book,
/// coffee, cheese, shopping). Used across the workspace's tests and docs.
pub fn figure2_toy() -> Dataset {
    let mut b = DatasetBuilder::new("figure2-toy", 4, 4);
    b.add_rating(0, 0, 1.0); // Alice: book
    b.add_rating(0, 1, 1.0); // Alice: coffee
    b.add_rating(1, 1, 1.0); // Bob: coffee
    b.add_rating(1, 2, 1.0); // Bob: cheese
    b.add_rating(2, 3, 1.0); // Carl: shopping
    b.add_rating(3, 3, 1.0); // Dave: shopping
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_dataset_dimensions() {
        let ds = figure2_toy();
        assert_eq!(ds.num_users(), 4);
        assert_eq!(ds.num_items(), 4);
        assert_eq!(ds.num_ratings(), 6);
        assert!((ds.density() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn user_profiles_match_figure2() {
        let ds = figure2_toy();
        assert_eq!(ds.user_profile(0).items, &[0, 1]); // Alice: book, coffee
        assert_eq!(ds.user_profile(1).items, &[1, 2]); // Bob: coffee, cheese
        assert_eq!(ds.user_profile(2).items, &[3]); // Carl: shopping
        assert_eq!(ds.user_degree(3), 1);
    }

    #[test]
    fn item_profiles_are_the_transpose() {
        let ds = figure2_toy();
        assert_eq!(ds.item_profile(0).items, &[0]); // book: Alice
        assert_eq!(ds.item_profile(1).items, &[0, 1]); // coffee: Alice, Bob
        assert_eq!(ds.item_profile(3).items, &[2, 3]); // shopping: Carl, Dave
    }

    #[test]
    fn item_profiles_cached_and_uncached_agree() {
        let ds = figure2_toy();
        assert_eq!(ds.build_item_profiles(), *ds.item_profiles());
    }

    #[test]
    fn duplicate_ratings_merge() {
        let mut b = DatasetBuilder::new("dup", 1, 2);
        b.add_rating(0, 1, 2.0);
        b.add_rating(0, 1, 3.0);
        let ds = b.build();
        assert_eq!(ds.num_ratings(), 1);
        assert_eq!(ds.user_profile(0).rating(1), Some(5.0));
    }

    #[test]
    fn clone_preserves_content() {
        let ds = figure2_toy();
        let _ = ds.item_profiles(); // populate cache
        let clone = ds.clone();
        assert_eq!(clone.num_ratings(), ds.num_ratings());
        assert_eq!(clone.item_profile(1).items, ds.item_profile(1).items);
    }

    #[test]
    #[should_panic(expected = "rating must be finite and positive")]
    fn rejects_nonpositive_rating() {
        let mut b = DatasetBuilder::new("bad", 1, 1);
        b.add_rating(0, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_item() {
        let mut b = DatasetBuilder::new("bad", 1, 1);
        b.add_rating(0, 5, 1.0);
    }

    #[test]
    fn iter_ratings_yields_all_triples() {
        let ds = figure2_toy();
        let triples: Vec<_> = ds.iter_ratings().collect();
        assert_eq!(triples.len(), 6);
        assert!(triples.contains(&(1, 2, 1.0)));
    }
}
