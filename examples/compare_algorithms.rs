//! Head-to-head comparison of KIFF against NN-Descent and HyRec — a
//! miniature Table II on a Wikipedia-like dataset.
//!
//! Run with: `cargo run --release --example compare_algorithms`

use kiff::prelude::*;
use kiff_dataset::PaperDataset;
use kiff_eval::table::{fmt_percent, fmt_secs, Table};

fn main() {
    // A quarter-scale Wikipedia stand-in (~1.5k users).
    let dataset = PaperDataset::Wikipedia.generate(0.25, 42);
    let k = 20;
    println!(
        "dataset: {} ({} users, {} items, {} ratings)\n",
        dataset.name(),
        dataset.num_users(),
        dataset.num_items(),
        dataset.num_ratings()
    );

    let sim = WeightedCosine::fit(&dataset);
    let exact = exact_knn(&dataset, &sim, k, None);

    let mut table = Table::new(&["Approach", "recall", "wall-time", "scan rate", "#iter"]);

    let (g, s) = NnDescent::new(GreedyConfig::new(k)).run(&dataset, &sim);
    table.push_row(&[
        "NN-Descent".to_string(),
        format!("{:.2}", recall(&exact, &g)),
        fmt_secs(s.total_time.as_secs_f64()),
        fmt_percent(s.scan_rate),
        s.iterations.to_string(),
    ]);

    let (g, s) = HyRec::new(GreedyConfig::new(k)).run(&dataset, &sim);
    table.push_row(&[
        "HyRec".to_string(),
        format!("{:.2}", recall(&exact, &g)),
        fmt_secs(s.total_time.as_secs_f64()),
        fmt_percent(s.scan_rate),
        s.iterations.to_string(),
    ]);

    let result = Kiff::new(KiffConfig::new(k)).run(&dataset, &sim);
    table.push_row(&[
        "KIFF".to_string(),
        format!("{:.2}", recall(&exact, &result.graph)),
        fmt_secs(result.stats.total_time.as_secs_f64()),
        fmt_percent(result.stats.scan_rate),
        result.stats.iterations.to_string(),
    ]);

    println!("{}", table.render());
    println!(
        "KIFF preprocessing (counting phase): {} of its total time",
        fmt_percent(
            result.stats.preprocessing_time().as_secs_f64()
                / result.stats.total_time.as_secs_f64().max(1e-12)
        )
    );
}
