//! Calibrated stand-ins for the four evaluation datasets of Table I.
//!
//! | Dataset   | |U|     | |I|       | |E|        | Density | avg |UP| | avg |IP| |
//! |-----------|---------|-----------|------------|---------|----------|----------|
//! | Wikipedia | 6,110   | 2,381     | 103,689    | 0.7127% | 16.9     | 43.5     |
//! | Arxiv     | 18,772  | 18,772    | 396,160    | 0.1124% | 21.1     | 21.1     |
//! | Gowalla   | 107,092 | 1,280,969 | 3,981,334  | 0.0029% | 37.1     | 3.1      |
//! | DBLP      | 715,610 | 1,401,494 | 11,755,605 | 0.0011% | 16.4     | 8.3      |
//!
//! Each preset generates a dataset matching these shapes at a configurable
//! scale. Default scales shrink Gowalla and DBLP so the full experiment
//! suite (including exact ground truth) runs on a laptop; scaling keeps the
//! average profile sizes — the quantity KIFF's candidate-set sizes depend
//! on — constant (DESIGN.md §3 discusses why this preserves the
//! comparison).

use crate::dataset::Dataset;
use crate::generators::bipartite::{generate_bipartite, BipartiteConfig};
use crate::generators::coauthor::{
    filter_users_by_min_weight, generate_coauthorship, CoauthorConfig,
};
use crate::generators::RatingModel;

/// The four evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Wikipedia adminship votes: binary ratings, densest of the four.
    Wikipedia,
    /// Arxiv GR-QC + ASTRO-PH co-authorship: symmetric, unweighted.
    Arxiv,
    /// Gowalla check-ins: count ratings, huge item space, tiny item
    /// profiles.
    Gowalla,
    /// DBLP co-authorship: weighted, sparsest and largest.
    Dblp,
}

/// Reference row of Table I.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// `|U|` in the paper.
    pub users: usize,
    /// `|I|` in the paper.
    pub items: usize,
    /// `|E|` in the paper.
    pub ratings: usize,
    /// Density (%) in the paper.
    pub density_percent: f64,
    /// Average user-profile size in the paper.
    pub avg_up: f64,
    /// Average item-profile size in the paper.
    pub avg_ip: f64,
}

impl PaperDataset {
    /// All four datasets in the paper's presentation order.
    pub const ALL: [PaperDataset; 4] = [
        PaperDataset::Wikipedia,
        PaperDataset::Arxiv,
        PaperDataset::Gowalla,
        PaperDataset::Dblp,
    ];

    /// Lower-case name used in reports and file names.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Wikipedia => "Wikipedia",
            PaperDataset::Arxiv => "Arxiv",
            PaperDataset::Gowalla => "Gowalla",
            PaperDataset::Dblp => "DBLP",
        }
    }

    /// The paper's Table I numbers for this dataset.
    pub fn paper_row(self) -> PaperRow {
        match self {
            PaperDataset::Wikipedia => PaperRow {
                users: 6_110,
                items: 2_381,
                ratings: 103_689,
                density_percent: 0.7127,
                avg_up: 16.9,
                avg_ip: 43.5,
            },
            PaperDataset::Arxiv => PaperRow {
                users: 18_772,
                items: 18_772,
                ratings: 396_160,
                density_percent: 0.1124,
                avg_up: 21.1,
                avg_ip: 21.1,
            },
            PaperDataset::Gowalla => PaperRow {
                users: 107_092,
                items: 1_280_969,
                ratings: 3_981_334,
                density_percent: 0.0029,
                avg_up: 37.1,
                avg_ip: 3.1,
            },
            PaperDataset::Dblp => PaperRow {
                users: 715_610,
                items: 1_401_494,
                ratings: 11_755_605,
                density_percent: 0.0011,
                avg_up: 16.4,
                avg_ip: 8.3,
            },
        }
    }

    /// Default generation scale: full size for the two small datasets,
    /// shrunk for Gowalla and DBLP (see module docs).
    pub fn default_scale(self) -> f64 {
        match self {
            PaperDataset::Wikipedia | PaperDataset::Arxiv => 1.0,
            PaperDataset::Gowalla => 0.20,
            PaperDataset::Dblp => 1.0 / 16.0,
        }
    }

    /// Generates the calibrated stand-in at `scale`.
    pub fn generate(self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0 && scale <= 2.0, "unreasonable scale {scale}");
        let row = self.paper_row();
        let users = ((row.users as f64 * scale) as usize).max(50);
        let items = ((row.items as f64 * scale) as usize).max(50);
        let ratings = ((row.ratings as f64 * scale) as usize).max(users);
        match self {
            PaperDataset::Wikipedia => generate_bipartite(&BipartiteConfig {
                name: "Wikipedia".to_string(),
                num_users: users,
                num_items: items,
                target_ratings: ratings,
                user_degree_min: 1,
                user_degree_max: (items as u32).min(1_500),
                item_exponent: 0.7,
                rating_model: RatingModel::Binary,
                seed,
            }),
            PaperDataset::Gowalla => generate_bipartite(&BipartiteConfig {
                name: "Gowalla".to_string(),
                num_users: users,
                num_items: items,
                target_ratings: ratings,
                user_degree_min: 1,
                user_degree_max: (items as u32).min(3_000),
                item_exponent: 0.7,
                rating_model: RatingModel::Counts { mean: 1.6 },
                seed,
            }),
            PaperDataset::Arxiv => generate_coauthorship(&CoauthorConfig {
                name: "Arxiv".to_string(),
                num_authors: users,
                // |E| counts directed edges; pairs are half that.
                target_pairs: ratings / 2,
                paper_size_min: 2,
                // ASTRO-PH hosts large collaborations.
                paper_size_max: 40,
                paper_size_exponent: 1.6,
                preferential_bias: 0.65,
                weighted: false,
                seed,
            }),
            PaperDataset::Dblp => {
                // Generate collaboration over the full author (item) space,
                // then keep authors with ≥ 5 co-publications as users,
                // mirroring the snapshot construction of §IV-A4.
                let full = generate_coauthorship(&CoauthorConfig {
                    name: "DBLP".to_string(),
                    num_authors: items,
                    target_pairs: (ratings as f64 * 0.75) as usize,
                    paper_size_min: 2,
                    paper_size_max: 12,
                    paper_size_exponent: 1.8,
                    preferential_bias: 0.7,
                    weighted: true,
                    seed,
                });
                let (filtered, _) = filter_users_by_min_weight(&full, 5.0);
                filtered
            }
        }
    }

    /// Generates at the default scale.
    pub fn generate_default(self, seed: u64) -> Dataset {
        self.generate(self.default_scale(), seed)
    }
}

/// The `k` used in the headline comparison (Table II): 20 everywhere except
/// DBLP, where the paper uses 50.
pub fn paper_k(dataset: PaperDataset) -> usize {
    match dataset {
        PaperDataset::Dblp => 50,
        _ => 20,
    }
}

/// The reduced `k` of the sensitivity analysis (Table VIII): 20 → 10, and
/// 50 → 20 for DBLP.
pub fn reduced_k(dataset: PaperDataset) -> usize {
    match dataset {
        PaperDataset::Dblp => 20,
        _ => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    #[test]
    fn wikipedia_small_scale_shapes() {
        let ds = PaperDataset::Wikipedia.generate(0.2, 1);
        let stats = DatasetStats::compute(&ds);
        // Average |UP| is scale-invariant and should track the paper.
        assert!(
            (stats.avg_user_profile - 16.9).abs() < 4.0,
            "avg |UP| = {}",
            stats.avg_user_profile
        );
        assert!(stats.num_users > 1000);
    }

    #[test]
    fn arxiv_is_symmetric() {
        let ds = PaperDataset::Arxiv.generate(0.05, 2);
        assert_eq!(ds.num_users(), ds.num_items());
        for u in (0..ds.num_users() as u32).step_by(97) {
            for (v, _) in ds.user_profile(u).iter() {
                assert!(ds.user_profile(v).rating(u).is_some());
            }
        }
    }

    #[test]
    fn gowalla_item_profiles_are_tiny() {
        let ds = PaperDataset::Gowalla.generate(0.02, 3);
        let stats = DatasetStats::compute(&ds);
        // Paper: avg |IP| = 3.1 — many more items than users.
        assert!(
            stats.avg_item_profile < 8.0,
            "avg |IP| = {}",
            stats.avg_item_profile
        );
        assert!(stats.num_items > 4 * stats.num_users);
    }

    #[test]
    fn dblp_users_are_a_strict_subset_of_items() {
        let ds = PaperDataset::Dblp.generate(0.01, 4);
        assert!(ds.num_users() < ds.num_items());
        assert!(ds.num_users() > 0);
        // Weighted ratings.
        assert!(ds.iter_ratings().all(|(_, _, r)| r >= 1.0));
    }

    #[test]
    fn density_ordering_matches_table1() {
        // Wikipedia > Arxiv > Gowalla > DBLP in density.
        let wiki = PaperDataset::Wikipedia.generate(0.2, 5).density();
        let arxiv = PaperDataset::Arxiv.generate(0.1, 5).density();
        let gowalla = PaperDataset::Gowalla.generate(0.02, 5).density();
        assert!(wiki > arxiv, "wiki {wiki} vs arxiv {arxiv}");
        assert!(arxiv > gowalla, "arxiv {arxiv} vs gowalla {gowalla}");
    }

    #[test]
    fn k_values_match_paper() {
        assert_eq!(paper_k(PaperDataset::Wikipedia), 20);
        assert_eq!(paper_k(PaperDataset::Dblp), 50);
        assert_eq!(reduced_k(PaperDataset::Arxiv), 10);
        assert_eq!(reduced_k(PaperDataset::Dblp), 20);
    }
}
