//! Bench for Fig. 9: KIFF across gamma values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::small_bench_dataset;
use kiff_bench::runner::{run_kiff_with, RunOptions};

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(16);
    let opts = RunOptions {
        k: 10,
        threads: Some(2),
        seed: 2,
    };
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for gamma in [5usize, 20, 80] {
        group.bench_with_input(BenchmarkId::new("kiff_gamma", gamma), &gamma, |b, &g| {
            b.iter(|| black_box(run_kiff_with(&ds, opts, Some(g), None)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
