//! Collaborator suggestion on an Arxiv-like co-authorship network.
//!
//! Bibliographic collections are one of the paper's four evaluation
//! domains (§IV-A): authors are both users and items, and two authors are
//! similar when their co-author sets overlap. The KNN graph then suggests
//! *new* collaborators: highly similar authors one has never published
//! with.
//!
//! Run with: `cargo run --release --example coauthor_suggestions`

use kiff::prelude::*;
use kiff_dataset::generators::coauthor::{generate_coauthorship, CoauthorConfig};

fn main() {
    let dataset = generate_coauthorship(&CoauthorConfig {
        name: "arxiv-demo".to_string(),
        num_authors: 3_000,
        target_pairs: 30_000,
        paper_size_min: 2,
        paper_size_max: 12,
        paper_size_exponent: 1.6,
        preferential_bias: 0.65,
        weighted: false,
        seed: 7,
    });
    println!(
        "co-authorship network: {} authors, {} collaboration edges",
        dataset.num_users(),
        dataset.num_ratings() / 2
    );

    // Build the KNN graph with KIFF under Jaccard (overlap of co-author
    // sets is the natural metric here, and KIFF is metric-generic). A
    // slightly larger k leaves room beyond the existing co-authors.
    let graph = KnnGraphBuilder::new(15)
        .metric(kiff::builder::Metric::Jaccard)
        .build(&dataset);

    // Suggest collaborators for early-career authors (5-8 co-authors): a
    // 15-neighbourhood reaches well past their existing collaborators, so
    // the remaining neighbours are genuinely new people who share many
    // co-authors with them. (For heavy hitters, everyone similar is
    // already a co-author — the classic link-prediction saturation.)
    let targets: Vec<u32> = (0..dataset.num_users() as u32)
        .filter(|&a| (5..=8).contains(&dataset.user_degree(a)))
        .take(5)
        .collect();

    println!("\nsuggestions (similar authors with no joint paper yet):");
    for &author in &targets {
        let coauthors = dataset.user_profile(author);
        let suggestions: Vec<String> = graph
            .neighbors(author)
            .iter()
            .filter(|n| coauthors.rating(n.id).is_none())
            .take(3)
            .map(|n| format!("author#{} (Jaccard {:.2})", n.id, n.sim))
            .collect();
        println!(
            "  author#{author:<5} ({} co-authors) -> {}",
            coauthors.len(),
            if suggestions.is_empty() {
                "all top peers are already co-authors".to_string()
            } else {
                suggestions.join(", ")
            }
        );
    }
}
