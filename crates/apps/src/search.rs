//! Similarity search for out-of-graph queries over a KNN graph.
//!
//! §VI distinguishes KNN *graph construction* (this workspace) from NN
//! *search* — "find the k nearest neighbors of a small number of
//! individual elements (the queries)". The two meet in practice: a
//! constructed KNN graph is itself a serviceable search index. Like the
//! navigable-small-world family the paper cites (Malkov et al.), a query
//! is answered by a greedy best-first walk: start from seed users who
//! share an item with the query, repeatedly expand the most promising
//! frontier user's graph neighbours, and stop when the frontier cannot
//! improve the current result set.

use std::collections::BinaryHeap;
use std::sync::Arc;

use kiff_collections::{FxHashMap, FxHashSet};
use kiff_core::KiffError;
use kiff_dataset::{Dataset, ItemId, ProfileRef, Rating, UserId};
use kiff_graph::KnnGraph;
use kiff_online::ReadView;
use kiff_similarity::functions;

/// An owned query profile: sorted items with ratings, built from arbitrary
/// `(item, rating)` pairs (duplicates resolve to the last value).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    items: Vec<ItemId>,
    ratings: Vec<Rating>,
}

impl QueryProfile {
    /// Builds a profile from `(item, rating)` pairs in any order.
    pub fn new(pairs: impl IntoIterator<Item = (ItemId, Rating)>) -> Self {
        let mut map: FxHashMap<ItemId, Rating> = FxHashMap::default();
        for (item, rating) in pairs {
            map.insert(item, rating);
        }
        let mut items: Vec<ItemId> = map.keys().copied().collect();
        items.sort_unstable();
        let ratings = items.iter().map(|i| map[i]).collect();
        Self { items, ratings }
    }

    /// Binary (presence-only) profile from item ids.
    pub fn from_items(items: impl IntoIterator<Item = ItemId>) -> Self {
        Self::new(items.into_iter().map(|i| (i, 1.0)))
    }

    /// Number of items in the query.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the query is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrowed view usable with the similarity functions.
    pub fn as_ref(&self) -> ProfileRef<'_> {
        ProfileRef {
            items: &self.items,
            ratings: &self.ratings,
        }
    }
}

/// Profile-vs-profile similarity for query scoring (the query is not a
/// dataset user, so the id-based [`kiff_similarity::Similarity`] trait
/// does not apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMetric {
    /// Cosine over presence vectors.
    BinaryCosine,
    /// Cosine over rating vectors (the paper's default).
    #[default]
    Cosine,
    /// Jaccard's coefficient over item sets.
    Jaccard,
    /// Ruzicka (weighted Jaccard).
    WeightedJaccard,
    /// Dice coefficient.
    Dice,
}

impl ProfileMetric {
    /// Similarity between two profiles under this metric.
    pub fn sim(&self, a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
        match self {
            ProfileMetric::BinaryCosine => functions::binary_cosine(a, b),
            ProfileMetric::Cosine => functions::weighted_cosine(a, b),
            ProfileMetric::Jaccard => functions::jaccard(a, b),
            ProfileMetric::WeightedJaccard => functions::weighted_jaccard(a, b),
            ProfileMetric::Dice => functions::dice(a, b),
        }
    }
}

/// One search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Matched user.
    pub user: UserId,
    /// Similarity between the query and the user's profile.
    pub sim: f64,
}

/// Frontier entry ordered by similarity (ties towards smaller id, for
/// determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    sim: f64,
    user: UserId,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.user.cmp(&self.user))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A greedy best-first searcher over `(dataset, graph)`.
///
/// Owns `Arc` snapshots of both sides, so one can be built per request
/// from a live engine's graph snapshot without lifetime gymnastics —
/// the shape the `kiff-serve` daemon needs. Cloning is cheap (two
/// `Arc` bumps).
///
/// ```
/// use std::sync::Arc;
/// use kiff_apps::{GraphSearcher, ProfileMetric, QueryProfile};
/// use kiff_core::kiff_knn;
/// use kiff_dataset::dataset::figure2_toy;
///
/// let ds = Arc::new(figure2_toy());
/// let graph = Arc::new(kiff_knn(&ds, 1));
/// let searcher = GraphSearcher::new(ds, graph, ProfileMetric::Cosine).unwrap();
/// // A visitor who likes coffee (item 1) matches Alice and Bob.
/// let hits = searcher.search(&QueryProfile::from_items([1]), 2, 10);
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphSearcher {
    dataset: Arc<Dataset>,
    graph: Arc<KnnGraph>,
    metric: ProfileMetric,
    /// Maximum seed users drawn from the query's item profiles.
    max_seeds: usize,
}

impl GraphSearcher {
    /// Wraps a dataset and a KNN graph built over its users, or
    /// [`KiffError::Mismatch`] when they disagree on the user count.
    pub fn new(
        dataset: Arc<Dataset>,
        graph: Arc<KnnGraph>,
        metric: ProfileMetric,
    ) -> Result<Self, KiffError> {
        if dataset.num_users() != graph.num_users() {
            return Err(KiffError::Mismatch {
                detail: format!(
                    "graph has {} users, dataset has {}",
                    graph.num_users(),
                    dataset.num_users()
                ),
            });
        }
        Ok(Self {
            dataset,
            graph,
            metric,
            max_seeds: 8,
        })
    }

    /// Builds over an engine's published [`ReadView`]: two `Arc` bumps,
    /// no copies, no engine lock — the serving daemon's per-request
    /// path. A view is captured between mutations, so its graph and
    /// dataset always agree on the user count and this cannot fail.
    pub fn from_view(view: &ReadView, metric: ProfileMetric) -> Self {
        Self::new(Arc::clone(&view.dataset), Arc::clone(&view.graph), metric)
            .expect("a ReadView is batch-consistent by construction")
    }

    /// Pre-PR-7 borrowing constructor, kept as a migration shim: clones
    /// both sides into fresh `Arc`s (an `O(|E|)` copy per call).
    ///
    /// # Panics
    /// If the graph was built over a different number of users.
    #[doc(hidden)]
    #[deprecated(note = "build over Arc snapshots via GraphSearcher::new")]
    pub fn from_refs(dataset: &Dataset, graph: &KnnGraph, metric: ProfileMetric) -> Self {
        Self::new(Arc::new(dataset.clone()), Arc::new(graph.clone()), metric)
            .expect("graph and dataset disagree on |U|")
    }

    /// [`GraphSearcher::search`] with the empty-query case reported as
    /// [`KiffError::EmptyQuery`] instead of a silently empty result —
    /// the daemon's request path.
    pub fn try_search(
        &self,
        query: &QueryProfile,
        k: usize,
        ef: usize,
    ) -> Result<Vec<SearchResult>, KiffError> {
        if query.is_empty() {
            return Err(KiffError::EmptyQuery);
        }
        Ok(self.search(query, k, ef))
    }

    /// Overrides the seed budget (default 8).
    pub fn with_max_seeds(mut self, seeds: usize) -> Self {
        self.max_seeds = seeds.max(1);
        self
    }

    /// Top-`k` users most similar to `query`, explored with a result
    /// beam of width `ef` (clamped to at least `k`). Larger `ef` trades
    /// time for recall, as in navigable-small-world search.
    pub fn search(&self, query: &QueryProfile, k: usize, ef: usize) -> Vec<SearchResult> {
        self.search_with_stats(query, k, ef).0
    }

    /// Like [`GraphSearcher::search`], additionally reporting how many
    /// users were visited (= similarity evaluations spent). The walk's
    /// selling point over a scan is that this stays far below `|U|`.
    pub fn search_with_stats(
        &self,
        query: &QueryProfile,
        k: usize,
        ef: usize,
    ) -> (Vec<SearchResult>, usize) {
        if query.is_empty() || self.dataset.num_users() == 0 || k == 0 {
            return (Vec::new(), 0);
        }
        let ef = ef.max(k);
        let q = query.as_ref();

        let mut visited: FxHashSet<UserId> = FxHashSet::default();
        let mut frontier: BinaryHeap<Frontier> = BinaryHeap::new();
        // Result beam: a min-ordered vector kept at ≤ ef entries.
        let mut beam: Vec<Frontier> = Vec::with_capacity(ef + 1);

        let push = |u: UserId,
                    visited: &mut FxHashSet<UserId>,
                    frontier: &mut BinaryHeap<Frontier>,
                    beam: &mut Vec<Frontier>| {
            if !visited.insert(u) {
                return;
            }
            let sim = self.metric.sim(q, self.dataset.user_profile(u));
            let entry = Frontier { sim, user: u };
            frontier.push(entry);
            let pos = beam.partition_point(|e| *e < entry);
            beam.insert(pos, entry);
            if beam.len() > ef {
                beam.remove(0);
            }
        };

        for seed in self.seeds(query) {
            push(seed, &mut visited, &mut frontier, &mut beam);
        }

        while let Some(best) = frontier.pop() {
            // The beam's floor can only rise; once the best frontier entry
            // cannot beat it, expansion stops. Ties count as "cannot beat":
            // on tie-dense binary data a strict comparison degenerates into
            // a breadth-first sweep of an entire similarity plateau.
            if beam.len() >= ef && best.sim <= beam[0].sim {
                break;
            }
            for n in self.graph.neighbors(best.user) {
                push(n.id, &mut visited, &mut frontier, &mut beam);
            }
        }

        let results = beam
            .iter()
            .rev()
            .take(k)
            .filter(|e| e.sim > 0.0)
            .map(|e| SearchResult {
                user: e.user,
                sim: e.sim,
            })
            .collect();
        (results, visited.len())
    }

    /// Linear-scan reference: scores every user. Used to measure the
    /// graph walk's recall and speed-up in demos and tests.
    pub fn brute(&self, query: &QueryProfile, k: usize) -> Vec<SearchResult> {
        let q = query.as_ref();
        let mut all: Vec<SearchResult> = (0..self.dataset.num_users() as u32)
            .map(|u| SearchResult {
                user: u,
                sim: self.metric.sim(q, self.dataset.user_profile(u)),
            })
            .filter(|r| r.sim > 0.0)
            .collect();
        all.sort_unstable_by(|a, b| {
            b.sim
                .partial_cmp(&a.sim)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.user.cmp(&b.user))
        });
        all.truncate(k);
        all
    }

    /// Seed users, drawn from the item profiles of the query's items,
    /// rarest items first. The rarest item's raters are *all* seeded:
    /// any user whose profile contains every query item rates the rarest
    /// one too, so exact matches are guaranteed entry points. (If the
    /// rarest query item is a blockbuster this approaches a scan of its
    /// raters — who are exactly the plausible matches, so the work is
    /// spent where the answers are.) Remaining items contribute up to
    /// `max_seeds` more; unrated-everywhere queries fall back to evenly
    /// spread seeds.
    fn seeds(&self, query: &QueryProfile) -> Vec<UserId> {
        let mut order: Vec<ItemId> = query
            .items
            .iter()
            .copied()
            .filter(|&i| (i as usize) < self.dataset.num_items())
            .collect();
        order.sort_unstable_by_key(|&i| self.dataset.item_profile(i).len());

        let mut seeds = Vec::with_capacity(self.max_seeds);
        let mut seen: FxHashSet<UserId> = FxHashSet::default();
        let mut first_nonempty = true;
        'outer: for i in order {
            let profile = self.dataset.item_profile(i);
            if profile.is_empty() {
                continue;
            }
            let exhaustive = std::mem::take(&mut first_nonempty);
            for (u, _) in profile.iter() {
                if seen.insert(u) {
                    seeds.push(u);
                    if !exhaustive && seeds.len() >= self.max_seeds {
                        break 'outer;
                    }
                }
            }
        }
        if seeds.is_empty() {
            // Nothing shares an item with the query: spread seeds evenly
            // so the walk can still locate weakly similar users.
            let n = self.dataset.num_users();
            let step = (n / self.max_seeds).max(1);
            seeds.extend((0..n).step_by(step).take(self.max_seeds).map(|u| u as u32));
        }
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_core::{Kiff, KiffConfig};
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_dataset::DatasetBuilder;
    use kiff_similarity::WeightedCosine;

    fn searchable(seed: u64) -> (Dataset, KnnGraph) {
        let ds = generate_bipartite(&BipartiteConfig::tiny("srch", seed));
        let sim = WeightedCosine::fit(&ds);
        let graph = Kiff::new(KiffConfig::new(10)).run(&ds, &sim).graph;
        (ds, graph)
    }

    fn searcher_over(ds: &Dataset, graph: &KnnGraph, metric: ProfileMetric) -> GraphSearcher {
        GraphSearcher::new(Arc::new(ds.clone()), Arc::new(graph.clone()), metric).unwrap()
    }

    #[test]
    fn mismatched_graph_is_an_error() {
        let (ds, _) = searchable(29);
        let graph = KnnGraph::from_neighbors(1, vec![vec![]]);
        let err =
            GraphSearcher::new(Arc::new(ds), Arc::new(graph), ProfileMetric::Cosine).unwrap_err();
        assert!(matches!(err, KiffError::Mismatch { .. }));
    }

    #[test]
    fn empty_query_is_a_typed_error() {
        let (ds, graph) = searchable(53);
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Cosine);
        let err = searcher
            .try_search(&QueryProfile::new(std::iter::empty()), 5, 20)
            .unwrap_err();
        assert!(matches!(err, KiffError::EmptyQuery));
        // Non-empty queries pass through to the plain search path.
        let hits = searcher
            .try_search(&QueryProfile::new(ds.user_profile(0).iter()), 3, 30)
            .unwrap();
        assert!(!hits.is_empty());
    }

    #[test]
    fn finds_own_profile() {
        let (ds, graph) = searchable(31);
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Cosine);
        // Query = user 5's exact profile; top hit must have similarity 1.
        let p = ds.user_profile(5);
        let query = QueryProfile::new(p.iter());
        let hits = searcher.search(&query, 3, 30);
        assert!(!hits.is_empty());
        assert!(
            (hits[0].sim - 1.0).abs() < 1e-9,
            "top sim = {}",
            hits[0].sim
        );
    }

    #[test]
    fn walk_matches_brute_force_closely() {
        let (ds, graph) = searchable(37);
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Cosine);
        let mut agree = 0usize;
        let mut total = 0usize;
        for u in (0..ds.num_users() as u32).step_by(29) {
            let query = QueryProfile::new(ds.user_profile(u).iter());
            let walk: FxHashSet<u32> = searcher
                .search(&query, 5, 50)
                .into_iter()
                .map(|r| r.user)
                .collect();
            for b in searcher.brute(&query, 5) {
                total += 1;
                agree += usize::from(walk.contains(&b.user));
            }
        }
        let recall = agree as f64 / total as f64;
        assert!(recall > 0.85, "walk recall vs brute = {recall}");
    }

    #[test]
    fn results_sorted_and_positive() {
        let (ds, graph) = searchable(41);
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Jaccard);
        let query = QueryProfile::new(ds.user_profile(0).iter());
        let hits = searcher.search(&query, 10, 40);
        for w in hits.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
        assert!(hits.iter().all(|h| h.sim > 0.0));
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (ds, graph) = searchable(43);
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Cosine);
        let query = QueryProfile::new(std::iter::empty());
        assert!(searcher.search(&query, 5, 20).is_empty());
    }

    #[test]
    fn unknown_items_fall_back_to_spread_seeds() {
        let mut b = DatasetBuilder::new("fb", 4, 10);
        b.add_rating(0, 0, 1.0);
        b.add_rating(1, 0, 1.0);
        b.add_rating(2, 1, 1.0);
        b.add_rating(3, 1, 1.0);
        let ds = b.build();
        let graph = kiff_graph::exact_knn(&ds, &WeightedCosine::new(), 2, None);
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Cosine);
        // Item 9 is rated by nobody: seeds fall back, zero-sim hits are
        // filtered out.
        let query = QueryProfile::from_items([9]);
        assert!(searcher.search(&query, 3, 10).is_empty());
    }

    #[test]
    fn query_profile_dedups_and_sorts() {
        let q = QueryProfile::new([(5, 1.0), (2, 3.0), (5, 2.0)]);
        assert_eq!(q.len(), 2);
        let r = q.as_ref();
        assert_eq!(r.items, &[2, 5]);
        assert_eq!(r.rating(5), Some(2.0), "last write wins");
    }

    #[test]
    fn larger_beam_never_hurts() {
        let (ds, graph) = searchable(47);
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Cosine);
        let query = QueryProfile::new(ds.user_profile(7).iter());
        let narrow = searcher.search(&query, 5, 5);
        let wide = searcher.search(&query, 5, 100);
        let best_narrow = narrow.first().map_or(0.0, |r| r.sim);
        let best_wide = wide.first().map_or(0.0, |r| r.sim);
        assert!(best_wide >= best_narrow - 1e-12);
    }

    #[test]
    fn metric_enum_dispatches() {
        let a = QueryProfile::new([(0, 2.0), (1, 1.0)]);
        let b = QueryProfile::new([(0, 2.0), (1, 1.0)]);
        for m in [
            ProfileMetric::BinaryCosine,
            ProfileMetric::Cosine,
            ProfileMetric::Jaccard,
            ProfileMetric::WeightedJaccard,
            ProfileMetric::Dice,
        ] {
            let s = m.sim(a.as_ref(), b.as_ref());
            assert!((s - 1.0).abs() < 1e-12, "{m:?} self-sim = {s}");
        }
    }
}
