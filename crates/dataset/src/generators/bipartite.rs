//! General bipartite user–item generator with long-tailed degrees.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use kiff_collections::FxHashSet;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::generators::RatingModel;
use crate::zipf::{power_law_degrees, Zipf};

/// Configuration of the bipartite generator.
///
/// User profile sizes follow a bounded power law solved to hit
/// `target_ratings / num_users` on average; item popularity follows a Zipf
/// law with exponent `item_exponent` over a randomly permuted item order
/// (so popular items are not clustered at low ids).
#[derive(Debug, Clone)]
pub struct BipartiteConfig {
    /// Dataset name.
    pub name: String,
    /// `|U|`.
    pub num_users: usize,
    /// `|I|`.
    pub num_items: usize,
    /// Desired `|E|` (the realised count is within a few percent — duplicate
    /// draws are rejected per user).
    pub target_ratings: usize,
    /// Smallest allowed user profile.
    pub user_degree_min: u32,
    /// Largest allowed user profile.
    pub user_degree_max: u32,
    /// Zipf exponent of item popularity (0 = uniform; ~0.7 matches the
    /// long-tailed item profiles of Fig. 4b).
    pub item_exponent: f64,
    /// Rating semantics.
    pub rating_model: RatingModel,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl BipartiteConfig {
    /// A small smoke-test configuration used across the workspace's tests.
    pub fn tiny(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            num_users: 300,
            num_items: 200,
            target_ratings: 3000,
            user_degree_min: 1,
            user_degree_max: 60,
            item_exponent: 0.7,
            rating_model: RatingModel::Binary,
            seed,
        }
    }
}

/// Generates a dataset from `config`. Deterministic in the seed.
pub fn generate_bipartite(config: &BipartiteConfig) -> Dataset {
    assert!(config.num_users > 0 && config.num_items > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mean = (config.target_ratings as f64 / config.num_users as f64)
        .max(f64::from(config.user_degree_min) + 0.5);
    let d_max = config
        .user_degree_max
        .min(config.num_items as u32)
        .max(config.user_degree_min + 1);
    let mean = mean.min(f64::from(d_max) - 0.5);
    let degrees = power_law_degrees(
        config.num_users,
        config.user_degree_min,
        d_max,
        mean,
        &mut rng,
    );

    // Popularity ranks → shuffled item ids.
    let popularity = Zipf::new(config.num_items, config.item_exponent);
    let mut perm: Vec<u32> = (0..config.num_items as u32).collect();
    perm.shuffle(&mut rng);

    let total: usize = degrees.iter().map(|&d| d as usize).sum();
    let mut builder = DatasetBuilder::new(&config.name, config.num_users, config.num_items);
    builder.reserve(total);
    let mut chosen: FxHashSet<u32> = FxHashSet::default();
    for (u, &degree) in degrees.iter().enumerate() {
        chosen.clear();
        let degree = degree as usize;
        // Rejection sampling with a generous attempt budget; the budget only
        // binds for degrees close to |I| where collisions are frequent.
        let mut attempts = 0usize;
        let budget = 20 * degree + 100;
        while chosen.len() < degree && attempts < budget {
            attempts += 1;
            chosen.insert(perm[popularity.sample(&mut rng)]);
        }
        // Top up deterministically if rejection stalled (rare).
        let mut next = rng.gen_range(0..config.num_items as u32);
        while chosen.len() < degree {
            if chosen.insert(next) {
                continue;
            }
            next = (next + 1) % config.num_items as u32;
        }
        for &item in chosen.iter() {
            builder.add_rating(u as u32, item, config.rating_model.sample(&mut rng));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{item_profile_sizes, DatasetStats};

    #[test]
    fn respects_dimensions() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("t", 42));
        assert_eq!(ds.num_users(), 300);
        assert_eq!(ds.num_items(), 200);
        assert!(ds.num_ratings() > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = BipartiteConfig::tiny("t", 7);
        let a = generate_bipartite(&cfg);
        let b = generate_bipartite(&cfg);
        assert_eq!(a.users_csr(), b.users_csr());
        let cfg2 = BipartiteConfig {
            seed: 8,
            ..BipartiteConfig::tiny("t", 7)
        };
        let c = generate_bipartite(&cfg2);
        assert_ne!(a.users_csr(), c.users_csr());
    }

    #[test]
    fn hits_target_ratings_approximately() {
        let cfg = BipartiteConfig {
            name: "cal".into(),
            num_users: 2000,
            num_items: 1000,
            target_ratings: 30_000,
            user_degree_min: 1,
            user_degree_max: 300,
            item_exponent: 0.7,
            rating_model: RatingModel::Binary,
            seed: 1,
        };
        let ds = generate_bipartite(&cfg);
        let e = ds.num_ratings() as f64;
        assert!(
            (e - 30_000.0).abs() / 30_000.0 < 0.15,
            "|E| = {e}, wanted ≈ 30000"
        );
    }

    #[test]
    fn degrees_within_bounds() {
        let cfg = BipartiteConfig {
            user_degree_min: 3,
            user_degree_max: 20,
            ..BipartiteConfig::tiny("b", 3)
        };
        let ds = generate_bipartite(&cfg);
        for u in 0..ds.num_users() as u32 {
            let d = ds.user_degree(u);
            assert!((3..=20).contains(&d), "user {u} degree {d}");
        }
    }

    #[test]
    fn item_popularity_is_skewed() {
        let ds = generate_bipartite(&BipartiteConfig {
            num_users: 3000,
            num_items: 500,
            target_ratings: 30_000,
            ..BipartiteConfig::tiny("skew", 5)
        });
        let mut sizes = item_profile_sizes(&ds);
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let avg = DatasetStats::compute(&ds).avg_item_profile;
        // The most popular item is far above average — long tail.
        assert!(sizes[0] as f64 > 4.0 * avg, "top={} avg={avg}", sizes[0]);
    }

    #[test]
    fn profiles_have_no_duplicate_items() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("dup", 11));
        for u in 0..ds.num_users() as u32 {
            let items = ds.user_profile(u).items;
            assert!(items.windows(2).all(|w| w[0] < w[1]), "user {u}");
        }
    }

    #[test]
    fn count_ratings_are_integral() {
        let cfg = BipartiteConfig {
            rating_model: RatingModel::Counts { mean: 2.0 },
            ..BipartiteConfig::tiny("counts", 13)
        };
        let ds = generate_bipartite(&cfg);
        for (_, _, r) in ds.iter_ratings() {
            assert!(r >= 1.0 && r.fract() == 0.0);
        }
    }
}
