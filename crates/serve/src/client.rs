//! Clients for the `kiff-serve` wire protocol.
//!
//! [`Client`] is the raw blocking connection: one request in flight,
//! [`Client::request`] writes a frame and blocks for the answer.
//! Server-side failures come back as [`KiffError::Remote`] carrying the
//! server's error `kind` tag *and* the failing op, so a caller can
//! branch on the failure class — `unavailable` vs `overloaded` vs
//! `corrupt` — across the wire.
//!
//! [`SelfHealingClient`] wraps it with the retry discipline a client of
//! a degradable daemon needs:
//!
//! * **Backoff** — exponential with deterministic seeded jitter
//!   ([`RetryPolicy`]); the same seed reproduces the same retry timing,
//!   which keeps chaos tests replayable.
//! * **Reconnect** — a torn connection (server killed it, network blip)
//!   is dropped and redialled on the next attempt.
//! * **Idempotent writes** — every update batch carries a
//!   client-assigned id from a monotonic counter seeded off the
//!   server's applied high-water mark (via `health`) at connect. If an
//!   acknowledgement is lost and the batch is retried, the server
//!   recognises the id and answers `deduped` instead of applying it
//!   twice — the exactly-once half of the fault-tolerance story,
//!   proven by the chaos proptest in `tests/serve_faults.rs`.
//!
//! Only [`KiffError::is_retryable`] failures are retried: a malformed
//! request or an unknown user fails identically every time and is
//! returned immediately.

use std::net::TcpStream;
use std::time::Duration;

use kiff_core::fault::xorshift64;
use kiff_core::KiffError;
use kiff_graph::Neighbor;
use kiff_online::Update;
use serde_json::Value;

use crate::wire::{read_frame, write_frame, Request};

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

fn protocol(msg: impl Into<String>) -> KiffError {
    KiffError::Protocol(msg.into())
}

/// A decoded `health` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// `healthy`, `degraded`, or `recovering`.
    pub status: String,
    /// Last persisted sequence (`None` on a storeless daemon).
    pub seq: Option<u64>,
    /// Applied-batch high-water mark (0 = no batch ids seen).
    pub batch_hwm: u64,
    /// Seconds since the last successful WAL append.
    pub wal_age_secs: Option<u64>,
    /// Seconds since the last snapshot.
    pub snapshot_age_secs: Option<u64>,
    /// `primary` or `replica` (`None` on a standalone daemon).
    pub role: Option<String>,
    /// Replication leadership epoch (0 when standalone).
    pub epoch: u64,
    /// Batches the daemon lags behind its primary (0 on the primary:
    /// its deepest per-replica queue).
    pub replication_lag: u64,
    /// The daemon's replication-channel address, when replicating.
    pub repl_addr: Option<String>,
}

/// A decoded `update` acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateAck {
    /// Updates applied by this request (0 when deduped).
    pub applied: u64,
    /// Whether the server recognised the batch id as already applied.
    pub deduped: bool,
    /// The WAL sequence after the batch (`None` on a storeless daemon).
    pub seq: Option<u64>,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Self, KiffError> {
        let stream = TcpStream::connect(addr).map_err(KiffError::Io)?;
        stream.set_nodelay(true).map_err(KiffError::Io)?;
        Ok(Self { stream })
    }

    /// Sends `request` and returns the decoded response body. An
    /// `"ok": false` response is mapped to [`KiffError::Remote`].
    pub fn request(&mut self, request: &Request) -> Result<Value, KiffError> {
        write_frame(&mut self.stream, &request.to_value())?;
        let response = read_frame(&mut self.stream)?.ok_or_else(|| {
            // The server vanished between our frame and its answer — a
            // transport failure the self-healing client must retry.
            KiffError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        let ok = response
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| protocol("response missing `ok`"))?;
        if ok {
            return Ok(response);
        }
        let error = response.get("error");
        let kind = error
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let op = error
            .and_then(|e| e.get("op"))
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let message = error
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap_or("unspecified server error")
            .to_string();
        if kind == "not_primary" {
            // Rebuild the typed refusal so a failover-aware caller can
            // read the leader hint without string-matching the message.
            let leader = error
                .and_then(|e| e.get("leader"))
                .and_then(Value::as_str)
                .map(String::from);
            return Err(KiffError::NotPrimary { leader });
        }
        Err(KiffError::Remote { kind, op, message })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), KiffError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// `user`'s current neighbours, best first.
    pub fn neighbors(&mut self, user: u32) -> Result<Vec<Neighbor>, KiffError> {
        let response = self.request(&Request::Neighbors { user })?;
        response
            .get("neighbors")
            .and_then(Value::as_array)
            .ok_or_else(|| protocol("response missing `neighbors`"))?
            .iter()
            .map(|nb| {
                let id = nb
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| protocol("neighbor missing `id`"))?
                    as u32;
                let sim = nb
                    .get("sim")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| protocol("neighbor missing `sim`"))?;
                Ok(Neighbor { id, sim })
            })
            .collect()
    }

    /// Top-`top` item recommendations for `user`, as `(item, score)`.
    pub fn recommend(&mut self, user: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Recommend { user, top })?;
        pairs(&response, "recommendations", "item", "score")
    }

    /// Predicted rating of `item` by `user` (`None` = no basis).
    pub fn predict(&mut self, user: u32, item: u32) -> Result<Option<f64>, KiffError> {
        let response = self.request(&Request::Predict { user, item })?;
        match response
            .field("prediction")
            .map_err(|_| protocol("response missing `prediction`"))?
        {
            Value::Null => Ok(None),
            v => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| protocol("non-numeric prediction")),
        }
    }

    /// The `top` users most interested in `item`, as `(user, score)`.
    pub fn audience(&mut self, item: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Audience { item, top })?;
        pairs(&response, "audience", "user", "score")
    }

    /// Users most similar to the ad-hoc profile `items`.
    pub fn search(
        &mut self,
        items: &[(u32, f32)],
        top: usize,
    ) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Search {
            items: items.to_vec(),
            top,
        })?;
        pairs(&response, "hits", "user", "sim")
    }

    /// Applies `updates` (persisted server-side first); returns the
    /// number applied.
    pub fn update(&mut self, updates: &[Update]) -> Result<u64, KiffError> {
        self.update_batch(updates, 0).map(|ack| ack.applied)
    }

    /// Applies `updates` carrying the idempotence id `batch` (0 = none).
    pub fn update_batch(&mut self, updates: &[Update], batch: u64) -> Result<UpdateAck, KiffError> {
        let response = self.request(&Request::Update {
            updates: updates.to_vec(),
            batch,
        })?;
        let applied = response
            .get("applied")
            .and_then(Value::as_u64)
            .ok_or_else(|| protocol("response missing `applied`"))?;
        let deduped = response
            .get("deduped")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let seq = response.get("seq").and_then(Value::as_u64);
        Ok(UpdateAck {
            applied,
            deduped,
            seq,
        })
    }

    /// Engine lifetime statistics as a raw JSON object.
    pub fn stats(&mut self) -> Result<Value, KiffError> {
        self.request(&Request::Stats)
    }

    /// The daemon's health tristate plus progress marks.
    pub fn health(&mut self) -> Result<Health, KiffError> {
        let response = self.request(&Request::Health)?;
        let status = response
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| protocol("response missing `status`"))?
            .to_string();
        Ok(Health {
            status,
            seq: response.get("seq").and_then(Value::as_u64),
            batch_hwm: response
                .get("batch_hwm")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            wal_age_secs: response.get("wal_age_secs").and_then(Value::as_u64),
            snapshot_age_secs: response.get("snapshot_age_secs").and_then(Value::as_u64),
            role: response
                .get("role")
                .and_then(Value::as_str)
                .map(String::from),
            epoch: response.get("epoch").and_then(Value::as_u64).unwrap_or(0),
            replication_lag: response
                .get("replication_lag_batches")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            repl_addr: response
                .get("repl_addr")
                .and_then(Value::as_str)
                .map(String::from),
        })
    }

    /// The daemon's telemetry snapshot as a raw JSON object.
    pub fn metrics(&mut self) -> Result<Value, KiffError> {
        let response = self.request(&Request::Metrics)?;
        response
            .get("metrics")
            .cloned()
            .ok_or_else(|| protocol("response missing `metrics`"))
    }

    /// Forces a snapshot; returns the covered sequence number.
    pub fn snapshot(&mut self) -> Result<u64, KiffError> {
        let response = self.request(&Request::Snapshot)?;
        response
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| protocol("response missing `seq`"))
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), KiffError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

fn pairs(
    response: &Value,
    field: &str,
    key: &str,
    value: &str,
) -> Result<Vec<(u32, f64)>, KiffError> {
    response
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| protocol(format!("response missing `{field}`")))?
        .iter()
        .map(|entry| {
            let k = entry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| protocol(format!("entry missing `{key}`")))?
                as u32;
            let v = entry
                .get(value)
                .and_then(Value::as_f64)
                .ok_or_else(|| protocol(format!("entry missing `{value}`")))?;
            Ok((k, v))
        })
        .collect()
}

/// Retry discipline for [`SelfHealingClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed — the same seed reproduces the same retry timing.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 42,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based): exponential,
    /// capped at `max_delay`, scaled by a deterministic jitter in
    /// `[0.5, 1.0)` drawn from `rng`. Jitter decorrelates a fleet of
    /// clients hammering a recovering daemon; determinism keeps a given
    /// seed's schedule replayable.
    pub fn delay(&self, retry: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.saturating_sub(1).min(20));
        let capped = exp.min(self.max_delay);
        let jitter = 0.5 + 0.5 * ((xorshift64(rng) >> 11) as f64 / (1u64 << 53) as f64);
        capped.mul_f64(jitter)
    }
}

/// A client that survives daemon degradation, overload, and torn
/// connections (see the module docs for the full discipline).
#[derive(Debug)]
pub struct SelfHealingClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    next_batch: u64,
    rng: u64,
    retries: u64,
    reconnects: u64,
    delays: Vec<Duration>,
}

/// Most recent backoff delays kept in [`SelfHealingClient::delay_log`].
const DELAY_LOG_CAP: usize = 64;

impl SelfHealingClient {
    /// Connects to `addr` and seeds the batch-id counter just past the
    /// server's applied high-water mark, so this client's ids never
    /// collide with batches a previous client already landed.
    pub fn connect(addr: &str, policy: RetryPolicy) -> Result<Self, KiffError> {
        let rng = policy.seed | 1;
        let mut client = Self {
            addr: addr.to_string(),
            policy,
            conn: None,
            next_batch: 1,
            rng,
            retries: 0,
            reconnects: 0,
            delays: Vec::new(),
        };
        let health = client.health()?;
        client.next_batch = health.batch_hwm + 1;
        Ok(client)
    }

    /// Retries attempted so far (observability for tests and benches).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnects performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The id the next update batch will carry.
    pub fn next_batch(&self) -> u64 {
        self.next_batch
    }

    /// The most recent backoff delays slept (newest last, capped at 64
    /// entries) — lets tests assert the schedule resets after a success
    /// and replays exactly under a fixed seed.
    pub fn delay_log(&self) -> &[Duration] {
        &self.delays
    }

    fn conn(&mut self) -> Result<&mut Client, KiffError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(&self.addr)?);
            self.reconnects += 1;
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Runs `f` against a live connection, retrying retryable failures
    /// with backoff and reconnecting after transport errors. The final
    /// error is returned once attempts are exhausted.
    fn with_retry<T>(
        &mut self,
        mut f: impl FnMut(&mut Client) -> Result<T, KiffError>,
    ) -> Result<T, KiffError> {
        let mut retry = 0u32;
        loop {
            let result = match self.conn() {
                Ok(conn) => f(conn),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            // A Remote error means the server answered — the connection
            // is fine; anything else (io, protocol) means the stream
            // state is unknown, so redial.
            if !matches!(err, KiffError::Remote { .. }) {
                self.conn = None;
            }
            retry += 1;
            if !err.is_retryable() || retry >= self.policy.max_attempts {
                return Err(err);
            }
            self.retries += 1;
            let delay = self.policy.delay(retry, &mut self.rng);
            if self.delays.len() == DELAY_LOG_CAP {
                self.delays.remove(0);
            }
            self.delays.push(delay);
            std::thread::sleep(delay);
        }
    }

    /// Applies `updates` exactly once: the batch carries a fresh id, and
    /// a retry after a lost acknowledgement is deduped server-side. The
    /// counter only advances after success, so a batch that exhausts its
    /// retries can be re-submitted under the same id.
    pub fn update(&mut self, updates: &[Update]) -> Result<UpdateAck, KiffError> {
        let batch = self.next_batch;
        let ack = self.with_retry(|c| c.update_batch(updates, batch))?;
        self.next_batch = batch + 1;
        Ok(ack)
    }

    /// Liveness probe, with retry.
    pub fn ping(&mut self) -> Result<(), KiffError> {
        self.with_retry(Client::ping)
    }

    /// `user`'s neighbours, with retry.
    pub fn neighbors(&mut self, user: u32) -> Result<Vec<Neighbor>, KiffError> {
        self.with_retry(|c| c.neighbors(user))
    }

    /// Recommendations, with retry.
    pub fn recommend(&mut self, user: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        self.with_retry(|c| c.recommend(user, top))
    }

    /// Rating prediction, with retry.
    pub fn predict(&mut self, user: u32, item: u32) -> Result<Option<f64>, KiffError> {
        self.with_retry(|c| c.predict(user, item))
    }

    /// Daemon health, with retry.
    pub fn health(&mut self) -> Result<Health, KiffError> {
        self.with_retry(Client::health)
    }

    /// Engine statistics, with retry.
    pub fn stats(&mut self) -> Result<Value, KiffError> {
        self.with_retry(Client::stats)
    }

    /// Telemetry snapshot, with retry.
    pub fn metrics(&mut self) -> Result<Value, KiffError> {
        self.with_retry(Client::metrics)
    }

    /// Graceful shutdown — *not* retried: after a transport failure the
    /// daemon may already be stopping, and a redial would just hang on
    /// a dead listener.
    pub fn shutdown(&mut self) -> Result<(), KiffError> {
        self.conn()?.shutdown()
    }
}

/// A client for a whole replication group: it discovers the leader via
/// each endpoint's `health`, routes writes to it, optionally spreads
/// reads round-robin across every reachable daemon, and fails over
/// automatically.
///
/// On [`KiffError::NotPrimary`] the carried leader hint re-routes the
/// very next attempt; on a transport error the leader is re-discovered
/// from scratch (it may have just died). The batch-id counter is
/// seeded **once**, from the first leader's applied high-water mark,
/// and only ever moves forward — so a batch retried across a failover
/// reuses its original id and the new leader's dedup high-water mark
/// makes the write exactly-once even when the ack was lost mid-kill.
#[derive(Debug)]
pub struct FailoverClient {
    endpoints: Vec<String>,
    policy: RetryPolicy,
    spread_reads: bool,
    leader: Option<String>,
    // Survives `leader = None` forgets, so a crash-failover (forget →
    // rediscover) still counts as a leader change.
    last_leader: Option<String>,
    conn: Option<Client>,
    read_conns: Vec<Option<Client>>,
    next_read: usize,
    next_batch: u64,
    rng: u64,
    retries: u64,
    failovers: u64,
}

impl FailoverClient {
    /// Connects to a group given its client-port `endpoints`, finds the
    /// leader, and seeds the batch-id counter past its applied
    /// high-water mark.
    pub fn connect(endpoints: &[String], policy: RetryPolicy) -> Result<Self, KiffError> {
        let rng = policy.seed | 1;
        let mut client = Self {
            endpoints: endpoints.to_vec(),
            policy,
            spread_reads: false,
            leader: None,
            last_leader: None,
            conn: None,
            read_conns: endpoints.iter().map(|_| None).collect(),
            next_read: 0,
            next_batch: 1,
            rng,
            retries: 0,
            failovers: 0,
        };
        let health = client.with_write_retry(Client::health)?;
        client.next_batch = client.next_batch.max(health.batch_hwm + 1);
        Ok(client)
    }

    /// Spreads read ops round-robin across every endpoint instead of
    /// pinning them to the leader. Replica reads may trail the leader
    /// by the reported replication lag.
    pub fn spread_reads(mut self, spread: bool) -> Self {
        self.spread_reads = spread;
        self
    }

    /// The client address writes currently route to, if known.
    pub fn leader(&self) -> Option<&str> {
        self.leader.as_deref()
    }

    /// Leader changes observed since connect.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Retries attempted so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The id the next update batch will carry.
    pub fn next_batch(&self) -> u64 {
        self.next_batch
    }

    fn note_leader(&mut self, addr: String) {
        if self.last_leader.as_deref().is_some_and(|old| old != addr) {
            self.failovers += 1;
        }
        if self.leader.as_deref() != Some(addr.as_str()) {
            self.conn = None;
        }
        self.last_leader = Some(addr.clone());
        self.leader = Some(addr);
    }

    /// Polls every endpoint's `health` and elects the answer with the
    /// newest epoch whose role is `primary` (a standalone daemon —
    /// no role — also counts: the group may not be replicated yet).
    fn discover(&mut self) -> Result<(), KiffError> {
        let mut best: Option<(u64, String)> = None;
        for addr in self.endpoints.clone() {
            let Ok(mut probe) = Client::connect(&addr) else {
                continue;
            };
            let Ok(health) = probe.health() else {
                continue;
            };
            let leads = matches!(health.role.as_deref(), Some("primary") | None);
            let newer = match &best {
                Some((epoch, _)) => health.epoch > *epoch,
                None => true,
            };
            if leads && newer {
                best = Some((health.epoch, addr));
            }
        }
        match best {
            Some((_, addr)) => {
                self.note_leader(addr);
                Ok(())
            }
            None => Err(KiffError::Unavailable {
                op: "discover".into(),
                detail: "no primary reachable on any endpoint".into(),
            }),
        }
    }

    fn leader_conn(&mut self) -> Result<&mut Client, KiffError> {
        if self.leader.is_none() {
            self.discover()?;
        }
        if self.conn.is_none() {
            let addr = self.leader.clone().expect("discovered above");
            match Client::connect(&addr) {
                Ok(conn) => self.conn = Some(conn),
                Err(e) => {
                    // The believed leader is unreachable; forget it so
                    // the next attempt re-discovers.
                    self.leader = None;
                    return Err(e);
                }
            }
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn backoff(&mut self, retry: u32) {
        self.retries += 1;
        std::thread::sleep(self.policy.delay(retry, &mut self.rng));
    }

    /// Runs `f` against the leader, following `NotPrimary` hints and
    /// re-discovering after transport failures.
    fn with_write_retry<T>(
        &mut self,
        mut f: impl FnMut(&mut Client) -> Result<T, KiffError>,
    ) -> Result<T, KiffError> {
        let mut retry = 0u32;
        loop {
            let result = match self.leader_conn() {
                Ok(conn) => f(conn),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            match &err {
                KiffError::NotPrimary { leader } => {
                    self.conn = None;
                    match leader {
                        Some(addr) => self.note_leader(addr.clone()),
                        None => self.leader = None,
                    }
                }
                // The server answered; the connection and leadership
                // are fine — the failure is the op's own.
                KiffError::Remote { .. } => {}
                // Transport trouble: the leader may be the casualty.
                _ => {
                    self.conn = None;
                    self.leader = None;
                }
            }
            retry += 1;
            if !err.is_retryable() || retry >= self.policy.max_attempts {
                return Err(err);
            }
            self.backoff(retry);
        }
    }

    /// Runs `f` against some live endpoint (round-robin when read
    /// spreading is on, the leader otherwise).
    fn with_read_retry<T>(
        &mut self,
        mut f: impl FnMut(&mut Client) -> Result<T, KiffError>,
    ) -> Result<T, KiffError> {
        if !self.spread_reads {
            return self.with_write_retry(f);
        }
        let mut retry = 0u32;
        loop {
            let mut last_err = None;
            for _ in 0..self.endpoints.len() {
                let i = self.next_read % self.endpoints.len();
                self.next_read = self.next_read.wrapping_add(1);
                if self.read_conns[i].is_none() {
                    match Client::connect(&self.endpoints[i]) {
                        Ok(conn) => self.read_conns[i] = Some(conn),
                        Err(e) => {
                            last_err = Some(e);
                            continue;
                        }
                    }
                }
                match f(self.read_conns[i].as_mut().expect("just connected")) {
                    Ok(v) => return Ok(v),
                    Err(e) => {
                        if !matches!(e, KiffError::Remote { .. }) {
                            self.read_conns[i] = None;
                        }
                        if !e.is_retryable() {
                            return Err(e);
                        }
                        last_err = Some(e);
                    }
                }
            }
            let err = last_err.unwrap_or(KiffError::Unavailable {
                op: "read".into(),
                detail: "no endpoints configured".into(),
            });
            retry += 1;
            if !err.is_retryable() || retry >= self.policy.max_attempts {
                return Err(err);
            }
            self.backoff(retry);
        }
    }

    /// Applies `updates` exactly once across failovers: the id is
    /// assigned up front and the counter advances only after success,
    /// so a batch replayed against a new leader is deduped by the
    /// replicated high-water mark.
    pub fn update(&mut self, updates: &[Update]) -> Result<UpdateAck, KiffError> {
        let batch = self.next_batch;
        let ack = self.with_write_retry(|c| c.update_batch(updates, batch))?;
        self.next_batch = batch + 1;
        Ok(ack)
    }

    /// `user`'s neighbours, from any live endpoint.
    pub fn neighbors(&mut self, user: u32) -> Result<Vec<Neighbor>, KiffError> {
        self.with_read_retry(|c| c.neighbors(user))
    }

    /// Recommendations, from any live endpoint.
    pub fn recommend(&mut self, user: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        self.with_read_retry(|c| c.recommend(user, top))
    }

    /// Rating prediction, from any live endpoint.
    pub fn predict(&mut self, user: u32, item: u32) -> Result<Option<f64>, KiffError> {
        self.with_read_retry(|c| c.predict(user, item))
    }

    /// The leader's health (goes to the leader even when reads spread:
    /// callers use it for authoritative seq/hwm marks).
    pub fn health(&mut self) -> Result<Health, KiffError> {
        self.with_write_retry(Client::health)
    }

    /// Engine statistics from the leader.
    pub fn stats(&mut self) -> Result<Value, KiffError> {
        self.with_write_retry(Client::stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy::default();
        let mut rng_a = policy.seed | 1;
        let mut rng_b = policy.seed | 1;
        let a: Vec<Duration> = (1..=7).map(|r| policy.delay(r, &mut rng_a)).collect();
        let b: Vec<Duration> = (1..=7).map(|r| policy.delay(r, &mut rng_b)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        // Jitter keeps every delay within [0.5, 1.0) of the exponential.
        for (i, d) in a.iter().enumerate() {
            let exp = policy
                .base_delay
                .saturating_mul(1u32 << i)
                .min(policy.max_delay);
            assert!(*d >= exp.mul_f64(0.5) && *d < exp, "retry {}: {d:?}", i + 1);
        }
        // The cap binds from retry 7 on (10ms * 2^6 = 640ms > 500ms).
        assert!(a[6] <= policy.max_delay);
    }

    use crate::server::{EngineHost, Server};
    use kiff_core::fault::{self, points, Trigger};
    use kiff_dataset::dataset::figure2_toy;
    use kiff_online::{OnlineConfig, OnlineKnn};
    use kiff_telemetry::Registry;

    fn spawn_toy_daemon() -> (std::thread::JoinHandle<Result<(), KiffError>>, String) {
        let ds = figure2_toy();
        let reg = Registry::new();
        let config = OnlineConfig::new(2).with_telemetry(reg.clone());
        let engine = Box::new(OnlineKnn::new(&ds, config));
        let host = EngineHost::new(engine, None, reg);
        let server = Server::bind("127.0.0.1:0", host).unwrap();
        let addr = server.local_addr().to_string();
        (std::thread::spawn(move || server.run()), addr)
    }

    fn fast_policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(16),
            seed,
        }
    }

    #[test]
    fn backoff_schedule_resets_after_success() {
        let (daemon, addr) = spawn_toy_daemon();
        let policy = fast_policy(7);
        let mut client = SelfHealingClient::connect(&addr, policy.clone()).unwrap();
        for round in 0..2usize {
            // One torn response per round: the ping retries once, then
            // lands on a fresh connection.
            fault::arm_scoped(points::NET_WRITE, Trigger::Nth(1), &addr);
            client.ping().unwrap();
            assert_eq!(client.delay_log().len(), round + 1, "one retry per tear");
        }
        // Both sleeps used retry number 1: the success between them
        // reset the exponential, so each delay is jittered off the base
        // step, never the doubled one.
        for d in client.delay_log() {
            assert!(
                *d >= policy.base_delay.mul_f64(0.5) && *d < policy.base_delay,
                "{d:?} is not a first-retry delay"
            );
        }
        client.shutdown().unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn seeded_jitter_replays_across_identical_schedules() {
        let (daemon, addr) = spawn_toy_daemon();
        let run = |addr: &str| {
            let mut client = SelfHealingClient::connect(addr, fast_policy(99)).unwrap();
            for _ in 0..3 {
                fault::arm_scoped(points::NET_WRITE, Trigger::Nth(1), addr);
                client.ping().unwrap();
            }
            client.delay_log().to_vec()
        };
        let first = run(&addr);
        let second = run(&addr);
        assert_eq!(first.len(), 3);
        assert_eq!(
            first, second,
            "same seed and fault schedule must sleep identically"
        );
        let mut c = Client::connect(&addr).unwrap();
        c.shutdown().unwrap();
        daemon.join().unwrap().unwrap();
    }
}
