//! End-to-end pipeline tests: generate → construct → evaluate, across
//! every dataset family and algorithm.

use kiff::prelude::*;
use kiff::{Algorithm, Metric};
use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
use kiff_dataset::generators::coauthor::{generate_coauthorship, CoauthorConfig};
use kiff_dataset::generators::movielens_like;
use kiff_dataset::PaperDataset;

fn assert_valid_graph(graph: &KnnGraph, dataset: &Dataset, k: usize) {
    assert_eq!(graph.num_users(), dataset.num_users());
    for u in 0..dataset.num_users() as u32 {
        let ns = graph.neighbors(u);
        assert!(ns.len() <= k, "user {u} has {} > k neighbours", ns.len());
        assert!(ns.windows(2).all(|w| w[0].sim >= w[1].sim), "unsorted");
        let mut ids: Vec<u32> = ns.iter().map(|n| n.id).collect();
        assert!(!ids.contains(&u), "self-loop at {u}");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ns.len(), "duplicate neighbour at {u}");
        for n in ns {
            assert!(n.sim >= 0.0 && n.sim.is_finite());
        }
    }
}

#[test]
fn kiff_on_every_generator_family() {
    let datasets = vec![
        generate_bipartite(&BipartiteConfig::tiny("bip", 1)),
        generate_coauthorship(&CoauthorConfig::tiny("coa", 2)),
        movielens_like(0.03, 3),
        PaperDataset::Gowalla.generate(0.005, 4),
    ];
    for ds in &datasets {
        let k = 5;
        let graph = KnnGraphBuilder::new(k).build(ds);
        assert_valid_graph(&graph, ds, k);
        let sim = WeightedCosine::fit(ds);
        let exact = exact_knn(ds, &sim, k, None);
        let r = recall(&exact, &graph);
        assert!(r > 0.9, "{}: recall {r}", ds.name());
    }
}

#[test]
fn every_algorithm_produces_valid_graphs() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("algos", 5));
    for algo in [
        Algorithm::Kiff,
        Algorithm::NnDescent,
        Algorithm::HyRec,
        Algorithm::Exact,
    ] {
        let graph = KnnGraphBuilder::new(8).algorithm(algo).build(&ds);
        assert_valid_graph(&graph, &ds, 8);
    }
}

#[test]
fn every_metric_produces_valid_graphs() {
    let ds = movielens_like(0.02, 7);
    for metric in [
        Metric::Cosine,
        Metric::BinaryCosine,
        Metric::Jaccard,
        Metric::WeightedJaccard,
        Metric::Dice,
        Metric::AdamicAdar,
    ] {
        let graph = KnnGraphBuilder::new(4).metric(metric).build(&ds);
        assert_valid_graph(&graph, &ds, 4);
    }
}

#[test]
fn io_round_trip_preserves_knn_graph() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("io", 11));
    let dir = std::env::temp_dir().join("kiff-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tsv");
    kiff_dataset::io::save_snap_tsv(&ds, &path).unwrap();
    let (loaded, _) = kiff_dataset::io::load_snap_tsv(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Internal ids survive the round trip, so the exact KNN graph must be
    // identical.
    let sim_a = WeightedCosine::fit(&ds);
    let sim_b = WeightedCosine::fit(&loaded);
    let a = exact_knn(&ds, &sim_a, 5, Some(1));
    let b = exact_knn(&loaded, &sim_b, 5, Some(1));
    for u in 0..ds.num_users() as u32 {
        assert_eq!(a.neighbors(u), b.neighbors(u), "user {u}");
    }
}

#[test]
fn symmetric_dataset_yields_symmetric_top1_pairs() {
    // On a co-authorship graph, if v is u's clear best neighbour and vice
    // versa, both directions appear — exercised via mutual top-1 count.
    let ds = generate_coauthorship(&CoauthorConfig::tiny("sym", 13));
    let graph = KnnGraphBuilder::new(3).metric(Metric::Jaccard).build(&ds);
    let mut mutual = 0;
    let mut total = 0;
    for u in 0..ds.num_users() as u32 {
        if let Some(best) = graph.neighbors(u).first() {
            total += 1;
            if graph.neighbors(best.id).iter().any(|n| n.id == u) {
                mutual += 1;
            }
        }
    }
    assert!(total > 0);
    assert!(
        mutual as f64 / total as f64 > 0.5,
        "only {mutual}/{total} mutual pairs"
    );
}

#[test]
fn empty_profile_users_get_empty_neighbourhoods() {
    // Users without ratings have zero similarity to everyone (Eq. 5):
    // KIFF must not invent neighbours for them.
    let mut b = DatasetBuilder::new("sparse-users", 5, 3);
    b.add_rating(0, 0, 1.0);
    b.add_rating(1, 0, 1.0);
    // users 2..4 rate nothing
    let ds = b.build();
    let graph = KnnGraphBuilder::new(2).threads(1).build(&ds);
    assert_eq!(graph.neighbors(0).len(), 1);
    assert_eq!(graph.neighbors(1).len(), 1);
    for u in 2..5 {
        assert!(graph.neighbors(u).is_empty(), "user {u}");
    }
}

#[test]
fn single_user_dataset() {
    let mut b = DatasetBuilder::new("lonely", 1, 2);
    b.add_rating(0, 1, 3.0);
    let ds = b.build();
    let graph = KnnGraphBuilder::new(3).threads(1).build(&ds);
    assert!(graph.neighbors(0).is_empty());
    let sim = WeightedCosine::fit(&ds);
    let exact = exact_knn(&ds, &sim, 3, Some(1));
    assert_eq!(recall(&exact, &graph), 1.0);
}
