//! Degenerate-input and failure-injection tests: pathological datasets the
//! algorithms must survive with correct (if trivial) output.

use kiff::prelude::*;
use kiff_core::Gamma;

/// Every user rated the single same item: everyone is everyone's
/// neighbour with similarity 1 — maximal RCS density.
#[test]
fn one_item_shared_by_all() {
    let n = 50u32;
    let mut b = DatasetBuilder::new("star-item", n as usize, 1);
    for u in 0..n {
        b.add_rating(u, 0, 1.0);
    }
    let ds = b.build();
    let k = 5;
    let graph = KnnGraphBuilder::new(k).threads(1).build(&ds);
    for u in 0..n {
        let ns = graph.neighbors(u);
        assert_eq!(ns.len(), k, "user {u}");
        assert!(ns.iter().all(|x| (x.sim - 1.0).abs() < 1e-12));
    }
    // Tie-aware recall: any k users are an optimal KNN set.
    let sim = WeightedCosine::fit(&ds);
    let exact = exact_knn(&ds, &sim, k, Some(1));
    assert_eq!(recall(&exact, &graph), 1.0);
}

/// Fully disjoint profiles: nobody is anybody's neighbour.
#[test]
fn fully_disjoint_profiles() {
    let n = 30usize;
    let mut b = DatasetBuilder::new("disjoint", n, n);
    for u in 0..n as u32 {
        b.add_rating(u, u, 1.0);
    }
    let ds = b.build();
    let graph = KnnGraphBuilder::new(3).threads(1).build(&ds);
    for u in 0..n as u32 {
        assert!(graph.neighbors(u).is_empty(), "user {u}");
    }
    let sim = WeightedCosine::fit(&ds);
    let exact = exact_knn(&ds, &sim, 3, Some(1));
    assert_eq!(recall(&exact, &graph), 1.0);
}

/// k larger than the population: neighbourhoods are capped at n − 1.
#[test]
fn k_exceeds_population() {
    let mut b = DatasetBuilder::new("small-n", 4, 1);
    for u in 0..4 {
        b.add_rating(u, 0, 1.0);
    }
    let ds = b.build();
    let graph = KnnGraphBuilder::new(100).threads(1).build(&ds);
    for u in 0..4 {
        assert_eq!(graph.neighbors(u).len(), 3);
    }
}

/// A hub user who rated everything: appears in every RCS without
/// overflowing anything.
#[test]
fn hub_user() {
    let (n, items) = (40usize, 20usize);
    let mut b = DatasetBuilder::new("hub", n, items);
    for i in 0..items as u32 {
        b.add_rating(0, i, 1.0); // the hub
    }
    for u in 1..n as u32 {
        b.add_rating(u, u % items as u32, 1.0);
    }
    let ds = b.build();
    let sim = WeightedCosine::fit(&ds);
    let graph = Kiff::new(KiffConfig::exact(5).with_threads(1))
        .run(&ds, &sim)
        .graph;
    // The hub shares an item with every user; every user's list contains
    // somebody (at least the hub).
    for u in 0..n as u32 {
        assert!(!graph.neighbors(u).is_empty(), "user {u}");
    }
    assert_eq!(graph.neighbors(0).len(), 5);
}

/// Identical profiles everywhere: all similarities tie at 1.0; the
/// deterministic tie-break (smallest id) must produce stable output.
#[test]
fn all_identical_profiles() {
    let n = 25usize;
    let mut b = DatasetBuilder::new("clones", n, 3);
    for u in 0..n as u32 {
        for i in 0..3 {
            b.add_rating(u, i, 2.0);
        }
    }
    let ds = b.build();
    let sim = WeightedCosine::fit(&ds);
    let graph = Kiff::new(KiffConfig::exact(4).with_threads(1))
        .run(&ds, &sim)
        .graph;
    // User 10's neighbours are the four smallest other ids.
    let ids: Vec<u32> = graph.neighbors(10).iter().map(|x| x.id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3]);
    let exact = exact_knn(&ds, &sim, 4, Some(1));
    assert_eq!(recall(&exact, &graph), 1.0);
}

/// Gamma of 1: the slowest possible drip still converges to the same
/// exhaustive answer when β = 0.
#[test]
fn gamma_one_still_exact_with_beta_zero() {
    let mut b = DatasetBuilder::new("drip", 20, 6);
    for u in 0..20u32 {
        b.add_rating(u, u % 6, 1.0);
        b.add_rating(u, (u + 1) % 6, 1.0);
    }
    let ds = b.build();
    let sim = WeightedCosine::fit(&ds);
    let mut config = KiffConfig::new(3)
        .with_gamma(1)
        .with_beta(0.0)
        .with_threads(1);
    config.max_iterations = 100_000;
    let drip = Kiff::new(config).run(&ds, &sim);
    let exact = Kiff::new(KiffConfig {
        gamma: Gamma::All,
        beta: 0.0,
        ..KiffConfig::new(3)
    })
    .run(&ds, &sim);
    for u in 0..20u32 {
        assert_eq!(
            drip.graph.neighbors(u),
            exact.graph.neighbors(u),
            "user {u}"
        );
    }
    assert!(drip.stats.iterations > exact.stats.iterations);
}

/// Max-iterations cap actually caps.
#[test]
fn max_iterations_cap_binds() {
    let ds = kiff_dataset::PaperDataset::Wikipedia.generate(0.05, 3);
    let sim = WeightedCosine::fit(&ds);
    let mut config = KiffConfig::new(5)
        .with_gamma(1)
        .with_beta(0.0)
        .with_threads(1);
    config.max_iterations = 3;
    let result = Kiff::new(config).run(&ds, &sim);
    assert_eq!(result.stats.iterations, 3);
}

/// Loader failure injection: malformed files report the offending line
/// and never panic.
#[test]
fn loader_failure_injection() {
    use kiff_dataset::io::{parse_snap_str, LoadError};
    for (text, bad_line) in [
        ("1 2\nx y\n", 2),
        ("1\n", 1),
        ("1 2 NaN\n", 1),
        ("1 2 0\n", 1),
        ("1 2 -3\n", 1),
        ("9999999999999999999999 1\n", 1),
    ] {
        match parse_snap_str("bad", text) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, bad_line, "input {text:?}"),
            other => panic!("expected parse error for {text:?}, got {other:?}"),
        }
    }
}

/// Loading a missing file surfaces the I/O error.
#[test]
fn loader_missing_file() {
    let err = kiff_dataset::io::load_snap_tsv("/nonexistent/kiff-test.tsv").unwrap_err();
    assert!(matches!(err, kiff_dataset::io::LoadError::Io(_)));
}

mod rebalancing {
    //! Rebalancing edge cases: migrations racing in-flight cross-shard
    //! messages, shards emptied to zero users, and deletions landing on a
    //! user whose migration is pending.

    use std::sync::Arc;

    use kiff::dataset::dataset::figure2_toy;
    use kiff::online::{
        ModuloPartitioner, OnlineConfig, RebalanceConfig, ShardConfig, ShardedOnlineKnn, Update,
    };
    use kiff::similarity::intersect_count;

    /// Counter + stored-similarity audit against brute force, plus the
    /// engine's own cross-shard invariants.
    fn audit(engine: &ShardedOnlineKnn) {
        engine.validate_invariants();
        let n = engine.num_users() as u32;
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    let shared = intersect_count(
                        engine.data().profile(u).items,
                        engine.data().profile(v).items,
                    );
                    assert_eq!(engine.shared_count(u, v) as usize, shared, "({u}, {v})");
                }
            }
            for nb in engine.neighbors(u) {
                let fresh = engine
                    .config()
                    .metric
                    .eval(engine.data().profile(u), engine.data().profile(nb.id));
                assert!(
                    (nb.sim - fresh).abs() < 1e-12,
                    "stale edge {u} -> {}",
                    nb.id
                );
            }
        }
    }

    fn modulo_engine(shards: usize) -> ShardedOnlineKnn {
        ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(shards)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        )
    }

    /// A user migrates while cross-shard messages naming it are still in
    /// flight: the batch dirties Carl (who straddles shards with the
    /// coffee drinkers), a pending migration moves him between repair
    /// rounds, and the rerouted messages must land exactly once on the
    /// new owner.
    #[test]
    fn migration_with_in_flight_messages() {
        let mut engine = modulo_engine(2);
        let from = engine.shard_of(2);
        engine.request_migration(2, 1 - from);
        let stats = engine.apply_batch(vec![
            // Carl joins the coffee drinkers on the other shard — the
            // repair exchanges Scored/ReverseAdd messages for him.
            Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            },
            Update::AddRating {
                user: 0,
                item: 2,
                rating: 2.0,
            },
        ]);
        assert_eq!(stats.migrations, 1);
        assert!(stats.cross_messages > 0, "nothing was in flight");
        assert_eq!(engine.shard_of(2), 1 - from);
        audit(&engine);
        let ids: Vec<u32> = engine.neighbors(2).iter().map(|nb| nb.id).collect();
        assert!(ids.contains(&0) || ids.contains(&1), "repair completed");
    }

    /// Migrating the only user of a shard leaves it empty; the engine —
    /// and a subsequent rebalance cycle dividing by the (floored) minimum
    /// size — must keep working, and the user must be able to come back.
    #[test]
    fn migrating_the_only_user_of_a_shard() {
        // Modulo over 4 shards: shard 3 owns exactly Dave (user 3).
        let mut engine = modulo_engine(4);
        assert_eq!(engine.shard_sizes()[3], 1);
        assert!(engine.migrate_user(3, 0));
        assert_eq!(engine.shard_sizes()[3], 0, "shard 3 emptied");
        audit(&engine);
        // Updates for the moved user repair on the new shard.
        let stats = engine.apply(Update::AddRating {
            user: 3,
            item: 0,
            rating: 1.0,
        });
        assert!(stats.sim_evals > 0);
        audit(&engine);
        // And the empty shard can be repopulated.
        assert!(engine.migrate_user(3, 3));
        assert_eq!(engine.shard_sizes()[3], 1);
        audit(&engine);
    }

    /// A `RemoveRating` arrives for a user whose migration is pending in
    /// the same batch: counters are adjusted on the admission shard
    /// (phase 2 precedes migration), the repair runs on the target shard,
    /// and no state is lost in between.
    #[test]
    fn remove_rating_for_a_user_mid_migration() {
        let mut engine = modulo_engine(2);
        let from = engine.shard_of(1);
        engine.request_migration(1, 1 - from);
        // Bob drops coffee: his edge to Alice must dissolve on whichever
        // shard ends up owning him.
        let stats = engine.apply_batch(vec![Update::RemoveRating { user: 1, item: 1 }]);
        assert_eq!(stats.migrations, 1);
        assert!(stats.edits.removals > 0);
        assert_eq!(engine.shard_of(1), 1 - from);
        audit(&engine);
        assert!(!engine.neighbors(0).iter().any(|nb| nb.id == 1));
        assert!(!engine.neighbors(1).iter().any(|nb| nb.id == 0));
        // Removing again is a no-op even after the move.
        let stats = engine.apply(Update::RemoveRating { user: 1, item: 1 });
        assert_eq!(stats.counter_adjustments, 0);
    }

    /// An empty shard never deadlocks the rebalancer: the ratio check
    /// floors the minimum at 1 and pulls users in rather than dividing by
    /// zero.
    #[test]
    fn rebalancer_handles_empty_shards() {
        let ds = figure2_toy();
        let mut engine = ShardedOnlineKnn::new(
            &ds,
            OnlineConfig::new(2),
            ShardConfig::new(4)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner))
                .with_rebalance(RebalanceConfig::new(2.0)),
        );
        // Concentrate everyone on shard 0, leaving three empty shards.
        for u in 0..4 {
            engine.migrate_user(u, 0);
        }
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        // 4 users vs floored minimum 1 violates the 2.0 bound: the cycle
        // must spread users back out.
        assert!(stats.migrations > 0, "rebalancer ignored the empty shards");
        let sizes = engine.shard_sizes();
        assert!(
            *sizes.iter().max().unwrap() <= 2,
            "still concentrated: {sizes:?}"
        );
        audit(&engine);
    }
}

/// The rating-threshold heuristic (§VII) composes with the full pipeline
/// and preserves the neighbours that rated things positively. The data
/// must be *sparse* for the threshold to remove whole candidate pairs —
/// on dense data every pair still shares some highly rated item (which is
/// also why the paper pitches the heuristic for RCS-size reduction).
#[test]
fn rating_threshold_end_to_end() {
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_dataset::generators::RatingModel;
    let ds = generate_bipartite(&BipartiteConfig {
        rating_model: RatingModel::Stars { half_steps: true },
        num_users: 500,
        num_items: 400,
        target_ratings: 4_000,
        ..BipartiteConfig::tiny("thr-e2e", 11)
    });
    let sim = WeightedCosine::fit(&ds);
    let plain = Kiff::new(KiffConfig::new(5).with_threads(1)).run(&ds, &sim);
    let pruned = Kiff::new(
        KiffConfig::new(5)
            .with_threads(1)
            .with_rating_threshold(3.0),
    )
    .run(&ds, &sim);
    // The heuristic must reduce work…
    assert!(
        pruned.stats.total_rcs < plain.stats.total_rcs,
        "threshold did not shrink RCSs: {} vs {}",
        pruned.stats.total_rcs,
        plain.stats.total_rcs
    );
    // …and stay a usable approximation.
    let exact = exact_knn(&ds, &sim, 5, Some(1));
    let r = recall(&exact, &pruned.graph);
    assert!(r > 0.7, "threshold recall collapsed: {r}");
}

mod telemetry {
    //! Telemetry accounting under mid-batch migration. Requested
    //! migrations execute *between the repair rounds* of the next
    //! `apply_batch`, so a user can be dirtied, repaired on its old
    //! shard, moved, and repaired again on its new shard — all inside
    //! one batch. The per-shard `shard.N.repairs` counters are flushed
    //! from plain per-batch tallies at batch end, and a migration must
    //! neither carry the old shard's tally along (double count once both
    //! shards flush) nor drop the queued repair the user had in flight
    //! when it moved.

    use std::sync::Arc;

    use kiff::dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff::online::{ModuloPartitioner, OnlineConfig, ShardConfig, ShardedOnlineKnn, Update};
    use kiff::telemetry::Registry;

    #[test]
    fn mid_batch_migration_neither_drops_nor_double_counts_repairs() {
        let base = generate_bipartite(&BipartiteConfig::tiny("failure-modes", 41));
        let registry = Registry::new();
        let shards = 3;
        let mut engine = ShardedOnlineKnn::new(
            &base,
            OnlineConfig::new(5).with_telemetry(registry.clone()),
            ShardConfig::new(shards)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        );
        let users = engine.num_users() as u32;
        let items = engine.data().num_items() as u32;

        let mut total_repaired = 0u64;
        let mut total_sims = 0u64;
        let mut total_migrations = 0u64;
        for round in 0..12u32 {
            // The mover is also the first user dirtied by the batch, so
            // its repair is in flight when the migration executes between
            // repair rounds. Rotate movers so every shard both donates
            // and receives.
            let mover = round % users;
            let target = (engine.shard_of(mover) + 1) % shards;
            engine.request_migration(mover, target);
            let batch: Vec<Update> = (0..16)
                .map(|i| Update::AddRating {
                    user: (mover + i) % users,
                    item: (round * 7 + i) % items,
                    rating: 1.0 + (i % 5) as f32,
                })
                .collect();
            let stats = engine.apply_batch(batch);
            assert_eq!(stats.migrations, 1, "round {round}: requested move ran");
            assert_eq!(
                engine.shard_of(mover),
                target,
                "round {round}: mover landed"
            );
            total_repaired += stats.repaired_users;
            total_sims += stats.sim_evals;
            total_migrations += stats.migrations;

            // Whichever shard performed each repair owns it in the
            // registry: the per-shard sums must reconcile exactly with
            // the engine's own batch accounting — a dropped in-flight
            // repair leaves the sum short, a tally carried along with the
            // migrating user overshoots.
            let snap = registry.snapshot();
            assert_eq!(
                snap.counter_sum_matching("shard.", ".repairs"),
                total_repaired,
                "round {round}: per-shard repair sum diverged"
            );
            assert_eq!(
                snap.counter("online.sims"),
                Some(total_sims),
                "round {round}: similarity count diverged"
            );
            assert_eq!(snap.counter("online.migrations"), Some(total_migrations));
            assert_eq!(
                snap.counter_sum_matching("shard.", ".cross_messages"),
                engine.cross_shard_messages(),
                "round {round}: cross-traffic counters diverged"
            );
        }
        assert!(total_repaired > 0, "batches must have repaired someone");
        assert_eq!(engine.migrations_total(), total_migrations);
        engine.validate_invariants();
    }
}

/// Failure injection against the persistence layer: torn and corrupted
/// WAL records must cost only the damaged suffix, never the prefix and
/// never a panic.
mod persistence {
    use std::path::PathBuf;

    use kiff::prelude::*;
    use kiff::serve::{recover, StoreConfig};

    fn scratch(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiff-failure-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn seed() -> Dataset {
        let mut b = DatasetBuilder::new("persist-seed", 6, 8);
        for u in 0..6u32 {
            for j in 0..3u32 {
                b.add_rating(u, (u * 2 + j) % 8, 1.0 + j as f32);
            }
        }
        b.build()
    }

    fn stream() -> Vec<Update> {
        (0..12u32)
            .map(|i| Update::AddRating {
                user: i % 6,
                item: (i * 5) % 8,
                rating: 1.0 + (i % 3) as f32,
            })
            .collect()
    }

    /// Logs the stream one update per batch, then damages the newest
    /// segment's tail in two ways. Recovery must report the truncation
    /// and land exactly on the state of a run that stopped right before
    /// the damaged record.
    #[test]
    fn damaged_wal_tail_recovers_to_the_last_valid_record() {
        for (tag, damage) in [
            (
                "bitflip",
                &(|bytes: &mut Vec<u8>| {
                    let n = bytes.len();
                    bytes[n - 1] ^= 0xff; // CRC of the last record now fails
                }) as &dyn Fn(&mut Vec<u8>),
            ),
            ("torn", &|bytes: &mut Vec<u8>| {
                let n = bytes.len();
                bytes.truncate(n - 3); // a write cut off mid-record
            }),
        ] {
            let dir = scratch(tag);
            let ds = seed();
            let stream = stream();
            let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
            let rec = recover(&cfg, &ds, None, OnlineConfig::new(2), None).unwrap();
            let (mut engine, mut store) = (rec.engine, rec.store);
            for u in &stream {
                store.append(std::slice::from_ref(u), 0).unwrap();
                engine.apply_batch(vec![*u]);
            }
            drop((engine, store));

            // Damage the single segment's tail.
            let segment = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .find(|p| p.extension().is_some_and(|x| x == "log"))
                .expect("a WAL segment exists");
            let mut bytes = std::fs::read(&segment).unwrap();
            damage(&mut bytes);
            std::fs::write(&segment, &bytes).unwrap();

            // The run the recovery must reproduce: everything but the
            // damaged final record.
            let mut reference = OnlineKnn::new(&ds, OnlineConfig::new(2));
            for u in &stream[..stream.len() - 1] {
                reference.apply_batch(vec![*u]);
            }

            let rec = recover(&cfg, &ds, None, OnlineConfig::new(2), None).unwrap();
            assert!(rec.truncated, "{tag}: the damage must be reported");
            assert_eq!(rec.replayed, stream.len() as u64 - 1, "{tag}");
            assert_eq!(
                rec.engine.graph().as_ref(),
                reference.graph().as_ref(),
                "{tag}: recovered graph diverged from the undamaged prefix"
            );

            // The daemon keeps going: appends after the heal replay
            // cleanly (the torn tail was truncated away on reopen).
            let (mut engine, mut store) = (rec.engine, rec.store);
            let extra = Update::AddRating {
                user: 0,
                item: 7,
                rating: 5.0,
            };
            store.append(&[extra], 0).unwrap();
            engine.apply_batch(vec![extra]);
            drop((engine, store));
            let rec = recover(&cfg, &ds, None, OnlineConfig::new(2), None).unwrap();
            assert!(!rec.truncated, "{tag}: the heal is permanent");
            assert_eq!(rec.replayed, stream.len() as u64, "{tag}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// A corrupt snapshot is a hard error (it cannot be silently
    /// ignored — the WAL before it may already be pruned), and it says
    /// which artefact is at fault.
    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = scratch("snap");
        let ds = seed();
        let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
        let rec = recover(&cfg, &ds, None, OnlineConfig::new(2), None).unwrap();
        let (mut engine, mut store) = (rec.engine, rec.store);
        store.append(&stream(), 0).unwrap();
        engine.apply_batch(stream());
        store.snapshot(engine.as_ref()).unwrap();
        drop((engine, store));

        let snap = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "kifs"))
            .expect("a snapshot exists");
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[3] ^= 0xff; // break the magic
        std::fs::write(&snap, &bytes).unwrap();

        let err = match recover(&cfg, &ds, None, OnlineConfig::new(2), None) {
            Err(e) => e,
            Ok(_) => panic!("a corrupt snapshot must fail recovery"),
        };
        assert_eq!(err.exit_code(), 5, "corruption class");
        assert!(err.to_string().contains("snapshot"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

mod serving {
    use std::path::PathBuf;
    use std::sync::{Arc, Barrier};
    use std::time::{Duration, Instant};

    use kiff::prelude::*;
    use kiff::serve::{recover, Client, ServerConfig, StoreConfig};
    use kiff_core::fault::{self, points, Trigger};
    use kiff_core::KiffError;

    fn scratch(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiff-failure-serving-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn seed() -> Dataset {
        let mut b = DatasetBuilder::new("serving-seed", 6, 8);
        for u in 0..6u32 {
            for j in 0..3u32 {
                b.add_rating(u, (u * 2 + j) % 8, 1.0 + j as f32);
            }
        }
        b.build()
    }

    /// A bounded in-flight limit sheds with a typed, retryable
    /// `Overloaded` instead of queueing unboundedly: six clients fire
    /// heavy updates through a limit of one, and at least one request
    /// must observe the shed (verified via the `serve.shed` counter
    /// and the wire-visible error class).
    #[test]
    fn overload_sheds_typed_retryable_errors() {
        let threads = 6;
        let batch: Vec<Update> = (0..600u32)
            .map(|i| Update::AddRating {
                user: i % 6,
                item: (i * 3) % 8,
                rating: 1.0 + (i % 4) as f32,
            })
            .collect();

        // The shed is a race by nature (that is the point of the
        // limit), so retry the whole scenario a few times rather than
        // assert on a single heat. On a single-core host six clients
        // can serialize cleanly for many heats in a row, so the
        // patience is generous.
        for round in 0..30 {
            let registry = Registry::new();
            let config = OnlineConfig::new(3).with_telemetry(registry.clone());
            let engine = Box::new(OnlineKnn::new(&seed(), config));
            let host = EngineHost::new(engine, None, registry.clone());
            let server_config = ServerConfig {
                max_inflight: 1,
                ..ServerConfig::default()
            };
            let server =
                kiff::serve::Server::bind_with("127.0.0.1:0", host, server_config).unwrap();
            let addr = server.local_addr().to_string();
            let daemon = std::thread::spawn(move || server.run());

            let barrier = Arc::new(Barrier::new(threads));
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let addr = addr.clone();
                    let batch = batch.clone();
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        let mut client = Client::connect(&addr).unwrap();
                        barrier.wait();
                        client.update(&batch)
                    })
                })
                .collect();
            let outcomes: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

            let mut client = Client::connect(&addr).unwrap();
            client.shutdown().unwrap();
            daemon.join().unwrap().unwrap();

            let shed = registry.counter("serve.shed").get();
            if shed == 0 {
                continue; // all six serialized cleanly — rare; rerun
            }
            // Every shed surfaced as the typed, retryable error class;
            // nothing was silently dropped or queued.
            let overloaded = outcomes
                .iter()
                .filter(|r| {
                    matches!(
                        r,
                        Err(KiffError::Remote { kind, op, .. })
                            if kind == "overloaded" && op == "update"
                    )
                })
                .count();
            assert_eq!(overloaded as u64, shed, "sheds match wire errors");
            assert!(
                outcomes.iter().any(|r| r.is_ok()),
                "the limit sheds excess load, not all load"
            );
            for r in &outcomes {
                if let Err(e) = r {
                    assert!(e.is_retryable(), "shed must invite a retry: {e}");
                }
            }
            assert!(round < 30);
            return;
        }
        panic!("six simultaneous heavy updates never overlapped in 30 rounds");
    }

    /// A WAL fault flips the daemon into degraded mode: queries keep
    /// serving, writes refuse with typed `Unavailable`, `health`
    /// reports it — and the background recovery task heals the WAL and
    /// flips back to healthy, after which writes land again.
    #[test]
    fn wal_fault_degrades_reads_survive_then_recovery_heals() {
        let ds = seed();
        let dir = scratch("degraded");
        let dir_scope = dir.to_string_lossy().into_owned();
        let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
        let rec = recover(&cfg, &ds, None, OnlineConfig::new(3), None).unwrap();
        let host = EngineHost::new(rec.engine, Some(rec.store), Registry::new());
        let server_config = ServerConfig {
            recovery_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        };
        let server = kiff::serve::Server::bind_with("127.0.0.1:0", host, server_config).unwrap();
        let addr = server.local_addr().to_string();
        let daemon = std::thread::spawn(move || server.run());
        let mut client = Client::connect(&addr).unwrap();

        let update = [Update::AddRating {
            user: 0,
            item: 7,
            rating: 4.0,
        }];

        // Poison the WAL on the next append, and hold it down — every
        // heal attempt's fsync probe fails too — so the degraded
        // window stays open for as long as the test wants to observe
        // it, however fast the recovery task spins.
        fault::arm_scoped(points::WAL_APPEND, Trigger::Nth(1), &dir_scope);
        fault::arm_scoped(points::WAL_FSYNC, Trigger::Every(1), &dir_scope);
        let err = client.update_batch(&update, 1).unwrap_err();
        match &err {
            KiffError::Remote { kind, op, .. } => {
                assert_eq!(kind, "unavailable");
                assert_eq!(op, "update");
            }
            other => panic!("expected a remote unavailable error, got {other}"),
        }
        assert!(err.is_retryable(), "degraded writes invite a retry");

        // Reads keep serving from the in-memory engine while degraded.
        assert!(!client.neighbors(0).unwrap().is_empty());
        let health = client.health().unwrap();
        assert_ne!(health.status, "healthy", "the WAL is poisoned");
        assert_eq!(health.seq, Some(0), "the failed batch applied nothing");

        // Release the WAL: the recovery task reopens it and flips back
        // to healthy on its own.
        fault::disarm(points::WAL_FSYNC);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let health = client.health().unwrap();
            if health.status == "healthy" {
                break;
            }
            assert!(Instant::now() < deadline, "recovery never healed the WAL");
            std::thread::sleep(Duration::from_millis(5));
        }

        // Healed: the retried batch lands, durably.
        let ack = client.update_batch(&update, 1).unwrap();
        assert_eq!(ack.applied, 1);
        assert!(!ack.deduped, "the failed attempt must not count as applied");
        assert_eq!(ack.seq, Some(1));

        client.shutdown().unwrap();
        daemon.join().unwrap().unwrap();

        let rec = recover(&cfg, &ds, None, OnlineConfig::new(3), None).unwrap();
        assert_eq!(rec.store.seq(), 1, "exactly the healed append persisted");
        assert_eq!(rec.store.batch_hwm(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
