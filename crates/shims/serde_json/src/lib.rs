//! Workspace-local stand-in for `serde_json`: JSON text parsing and
//! printing over the value tree defined by the sibling `serde` shim,
//! plus the `json!` construction macro. Numbers are `f64` (integers
//! round-trip exactly up to 2^53, far beyond anything the experiment
//! records hold); non-finite floats serialize as `null`, matching
//! upstream.

use std::fmt::Write as _;
use std::io::{Read, Write};

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
pub use serde::Error;

/// The crate's result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error(format!("write failed: {e}")))
}

/// Parses `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Parses `T` from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error(format!("read failed: {e}")))?;
    from_str(&text)
}

/// Builds a [`Value`] in place: `json!({"k": expr, "rows": vec})`.
///
/// Unlike upstream serde_json's tt-muncher, object and array members are
/// plain Rust expressions (anything `Serialize`); nest by building the
/// inner [`Value`] first — `let inner = json!({...}); json!({"outer": inner})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::json!($val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).unwrap_or($crate::Value::Null)
    };
}

// ---------------------------------------------------------------- printing

fn print_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.is_finite() {
                // Rust's shortest round-trip float formatting is valid JSON
                // (no exponent for the magnitudes stored here, no suffix).
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => print_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("bad \\u escape".into()))?);
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let nested = json!({"scan_rate": 0.0737});
        let flags = vec![Value::Bool(true), Value::Bool(false), Value::Null];
        let v = json!({
            "name": "kiff",
            "k": 20,
            "recall": 0.9937,
            "flags": flags,
            "nested": nested
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for x in [0.1, 1.0 / 3.0, 4.4, 1e-9, 123456789.123456] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x, back, "{text}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "tab\t nl\n quote\" back\\ unicode → é";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn unicode_escape_parsing() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, Value::String("A😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn json_macro_expression_values() {
        let rows = vec![1u32, 2, 3];
        let v = json!({"rows": rows, "count": 3});
        assert_eq!(v["count"], Value::Number(3.0));
        assert_eq!(
            v["rows"],
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.0),
                Value::Number(3.0)
            ])
        );
    }
}
