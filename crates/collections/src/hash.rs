//! FxHash-style fast hashing.
//!
//! The standard library's default hasher (SipHash 1-3) is designed to resist
//! hash-flooding attacks, which is irrelevant for internal `u32` user/item
//! ids and measurably slow in the counting phase. This module implements the
//! well-known Fx multiply-rotate hash (as used by rustc) so the workspace can
//! stay dependency-free.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (a large odd constant close to 2^64 / phi).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher suitable for small integer keys.
///
/// Identical in spirit to `rustc_hash::FxHasher`: every written word is
/// folded into the state with a rotate + xor + multiply round.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("kiff"), hash_one("kiff"));
        assert_eq!(hash_one((1u32, 2u32)), hash_one((1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        // Not a strong property, but catches degenerate implementations that
        // drop input bits entirely.
        let hashes: Vec<u64> = (0u32..1000).map(hash_one).collect();
        let distinct: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn byte_tail_is_significant() {
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 4]));
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 3, 0]));
    }

    #[test]
    fn map_and_set_behave_like_std() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&21), Some(&42));

        let mut set: FxHashSet<u32> = FxHashSet::default();
        set.extend(0..50);
        assert!(set.contains(&49));
        assert!(!set.contains(&50));
    }

    #[test]
    fn spread_across_low_bits() {
        // Hash tables use the low bits for bucket selection; sequential keys
        // must not collapse to a few buckets.
        let mut buckets = [0usize; 64];
        for i in 0u32..64_000 {
            buckets[(hash_one(i) & 63) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(min > 0, "some bucket never hit");
        assert!(max < 64_000 / 8, "pathological clustering: max={max}");
    }
}
