//! Locality-Sensitive Hashing baselines for ANN graph construction.
//!
//! The paper positions greedy approaches against LSH throughout: NN-Descent
//! "has shown to deliver a better recall in a shorter computational time
//! than … an approach using Locality Sensitive Hashing (LSH)" (§VI), and
//! LSH solutions "are optimized for very dense data sets" while "KIFF
//! targets sparse datasets" (§VI). This module provides the LSH comparison
//! point so that claim can be exercised directly:
//!
//! * [`LshFamily::CosineHyperplane`] — random-hyperplane (SimHash)
//!   signatures: bit `j` of a user's signature is the sign of her rating
//!   vector's projection onto a pseudo-random ±1 hyperplane. Collision
//!   probability grows with cosine similarity.
//! * [`LshFamily::MinHash`] — classic MinHash signatures whose per-row
//!   collision probability equals the Jaccard coefficient of the item
//!   sets.
//!
//! Signatures are split into bands; users colliding in any band bucket
//! become candidate pairs, which are then scored with the *real* similarity
//! metric and inserted into bounded k-heaps on both sides — the same
//! scoring discipline as every other algorithm in this workspace, so scan
//! rates and recalls are directly comparable.
//!
//! Hyperplanes and permutations are derived by hashing `(input, function,
//! seed)`, so signatures need no stored projection matrices and runs are
//! deterministic for a fixed seed.

use std::time::{Duration, Instant};

use kiff_collections::{FxHashMap, FxHashSet};
use kiff_dataset::{Dataset, UserId};
use kiff_graph::{KnnGraph, SharedKnn};
use kiff_parallel::{effective_threads, parallel_fold, parallel_for, Counter, ScratchPool};
use kiff_similarity::{ScorerWorkspace, ScoringMode, Similarity, PREPARED_MIN_BATCH};

/// The signature family used by [`Lsh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LshFamily {
    /// Random-hyperplane signatures for cosine-like metrics.
    CosineHyperplane {
        /// Total signature bits (≤ 256).
        bits: usize,
        /// Bits per band; must divide `bits`.
        band_bits: usize,
    },
    /// MinHash signatures for Jaccard-like metrics.
    MinHash {
        /// Number of hash functions (signature rows).
        hashes: usize,
        /// Rows per band; must divide `hashes`.
        band_size: usize,
    },
}

impl LshFamily {
    /// Number of bands implied by the family parameters.
    pub fn num_bands(&self) -> usize {
        match *self {
            LshFamily::CosineHyperplane { bits, band_bits } => bits / band_bits,
            LshFamily::MinHash { hashes, band_size } => hashes / band_size,
        }
    }

    fn validate(&self) {
        match *self {
            LshFamily::CosineHyperplane { bits, band_bits } => {
                assert!(bits > 0 && bits <= 256, "bits must be in 1..=256");
                assert!(
                    band_bits > 0 && bits % band_bits == 0,
                    "band_bits must divide bits"
                );
            }
            LshFamily::MinHash { hashes, band_size } => {
                assert!(hashes > 0, "hashes must be positive");
                assert!(
                    band_size > 0 && hashes % band_size == 0,
                    "band_size must divide hashes"
                );
            }
        }
    }
}

/// Parameters of [`Lsh`].
#[derive(Debug, Clone)]
pub struct LshConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Signature family and banding scheme.
    pub family: LshFamily,
    /// Buckets larger than this are truncated (their overflow pairs are
    /// counted in [`LshStats::skipped_pairs`]): a degenerate bucket —
    /// e.g. every user sharing one blockbuster item — would otherwise
    /// reintroduce the quadratic scan LSH exists to avoid.
    pub max_bucket: usize,
    /// Worker threads for signature construction (`None` = all).
    pub threads: Option<usize>,
    /// Seed for the hash-derived hyperplanes/permutations.
    pub seed: u64,
    /// How candidate pairs are scored with the real metric (default:
    /// prepared — each bucket member is prepared once and scores all its
    /// bucket partners; both modes build identical graphs).
    pub scoring: ScoringMode,
}

impl LshConfig {
    /// Cosine-oriented defaults: 64-bit signatures in 8 bands of 8 bits.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            family: LshFamily::CosineHyperplane {
                bits: 64,
                band_bits: 8,
            },
            max_bucket: 512,
            threads: None,
            seed: 42,
            scoring: ScoringMode::default(),
        }
    }

    /// MinHash defaults: 64 hashes in 16 bands of 4 rows.
    pub fn minhash(k: usize) -> Self {
        Self {
            k,
            family: LshFamily::MinHash {
                hashes: 64,
                band_size: 4,
            },
            max_bucket: 512,
            threads: None,
            seed: 42,
            scoring: ScoringMode::default(),
        }
    }
}

/// Instrumentation of an [`Lsh`] run.
#[derive(Debug, Clone, Default)]
pub struct LshStats {
    /// Distinct candidate pairs scored with the real metric.
    pub sim_evals: u64,
    /// `sim_evals / (|U|·(|U|−1)/2)`.
    pub scan_rate: f64,
    /// Non-empty buckets across all bands.
    pub buckets: u64,
    /// Population of the largest bucket seen.
    pub largest_bucket: usize,
    /// Pairs not scored because their bucket exceeded
    /// [`LshConfig::max_bucket`].
    pub skipped_pairs: u64,
    /// Wall time building signatures.
    pub signature_time: Duration,
    /// Wall time bucketing and scoring candidates.
    pub join_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
}

impl LshStats {
    fn finish(&mut self, n: usize) {
        let possible = n as f64 * (n as f64 - 1.0) / 2.0;
        self.scan_rate = if possible > 0.0 {
            self.sim_evals as f64 / possible
        } else {
            0.0
        };
    }
}

/// A configured LSH graph constructor.
///
/// ```
/// use kiff_baselines::{Lsh, LshConfig};
/// use kiff_dataset::dataset::figure2_toy;
/// use kiff_similarity::WeightedCosine;
///
/// let ds = figure2_toy();
/// let (graph, stats) = Lsh::new(LshConfig::new(1)).run(&ds, &WeightedCosine::new());
/// assert_eq!(graph.num_users(), 4);
/// assert!(stats.scan_rate <= 1.0); // each pair scored at most once
/// ```
#[derive(Debug, Clone)]
pub struct Lsh {
    config: LshConfig,
}

/// SplitMix64 finaliser: decorrelates consecutive inputs well enough for
/// hash-derived hyperplanes and permutations.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Lsh {
    /// Creates an instance with `config`.
    pub fn new(config: LshConfig) -> Self {
        config.family.validate();
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// Builds an approximate KNN graph of `dataset` under `sim`.
    pub fn run<S: Similarity + ?Sized>(&self, dataset: &Dataset, sim: &S) -> (KnnGraph, LshStats) {
        let total_start = Instant::now();
        let n = dataset.num_users();
        let mut stats = LshStats::default();

        let sig_start = Instant::now();
        let signatures = self.signatures(dataset);
        stats.signature_time = sig_start.elapsed();

        let join_start = Instant::now();
        let shared = SharedKnn::new(n, self.config.k);
        self.banded_join(dataset, sim, &signatures, &shared, &mut stats);
        stats.join_time = join_start.elapsed();

        stats.total_time = total_start.elapsed();
        stats.finish(n);
        (shared.snapshot(), stats)
    }

    /// Per-user signatures: one `u64` per band, flattened row-major.
    fn signatures(&self, dataset: &Dataset) -> Vec<u64> {
        let n = dataset.num_users();
        let bands = self.config.family.num_bands();
        let seed = self.config.seed;
        let family = self.config.family;
        let threads = effective_threads(self.config.threads);
        // Workers fold disjoint (user, row) batches; the scatter into the
        // flat buffer is sequential and cheap relative to hashing.
        let rows = parallel_fold(
            threads,
            n,
            64,
            Vec::<(usize, Vec<u64>)>::new,
            |acc, range| {
                for u in range {
                    let profile = dataset.user_profile(u as UserId);
                    let row = match family {
                        LshFamily::CosineHyperplane { bits, band_bits } => {
                            hyperplane_bands(profile, bits, band_bits, seed)
                        }
                        LshFamily::MinHash { hashes, band_size } => {
                            minhash_bands(profile, hashes, band_size, seed)
                        }
                    };
                    acc.push((u, row));
                }
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        let mut sigs = vec![0u64; n * bands];
        for (u, row) in rows {
            sigs[u * bands..u * bands + bands].copy_from_slice(&row);
        }
        sigs
    }

    /// Groups users by band bucket and scores all intra-bucket pairs.
    fn banded_join<S: Similarity + ?Sized>(
        &self,
        dataset: &Dataset,
        sim: &S,
        signatures: &[u64],
        shared: &SharedKnn,
        stats: &mut LshStats,
    ) {
        let n = dataset.num_users();
        let bands = self.config.family.num_bands();
        let max_bucket = self.config.max_bucket.max(2);
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        let evals = Counter::new();
        let threads = effective_threads(self.config.threads);
        // Scorer-preparation arenas, reused across chunks and bands.
        let workspaces: ScratchPool<ScorerWorkspace> = ScratchPool::new();

        for band in 0..bands {
            let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for u in 0..n {
                buckets
                    .entry(signatures[u * bands + band])
                    .or_default()
                    .push(u as u32);
            }
            stats.buckets += buckets.values().filter(|b| b.len() > 1).count() as u64;

            // Collect this band's new pairs (dedup against prior bands),
            // grouped bucket-locally by reference member: `refs[g]`
            // scores `partners[offsets[g]..offsets[g + 1]]`, so prepared
            // scoring preprocesses each bucket member once.
            let mut refs: Vec<u32> = Vec::new();
            let mut offsets: Vec<usize> = vec![0];
            let mut partners: Vec<u32> = Vec::new();
            for bucket in buckets.values_mut() {
                stats.largest_bucket = stats.largest_bucket.max(bucket.len());
                if bucket.len() > max_bucket {
                    let full = bucket.len() as u64;
                    let kept = max_bucket as u64;
                    stats.skipped_pairs += full * (full - 1) / 2 - kept * (kept - 1) / 2;
                    bucket.truncate(max_bucket);
                }
                for (idx, &a) in bucket.iter().enumerate() {
                    let start = partners.len();
                    for &b in &bucket[idx + 1..] {
                        let key = (u64::from(a.min(b)) << 32) | u64::from(a.max(b));
                        if seen.insert(key) {
                            partners.push(b);
                        }
                    }
                    if partners.len() > start {
                        refs.push(a);
                        offsets.push(partners.len());
                    }
                }
            }

            // Score each reference's new partners in parallel; heap
            // updates are locked.
            parallel_for(threads, refs.len(), 8, |range| {
                let mut ws = workspaces.checkout();
                let mut sims: Vec<f64> = Vec::new();
                for g in range {
                    let a = refs[g];
                    let group = &partners[offsets[g]..offsets[g + 1]];
                    match self.config.scoring {
                        ScoringMode::Prepared if group.len() >= PREPARED_MIN_BATCH => {
                            let mut scorer = sim.scorer(dataset, a, &mut ws);
                            scorer.score_into(group, &mut sims);
                        }
                        ScoringMode::Prepared | ScoringMode::Pairwise => {
                            sims.clear();
                            sims.extend(group.iter().map(|&b| sim.sim(dataset, a, b)));
                        }
                    }
                    evals.add(group.len() as u64);
                    for (&b, &s) in group.iter().zip(sims.iter()) {
                        if s > 0.0 {
                            shared.update(a, b, s);
                            shared.update(b, a, s);
                        }
                    }
                }
            });
        }
        stats.sim_evals = evals.get();
    }
}

/// Random-hyperplane signature of one profile, packed band-wise.
fn hyperplane_bands(
    profile: kiff_dataset::ProfileRef<'_>,
    bits: usize,
    band_bits: usize,
    seed: u64,
) -> Vec<u64> {
    let mut projections = vec![0.0f64; bits];
    for (item, rating) in profile.iter() {
        let base = mix64(u64::from(item) ^ seed);
        for (j, proj) in projections.iter_mut().enumerate() {
            // One pseudo-random ±1 per (item, hyperplane).
            let h = mix64(base ^ ((j as u64) << 17));
            let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
            *proj += sign * f64::from(rating);
        }
    }
    let bands = bits / band_bits;
    let mut out = vec![0u64; bands];
    for (j, &p) in projections.iter().enumerate() {
        if p > 0.0 {
            out[j / band_bits] |= 1 << (j % band_bits);
        }
    }
    // Tag each band with its index so identical bit patterns in different
    // bands never alias to the same bucket key space accidentally.
    for (band, v) in out.iter_mut().enumerate() {
        *v = mix64(*v ^ ((band as u64) << 56) ^ seed);
    }
    out
}

/// MinHash signature of one profile, one `u64` per band (the band's rows
/// hashed together).
fn minhash_bands(
    profile: kiff_dataset::ProfileRef<'_>,
    hashes: usize,
    band_size: usize,
    seed: u64,
) -> Vec<u64> {
    let bands = hashes / band_size;
    let mut out = vec![0u64; bands];
    let mut acc = 0u64;
    for t in 0..hashes {
        let mut min = u64::MAX;
        for &item in profile.items {
            let h = mix64(u64::from(item) ^ ((t as u64) << 32) ^ seed);
            min = min.min(h);
        }
        acc = mix64(acc ^ min);
        if (t + 1) % band_size == 0 {
            out[t / band_size] = mix64(acc ^ ((t as u64 / band_size as u64) << 56));
            acc = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_dataset::DatasetBuilder;
    use kiff_graph::{exact_knn, recall};
    use kiff_similarity::{Jaccard, WeightedCosine};

    #[test]
    fn hyperplane_reaches_useful_recall() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("lshc", 157));
        let sim = WeightedCosine::fit(&ds);
        let cfg = LshConfig {
            family: LshFamily::CosineHyperplane {
                bits: 128,
                band_bits: 4,
            },
            ..LshConfig::new(10)
        };
        let (graph, stats) = Lsh::new(cfg).run(&ds, &sim);
        let exact = exact_knn(&ds, &sim, 10, None);
        let r = recall(&exact, &graph);
        assert!(r > 0.5, "recall = {r}");
        assert!(stats.sim_evals > 0);
        assert!(stats.scan_rate < 1.0, "LSH must not scan every pair");
    }

    #[test]
    fn minhash_reaches_useful_recall() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("lshm", 163));
        let cfg = LshConfig {
            family: LshFamily::MinHash {
                hashes: 128,
                band_size: 2,
            },
            ..LshConfig::minhash(10)
        };
        let (graph, _) = Lsh::new(cfg).run(&ds, &Jaccard);
        let exact = exact_knn(&ds, &Jaccard, 10, None);
        let r = recall(&exact, &graph);
        assert!(r > 0.5, "recall = {r}");
    }

    #[test]
    fn minhash_collision_rate_tracks_jaccard() {
        // Two users with Jaccard 0.5 should agree on roughly half their
        // MinHash rows — a statistical sanity check of the family.
        let mut b = DatasetBuilder::new("mh", 2, 30);
        for i in 0..20 {
            b.add_rating(0, i, 1.0); // user 0: items 0..20
        }
        for i in 10..30 {
            b.add_rating(1, i, 1.0); // user 1: items 10..30 (overlap 10/30)
        }
        let ds = b.build();
        let hashes = 2048;
        let s0 = minhash_bands(ds.user_profile(0), hashes, 1, 7);
        let s1 = minhash_bands(ds.user_profile(1), hashes, 1, 7);
        let agree = s0.iter().zip(&s1).filter(|(a, b)| a == b).count();
        let rate = agree as f64 / hashes as f64;
        let jaccard = 10.0 / 30.0;
        assert!(
            (rate - jaccard).abs() < 0.05,
            "rate {rate} vs jaccard {jaccard}"
        );
    }

    #[test]
    fn hyperplane_agreement_tracks_cosine() {
        // Identical profiles collide on every bit; disjoint profiles on
        // roughly half of them.
        let ds = figure2_toy();
        let bits = 2048;
        let sig = |u| hyperplane_bands(ds.user_profile(u), bits, 1, 11);
        let (alice, carl, dave) = (sig(0), sig(2), sig(3));
        // Carl and Dave have identical profiles.
        assert_eq!(carl, dave);
        let agree = alice.iter().zip(&carl).filter(|(a, b)| a == b).count();
        let rate = agree as f64 / bits as f64;
        assert!(
            (rate - 0.5).abs() < 0.1,
            "disjoint profiles agree at {rate}, expected ≈ 0.5"
        );
    }

    #[test]
    fn scoring_modes_build_identical_graphs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("lshp", 151));
        let sim = WeightedCosine::fit(&ds);
        let cfg = |scoring| LshConfig {
            scoring,
            threads: Some(1),
            ..LshConfig::new(8)
        };
        let (prepared, ps) = Lsh::new(cfg(ScoringMode::Prepared)).run(&ds, &sim);
        let (pairwise, ws) = Lsh::new(cfg(ScoringMode::Pairwise)).run(&ds, &sim);
        assert_eq!(ps.sim_evals, ws.sim_evals);
        for u in 0..ds.num_users() as u32 {
            assert_eq!(prepared.neighbors(u), pairwise.neighbors(u), "user {u}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("lshd", 167));
        let sim = WeightedCosine::fit(&ds);
        let (g1, s1) = Lsh::new(LshConfig::new(5)).run(&ds, &sim);
        let (g2, s2) = Lsh::new(LshConfig::new(5)).run(&ds, &sim);
        assert_eq!(s1.sim_evals, s2.sim_evals);
        for u in 0..ds.num_users() as u32 {
            let a: Vec<_> = g1.neighbors(u).iter().map(|x| x.id).collect();
            let b: Vec<_> = g2.neighbors(u).iter().map(|x| x.id).collect();
            assert_eq!(a, b, "user {u}");
        }
    }

    #[test]
    fn more_bands_find_more_pairs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("lshb", 173));
        let sim = WeightedCosine::fit(&ds);
        let narrow = LshConfig {
            family: LshFamily::CosineHyperplane {
                bits: 64,
                band_bits: 16,
            },
            ..LshConfig::new(5)
        };
        let wide = LshConfig {
            family: LshFamily::CosineHyperplane {
                bits: 64,
                band_bits: 4,
            },
            ..LshConfig::new(5)
        };
        let (_, sn) = Lsh::new(narrow).run(&ds, &sim);
        let (_, sw) = Lsh::new(wide).run(&ds, &sim);
        assert!(
            sw.sim_evals > sn.sim_evals,
            "wide {} !> narrow {}",
            sw.sim_evals,
            sn.sim_evals
        );
    }

    #[test]
    fn bucket_cap_limits_pairs() {
        // Every user shares one blockbuster item: a single giant bucket.
        let mut b = DatasetBuilder::new("cap", 40, 2);
        for u in 0..40 {
            b.add_rating(u, 0, 1.0);
        }
        let ds = b.build();
        let cfg = LshConfig {
            max_bucket: 8,
            family: LshFamily::MinHash {
                hashes: 4,
                band_size: 4,
            },
            ..LshConfig::minhash(3)
        };
        let (_, stats) = Lsh::new(cfg).run(&ds, &Jaccard);
        assert!(stats.skipped_pairs > 0, "cap never engaged");
        assert!(stats.largest_bucket == 40);
        assert!(stats.sim_evals <= 8 * 7 / 2);
    }

    #[test]
    fn rejects_invalid_banding() {
        let r = std::panic::catch_unwind(|| {
            Lsh::new(LshConfig {
                family: LshFamily::CosineHyperplane {
                    bits: 64,
                    band_bits: 7,
                },
                ..LshConfig::new(5)
            })
        });
        assert!(r.is_err(), "band_bits=7 must not divide bits=64");
    }

    #[test]
    fn empty_profiles_are_harmless() {
        let b = DatasetBuilder::new("empty", 3, 3);
        let ds = b.build();
        let (graph, stats) = Lsh::new(LshConfig::new(2)).run(&ds, &WeightedCosine::new());
        for u in 0..3 {
            assert!(graph.neighbors(u).is_empty());
        }
        // All-empty profiles collide, but zero similarity keeps heaps empty.
        assert_eq!(graph.num_edges(), 0);
        let _ = stats;
    }
}
