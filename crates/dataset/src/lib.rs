#![warn(missing_docs)]

//! Sparse bipartite user–item datasets for KNN graph construction.
//!
//! KIFF (Boutet et al., ICDE 2016) targets datasets "in which nodes are
//! associated to items, and similarity is computed on the basis of these
//! items": users rating movies, editors voting on candidates, authors
//! co-signing papers, people checking into venues. This crate provides:
//!
//! * [`Dataset`] / [`DatasetBuilder`] — CSR-backed storage of user profiles
//!   (`UP_u`) with lazily derived item profiles (`IP_i`), the two views of
//!   the labelled bipartite graph `G = (U ∪ I, E, ρ)` of §III-A;
//! * [`delta`] — a mutable overlay over the frozen CSR for streaming
//!   workloads: per-user profile copies plus per-item rater deltas, folded
//!   back into a fresh CSR by batched re-compaction (the `kiff-online`
//!   engine's storage layer);
//! * [`io`] — SNAP-style TSV and MovieLens loaders/writers plus a JSON dump
//!   format;
//! * [`codec`] — a versioned binary dataset codec for snapshot
//!   persistence (bit-exact rating round-trips, validated on load);
//! * [`generators`] — synthetic dataset generators calibrated to the four
//!   evaluation datasets of the paper (Table I) and the MovieLens-1M family
//!   (Table IX), used here because the original public datasets cannot be
//!   downloaded in an offline environment (see DESIGN.md §3);
//! * [`density`] — the paper's density-family derivation: progressively
//!   removing randomly chosen ratings (§V-B3);
//! * [`stats`] — dataset descriptors matching Table I and profile-size
//!   distributions matching Fig. 4.

pub mod codec;
pub mod dataset;
pub mod delta;
pub mod density;
pub mod generators;
pub mod io;
pub mod stats;
pub mod types;
pub mod zipf;

pub use dataset::{Dataset, DatasetBuilder};
pub use delta::{DeltaDataset, DeltaView};
pub use density::{ml_family, subsample_ratings};
pub use generators::presets::{paper_k, reduced_k, PaperDataset};
pub use stats::DatasetStats;
pub use types::{ItemId, ProfileRef, Rating, UserId};
