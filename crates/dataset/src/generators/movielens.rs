//! MovieLens-1M stand-in (the ML-1 dataset of Table IX).
//!
//! §V-B3: "The ML dataset we use (called ML-1 …) contains 6,040 users and
//! 3,706 items (movies), in which each user has at least made 20 ratings,
//! with an average of 165.1 ratings per user … a density of 4.47%."

use crate::dataset::Dataset;
use crate::generators::bipartite::{generate_bipartite, BipartiteConfig};
use crate::generators::RatingModel;

/// ML-1 reference statistics from Table IX / §V-B3.
pub const ML1_USERS: usize = 6_040;
/// Number of movies in ML-1.
pub const ML1_ITEMS: usize = 3_706;
/// Number of ratings in ML-1.
pub const ML1_RATINGS: usize = 1_000_209;

/// Generates the ML-1 stand-in, optionally scaled (scale applies to users,
/// items and ratings alike, preserving average profile sizes).
pub fn movielens_like(scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0 && scale <= 4.0, "unreasonable scale {scale}");
    let num_users = ((ML1_USERS as f64 * scale) as usize).max(10);
    let num_items = ((ML1_ITEMS as f64 * scale) as usize).max(10);
    let config = BipartiteConfig {
        name: "ML-1".to_string(),
        num_users,
        num_items,
        target_ratings: ((ML1_RATINGS as f64 * scale) as usize).max(num_users * 21),
        // ML-1: every user has ≥ 20 ratings; the busiest ~2.3k.
        user_degree_min: 20,
        user_degree_max: (num_items as u32).min(2_314),
        item_exponent: 0.75,
        rating_model: RatingModel::Stars { half_steps: true },
        seed,
    };
    generate_bipartite(&config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    #[test]
    fn full_scale_matches_ml1_statistics() {
        let ds = movielens_like(1.0, 42);
        let stats = DatasetStats::compute(&ds);
        assert_eq!(stats.num_users, ML1_USERS);
        assert_eq!(stats.num_items, ML1_ITEMS);
        let e = stats.num_ratings as f64;
        assert!(
            (e - ML1_RATINGS as f64).abs() / (ML1_RATINGS as f64) < 0.1,
            "|E| = {e}"
        );
        // Paper: density 4.47%.
        assert!(
            (stats.density_percent() - 4.47).abs() < 0.7,
            "density {}%",
            stats.density_percent()
        );
    }

    #[test]
    fn every_user_has_at_least_20_ratings() {
        let ds = movielens_like(0.25, 7);
        for u in 0..ds.num_users() as u32 {
            assert!(ds.user_degree(u) >= 20, "user {u}");
        }
    }

    #[test]
    fn ratings_are_half_star_grid() {
        let ds = movielens_like(0.1, 3);
        for (_, _, r) in ds.iter_ratings() {
            assert!((0.5..=5.0).contains(&r));
            assert_eq!((r * 2.0).fract(), 0.0);
        }
    }
}
