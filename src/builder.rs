//! High-level builder facade over the workspace's algorithms.

use std::sync::Arc;

use kiff_baselines::{GreedyConfig, HyRec, L2Knng, L2KnngConfig, Lsh, LshConfig, NnDescent};
use kiff_core::{CountStrategy, Kiff, KiffConfig, ScoringMode};
use kiff_dataset::Dataset;
use kiff_graph::{exact_knn_with, KnnGraph};
use kiff_online::{
    OnlineConfig, OnlineKnn, OnlineMetric, Partitioner, RebalanceConfig, ShardConfig,
    ShardedOnlineKnn,
};
use kiff_similarity::{
    AdamicAdar, BinaryCosine, Dice, Jaccard, Similarity, WeightedCosine, WeightedJaccard,
};
use kiff_telemetry::Registry;

/// Which construction algorithm the builder runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// KIFF (the paper's contribution) — the default.
    #[default]
    Kiff,
    /// NN-Descent (greedy baseline).
    NnDescent,
    /// HyRec (greedy baseline).
    HyRec,
    /// L2Knng-style two-phase pruning (§VI related work). Cosine-specific:
    /// the chosen [`Metric`] is ignored and weighted cosine is used.
    L2Knng,
    /// LSH banding (§VI related work). Jaccard-family metrics select
    /// MinHash signatures; everything else uses random hyperplanes.
    Lsh,
    /// Exact construction via the inverted index.
    Exact,
}

/// Which similarity metric the builder applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Cosine over rating vectors (the paper's evaluation default).
    #[default]
    Cosine,
    /// Cosine over binary presence vectors.
    BinaryCosine,
    /// Jaccard's coefficient over item sets.
    Jaccard,
    /// Ruzicka (weighted Jaccard).
    WeightedJaccard,
    /// Dice coefficient.
    Dice,
    /// Adamic–Adar with `1/ln|IP_i|` item weights.
    AdamicAdar,
}

/// One-stop builder: pick an algorithm, a metric and the usual knobs, then
/// [`KnnGraphBuilder::build`] a graph.
///
/// ```
/// use kiff::KnnGraphBuilder;
/// use kiff_dataset::dataset::figure2_toy;
///
/// let graph = KnnGraphBuilder::new(1).threads(1).build(&figure2_toy());
/// assert_eq!(graph.neighbors(0)[0].id, 1);
/// ```
#[derive(Debug, Clone)]
pub struct KnnGraphBuilder {
    k: usize,
    algorithm: Algorithm,
    metric: Metric,
    threads: Option<usize>,
    gamma: Option<usize>,
    beta: Option<f64>,
    termination: Option<f64>,
    seed: u64,
    count_strategy: CountStrategy,
    scoring: ScoringMode,
    partitioner: Option<Arc<dyn Partitioner>>,
    rebalance: Option<RebalanceConfig>,
    telemetry: Option<Registry>,
}

impl KnnGraphBuilder {
    /// A builder for `k`-NN graphs with KIFF + cosine defaults.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            algorithm: Algorithm::default(),
            metric: Metric::default(),
            threads: None,
            gamma: None,
            beta: None,
            termination: None,
            seed: 42,
            count_strategy: CountStrategy::default(),
            scoring: ScoringMode::default(),
            partitioner: None,
            rebalance: None,
            telemetry: None,
        }
    }

    /// Selects the construction algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the similarity metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the worker thread count (default: all available).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets KIFF's `γ` (default `2k`).
    pub fn gamma(mut self, gamma: usize) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Sets KIFF's `β` (default `0.001`).
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = Some(beta);
        self
    }

    /// Sets the greedy baselines' termination threshold.
    pub fn termination(mut self, t: f64) -> Self {
        self.termination = Some(t);
        self
    }

    /// Seeds the baselines' random initial graphs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets KIFF's shared-item counting strategy (default: adaptive; see
    /// [`CountStrategy`]). Ignored by the baselines.
    pub fn count_strategy(mut self, strategy: CountStrategy) -> Self {
        self.count_strategy = strategy;
        self
    }

    /// Sets the user-to-shard placement policy of
    /// [`KnnGraphBuilder::into_sharded`] (default: hash). Pass a
    /// [`kiff_online::CommunityPartitioner`] to co-locate co-raters and
    /// cut cross-shard message volume. Ignored by the batch and
    /// single-engine paths.
    pub fn partitioner(mut self, partitioner: Arc<dyn Partitioner>) -> Self {
        self.partitioner = Some(partitioner);
        self
    }

    /// Enables live shard rebalancing for
    /// [`KnnGraphBuilder::into_sharded`]: the engine migrates users out
    /// of overloaded shards during quiescent periods (see
    /// [`RebalanceConfig`]). Ignored by the batch and single-engine
    /// paths.
    pub fn rebalance(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = Some(config);
        self
    }

    /// Records every phase the builder drives into `registry`: KIFF's
    /// `core.*` counting/refinement instruments and `similarity.*`
    /// scorer counters during [`KnnGraphBuilder::build`], plus the
    /// `online.*` and per-shard `shard.N.*` instruments when the result
    /// is handed to [`KnnGraphBuilder::into_online`] /
    /// [`KnnGraphBuilder::into_sharded`] — one unified snapshot across
    /// layers. By default each layer keeps its own private (enabled)
    /// registry; pass [`kiff_telemetry::Registry::disabled`] to reduce
    /// every instrument operation to a single relaxed load. The greedy
    /// baselines only record `similarity.*` through their shared scorer
    /// workspaces.
    pub fn telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Sets how every algorithm's candidate loops evaluate similarities
    /// (default: prepared scorers; see [`ScoringMode`]). Applies to KIFF's
    /// refinement, the greedy baselines' joins, LSH's bucket scoring and
    /// the exact construction alike; both modes build identical graphs.
    pub fn scoring(mut self, scoring: ScoringMode) -> Self {
        self.scoring = scoring;
        self
    }

    /// Builds the KNN graph of `dataset`.
    pub fn build(&self, dataset: &Dataset) -> KnnGraph {
        match self.metric {
            Metric::Cosine => self.dispatch(dataset, &WeightedCosine::fit(dataset)),
            Metric::BinaryCosine => self.dispatch(dataset, &BinaryCosine),
            Metric::Jaccard => self.dispatch(dataset, &Jaccard),
            Metric::WeightedJaccard => self.dispatch(dataset, &WeightedJaccard),
            Metric::Dice => self.dispatch(dataset, &Dice),
            Metric::AdamicAdar => self.dispatch(dataset, &AdamicAdar::fit(dataset)),
        }
    }

    /// Builds the graph of `dataset` with the configured algorithm, then
    /// hands it to the [`kiff_online`] engine for streaming maintenance:
    /// the returned [`OnlineKnn`] accepts `AddRating` / `AddUser` /
    /// `RemoveRating` updates and keeps the graph repaired incrementally.
    ///
    /// ```
    /// use kiff::KnnGraphBuilder;
    /// use kiff::online::Update;
    /// use kiff_dataset::dataset::figure2_toy;
    ///
    /// let ds = figure2_toy();
    /// let mut live = KnnGraphBuilder::new(1).threads(1).into_online(&ds);
    /// live.apply(Update::AddRating { user: 2, item: 1, rating: 1.0 });
    /// assert!(!live.neighbors(2).is_empty());
    /// ```
    ///
    /// # Panics
    /// Panics for [`Metric::AdamicAdar`]: its per-item weights are fitted
    /// on a frozen dataset and would go stale under mutation.
    pub fn into_online(self, dataset: &Dataset) -> OnlineKnn {
        let (graph, config) = self.online_parts(dataset);
        OnlineKnn::from_graph(dataset, &graph, config)
    }

    /// Like [`KnnGraphBuilder::into_online`], but partitions users across
    /// `num_shards` shards repaired in parallel (hash partitioning, all
    /// available threads — see [`kiff_online::ShardConfig`] for custom
    /// partitioners and thread caps via
    /// [`ShardedOnlineKnn::from_graph`]):
    ///
    /// ```
    /// use kiff::KnnGraphBuilder;
    /// use kiff::online::Update;
    /// use kiff_dataset::dataset::figure2_toy;
    ///
    /// let ds = figure2_toy();
    /// let mut live = KnnGraphBuilder::new(1).threads(1).into_sharded(&ds, 2);
    /// live.apply(Update::AddRating { user: 2, item: 1, rating: 1.0 });
    /// assert!(!live.neighbors(2).is_empty());
    /// ```
    ///
    /// # Panics
    /// Panics for [`Metric::AdamicAdar`] (see
    /// [`KnnGraphBuilder::into_online`]) and for `num_shards == 0`.
    pub fn into_sharded(self, dataset: &Dataset, num_shards: usize) -> ShardedOnlineKnn {
        let mut shard_config = ShardConfig::new(num_shards);
        shard_config.threads = self.threads;
        if let Some(p) = self.partitioner.clone() {
            shard_config = shard_config.with_partitioner(p);
        }
        if let Some(r) = self.rebalance.clone() {
            shard_config = shard_config.with_rebalance(r);
        }
        let (graph, config) = self.online_parts(dataset);
        ShardedOnlineKnn::from_graph(dataset, &graph, config, shard_config)
    }

    /// Shared tail of the online conversions: the initial graph plus the
    /// online configuration with the metric translated.
    fn online_parts(&self, dataset: &Dataset) -> (KnnGraph, OnlineConfig) {
        let metric = match self.metric {
            Metric::Cosine => OnlineMetric::Cosine,
            Metric::BinaryCosine => OnlineMetric::BinaryCosine,
            Metric::Jaccard => OnlineMetric::Jaccard,
            Metric::WeightedJaccard => OnlineMetric::WeightedJaccard,
            Metric::Dice => OnlineMetric::Dice,
            Metric::AdamicAdar => panic!(
                "Adamic-Adar carries dataset-fitted item weights and is not \
                 supported by the online engine"
            ),
        };
        let graph = self.build(dataset);
        let mut config = OnlineConfig::new(self.k).with_metric(metric);
        if let Some(t) = &self.telemetry {
            config = config.with_telemetry(t.clone());
        }
        (graph, config)
    }

    fn dispatch<S: Similarity>(&self, dataset: &Dataset, sim: &S) -> KnnGraph {
        match self.algorithm {
            Algorithm::Kiff => {
                let mut config = KiffConfig::new(self.k)
                    .with_count_strategy(self.count_strategy)
                    .with_scoring(self.scoring);
                config.threads = self.threads;
                if let Some(t) = &self.telemetry {
                    config = config.with_telemetry(t.clone());
                }
                if let Some(g) = self.gamma {
                    config = config.with_gamma(g);
                }
                if let Some(b) = self.beta {
                    config = config.with_beta(b);
                }
                Kiff::new(config).run(dataset, sim).graph
            }
            Algorithm::NnDescent => {
                let mut config = GreedyConfig::new(self.k).with_scoring(self.scoring);
                config.threads = self.threads;
                config.seed = self.seed;
                if let Some(t) = self.termination {
                    config.termination = t;
                }
                NnDescent::new(config).run(dataset, sim).0
            }
            Algorithm::HyRec => {
                let mut config = GreedyConfig::new(self.k).with_scoring(self.scoring);
                config.threads = self.threads;
                config.seed = self.seed;
                if let Some(t) = self.termination {
                    config.termination = t;
                }
                HyRec::new(config).run(dataset, sim).0
            }
            Algorithm::L2Knng => L2Knng::new(L2KnngConfig::new(self.k)).run(dataset).0,
            Algorithm::Lsh => {
                let mut config = match self.metric {
                    Metric::Jaccard | Metric::WeightedJaccard | Metric::Dice => {
                        LshConfig::minhash(self.k)
                    }
                    _ => LshConfig::new(self.k),
                };
                config.threads = self.threads;
                config.seed = self.seed;
                config.scoring = self.scoring;
                Lsh::new(config).run(dataset, sim).0
            }
            Algorithm::Exact => exact_knn_with(dataset, sim, self.k, self.threads, self.scoring),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_graph::recall;

    #[test]
    fn all_algorithms_run_on_toy() {
        let ds = figure2_toy();
        for algo in [
            Algorithm::Kiff,
            Algorithm::NnDescent,
            Algorithm::HyRec,
            Algorithm::L2Knng,
            Algorithm::Lsh,
            Algorithm::Exact,
        ] {
            let g = KnnGraphBuilder::new(1)
                .algorithm(algo)
                .threads(1)
                .build(&ds);
            assert_eq!(g.num_users(), 4, "{algo:?}");
        }
    }

    #[test]
    fn all_metrics_run() {
        let ds = figure2_toy();
        for metric in [
            Metric::Cosine,
            Metric::BinaryCosine,
            Metric::Jaccard,
            Metric::WeightedJaccard,
            Metric::Dice,
            Metric::AdamicAdar,
        ] {
            let g = KnnGraphBuilder::new(1).metric(metric).threads(1).build(&ds);
            // Alice's neighbour is always Bob: the only sharing user.
            assert_eq!(g.neighbors(0)[0].id, 1, "{metric:?}");
        }
    }

    #[test]
    fn into_sharded_streams_like_into_online() {
        use kiff_online::Update;
        let ds = figure2_toy();
        let mut single = KnnGraphBuilder::new(2).threads(1).into_online(&ds);
        let mut sharded = KnnGraphBuilder::new(2).threads(1).into_sharded(&ds, 2);
        assert_eq!(sharded.num_shards(), 2);
        let update = Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        };
        single.apply(update);
        sharded.apply(update);
        for u in 0..ds.num_users() as u32 {
            assert_eq!(single.neighbors(u), sharded.neighbors(u), "user {u}");
        }
    }

    #[test]
    fn into_sharded_honours_partitioner_and_rebalance() {
        use kiff_online::{CommunityPartitioner, RebalanceConfig, Update};
        let ds = figure2_toy();
        let partitioner = Arc::new(CommunityPartitioner::from_dataset(&ds, 2));
        let mut live = KnnGraphBuilder::new(2)
            .threads(2)
            .partitioner(Arc::clone(&partitioner) as Arc<dyn Partitioner>)
            .rebalance(RebalanceConfig::new(3.0))
            .into_sharded(&ds, 2);
        for u in 0..4 {
            assert_eq!(live.shard_of(u), partitioner.shard_of(u, 2), "user {u}");
        }
        // An intra-community update crosses no shard boundary.
        let stats = live.apply(Update::AddRating {
            user: 0,
            item: 1,
            rating: 2.0,
        });
        assert_eq!(stats.cross_messages, 0);
        assert!(live.shard_config().rebalance.is_some());
    }

    #[test]
    fn count_strategies_and_scoring_modes_build_identical_graphs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("builder-strat", 307));
        let reference = KnnGraphBuilder::new(5).threads(1).build(&ds);
        for strategy in [
            CountStrategy::Dense,
            CountStrategy::SortBased,
            CountStrategy::HashBased,
        ] {
            for scoring in [ScoringMode::Prepared, ScoringMode::Pairwise] {
                let g = KnnGraphBuilder::new(5)
                    .threads(1)
                    .count_strategy(strategy)
                    .scoring(scoring)
                    .build(&ds);
                for u in 0..ds.num_users() as u32 {
                    assert_eq!(
                        reference.neighbors(u),
                        g.neighbors(u),
                        "{strategy:?}/{scoring:?} user {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn scoring_mode_is_invisible_for_every_algorithm() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("builder-scoring", 311));
        for algo in [
            Algorithm::Kiff,
            Algorithm::NnDescent,
            Algorithm::HyRec,
            Algorithm::Lsh,
            Algorithm::Exact,
        ] {
            let build = |scoring| {
                KnnGraphBuilder::new(4)
                    .algorithm(algo)
                    .threads(1)
                    .scoring(scoring)
                    .build(&ds)
            };
            let prepared = build(ScoringMode::Prepared);
            let pairwise = build(ScoringMode::Pairwise);
            for u in 0..ds.num_users() as u32 {
                assert_eq!(
                    prepared.neighbors(u),
                    pairwise.neighbors(u),
                    "{algo:?} user {u}"
                );
            }
        }
    }

    #[test]
    fn telemetry_spans_batch_and_online_layers() {
        use kiff_online::Update;
        let ds = figure2_toy();
        let registry = Registry::new();
        let mut live = KnnGraphBuilder::new(2)
            .threads(1)
            .telemetry(registry.clone())
            .into_sharded(&ds, 2);
        live.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        let snap = registry.snapshot();
        // One registry, every layer: batch construction, online repair,
        // per-shard accounting, prepared scoring.
        assert!(snap.counter("core.refine.sims").unwrap_or(0) > 0);
        assert_eq!(snap.histogram("core.phase.total_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("online.apply_ns").unwrap().count, 1);
        assert!(snap.counter_sum_matching("shard.", ".repairs") > 0);
        assert!(snap.counter("similarity.scores").unwrap_or(0) > 0);
    }

    #[test]
    fn kiff_matches_exact_closely() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("builder", 301));
        let exact = KnnGraphBuilder::new(5)
            .algorithm(Algorithm::Exact)
            .build(&ds);
        let kiff = KnnGraphBuilder::new(5).build(&ds);
        assert!(recall(&exact, &kiff) > 0.95);
    }
}
