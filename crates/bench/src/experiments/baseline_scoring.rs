//! Baseline-suite scoring regression bench: `BENCH_baselines.json`.
//!
//! PR 3 routed KIFF's own refinement through prepared scorers; this
//! experiment measures the same rewrite across the *comparison suite* —
//! NN-Descent's local joins, HyRec's neighbour-of-neighbour scans, LSH's
//! bucket joins, the random initialisation and `exact_knn`'s row kernel —
//! each of which now prepares one reference profile per candidate batch
//! (`ScoringMode::Prepared`) instead of re-merging raw profiles per pair
//! (`ScoringMode::Pairwise`, the retained baseline).
//!
//! Two hard gates ride along, mirroring the `counting` experiment:
//!
//! * per algorithm, prepared and pairwise runs must build *identical*
//!   graphs (recall ratio exactly 1.0 both ways) — same seeds, same
//!   similarity values, same updates;
//! * the identity must hold for every metric family, not just the cosine
//!   the timings use (spot-checked with Jaccard and Adamic–Adar).
//!
//! Runs use the suite's thread count: the greedy baselines now derive
//! change counts and NN flags from post-join membership diffs, so a
//! parallel run is the same deterministic sweep as a serial one and the
//! identity gates hold at any thread count (the ROADMAP's tie-break
//! follow-up). Prepared and pairwise are always timed at the *same*
//! thread count, so the speedup ratio the gate reads stays meaningful.

use std::time::{Duration, Instant};

use kiff::{Algorithm, KnnGraphBuilder, Metric};
use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
use kiff_dataset::generators::RatingModel;
use kiff_dataset::Dataset;
use kiff_graph::{recall, KnnGraph};
use kiff_similarity::ScoringMode;

use super::Ctx;

/// Timing repetitions per measured configuration (minimum taken).
const REPS: usize = 3;

/// Neighbourhood size of every measured run.
const K: usize = 10;

/// The algorithms measured and identity-gated (the whole baseline
/// suite; KIFF itself is covered by the `counting` experiment).
const ALGORITHMS: [(Algorithm, &str); 4] = [
    (Algorithm::NnDescent, "nndescent"),
    (Algorithm::HyRec, "hyrec"),
    (Algorithm::Lsh, "lsh"),
    (Algorithm::Exact, "exact_knn"),
];

/// Profile-heavy synthetic in the regime where preparation pays: user
/// degrees well above the dense-stamp threshold, item profiles long
/// enough that every algorithm's candidate batches are real (the paper's
/// Wikipedia/Gowalla shapes, scaled down).
fn baselines_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    generate_bipartite(&BipartiteConfig {
        name: "bench-baselines".to_string(),
        num_users: (10_000.0 * m) as usize,
        num_items: (1_200.0 * m) as usize,
        target_ratings: (400_000.0 * m) as usize,
        user_degree_min: 2,
        user_degree_max: 300,
        item_exponent: 0.8,
        rating_model: RatingModel::Stars { half_steps: false },
        seed,
    })
}

/// Runs `f` `REPS` times, returning the fastest wall time and the last
/// result.
fn time_best<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed());
        out = Some(r);
    }
    (best, out.expect("REPS > 0"))
}

fn graphs_identical(a: &KnnGraph, b: &KnnGraph) -> bool {
    a.num_users() == b.num_users()
        && (0..a.num_users() as u32).all(|u| a.neighbors(u) == b.neighbors(u))
}

struct AlgoRun {
    label: &'static str,
    pairwise_s: f64,
    prepared_s: f64,
    speedup: f64,
    /// Candidate pairs scored per run (both modes score the same set).
    sim_evals: u64,
    identical: bool,
    recall_ratio: f64,
}

/// One timed run of `algorithm` under `scoring`, through the per-algorithm
/// entry points (not the builder facade, which discards the stats):
/// returns the graph and, where the algorithm reports it, its similarity
/// evaluation count.
fn run_algorithm(
    ds: &Dataset,
    sim: &kiff_similarity::WeightedCosine,
    algorithm: Algorithm,
    seed: u64,
    threads: Option<usize>,
    scoring: ScoringMode,
) -> (KnnGraph, Option<u64>) {
    use kiff_baselines::{GreedyConfig, HyRec, Lsh, LshConfig, NnDescent};
    let mut greedy = GreedyConfig::new(K).with_scoring(scoring);
    greedy.threads = threads;
    greedy.seed = seed;
    match algorithm {
        Algorithm::NnDescent => {
            let (graph, stats) = NnDescent::new(greedy).run(ds, sim);
            (graph, Some(stats.sim_evals))
        }
        Algorithm::HyRec => {
            let (graph, stats) = HyRec::new(greedy).run(ds, sim);
            (graph, Some(stats.sim_evals))
        }
        Algorithm::Lsh => {
            let mut config = LshConfig::new(K);
            config.threads = threads;
            config.seed = seed;
            config.scoring = scoring;
            let (graph, stats) = Lsh::new(config).run(ds, sim);
            (graph, Some(stats.sim_evals))
        }
        Algorithm::Exact => (
            kiff_graph::exact_knn_with(ds, sim, K, threads, scoring),
            None,
        ),
        other => unreachable!("not part of the baseline suite: {other:?}"),
    }
}

/// Runs the baseline-scoring regression bench and writes
/// `BENCH_baselines.json`.
pub fn baselines(ctx: &mut Ctx) -> String {
    let ds = baselines_dataset(ctx.scale.multiplier, ctx.seed);
    // Item profiles are shared by every build; materialise them up front
    // so the first timed run is not charged for them.
    let _ = ds.item_profiles();
    let seed = ctx.seed;
    let cosine = kiff_similarity::WeightedCosine::fit(&ds);
    // `exact_knn` returns no stats; it scores each user against her full
    // unpivoted co-rater set, which `user_candidate_counts` — the same
    // gather the online engine's counters are audited against — counts.
    let exact_evals: u64 = (0..ds.num_users() as u32)
        .map(|u| kiff_core::user_candidate_counts(&ds, u).len() as u64)
        .sum();

    // Multi-threaded like every other gate: parallel greedy runs are
    // deterministic sweeps since the membership-diff accounting landed.
    let threads = ctx.threads;
    let build = |algorithm: Algorithm, metric: Metric, scoring: ScoringMode| {
        let mut b = KnnGraphBuilder::new(K)
            .algorithm(algorithm)
            .metric(metric)
            .scoring(scoring)
            .seed(seed);
        if let Some(t) = threads {
            b = b.threads(t);
        }
        b.build(&ds)
    };

    let mut runs: Vec<AlgoRun> = Vec::new();
    for (algorithm, label) in ALGORITHMS {
        let (pairwise_t, (pairwise_graph, pairwise_evals)) = time_best(|| {
            run_algorithm(
                &ds,
                &cosine,
                algorithm,
                seed,
                threads,
                ScoringMode::Pairwise,
            )
        });
        let (prepared_t, (prepared_graph, prepared_evals)) = time_best(|| {
            run_algorithm(
                &ds,
                &cosine,
                algorithm,
                seed,
                threads,
                ScoringMode::Prepared,
            )
        });
        let pairwise_s = pairwise_t.as_secs_f64().max(1e-9);
        let prepared_s = prepared_t.as_secs_f64().max(1e-9);
        // Both modes must score the same pair set; identical graphs (the
        // gate below) plus equal eval counts pin that down.
        let identical =
            graphs_identical(&pairwise_graph, &prepared_graph) && pairwise_evals == prepared_evals;
        // Identity is the gate; the tie-aware ratio is reported because
        // it is the quantity the streaming gates already speak.
        let recall_ratio =
            recall(&pairwise_graph, &prepared_graph).min(recall(&prepared_graph, &pairwise_graph));
        runs.push(AlgoRun {
            label,
            pairwise_s,
            prepared_s,
            speedup: pairwise_s / prepared_s,
            sim_evals: prepared_evals.unwrap_or(exact_evals),
            identical,
            recall_ratio,
        });
    }

    // Cross-metric identity spot checks (1 rep each): the prepared path
    // must be invisible for every metric family, not just cosine.
    let metric_checks: Vec<(&str, &str, bool)> = {
        let mut checks = Vec::new();
        for (algorithm, label) in ALGORITHMS {
            for (metric, metric_label) in [
                (Metric::Jaccard, "jaccard"),
                (Metric::AdamicAdar, "adamic-adar"),
            ] {
                let prepared = build(algorithm, metric, ScoringMode::Prepared);
                let pairwise = build(algorithm, metric, ScoringMode::Pairwise);
                checks.push((label, metric_label, graphs_identical(&prepared, &pairwise)));
            }
        }
        checks
    };

    let mut out = String::new();
    out.push_str(&format!(
        "Baseline-suite scoring on {}: {} users, {} items, {} ratings\n\
         (k={K}, cosine, {} thread(s), best of {REPS}; prepared = one \
         reference preparation per candidate batch, pairwise = per-pair \
         profile merge)\n\n\
         {:>10}  {:>9}  {:>9}  {:>8}  {:>13}  {}\n",
        ds.name(),
        ds.num_users(),
        ds.num_items(),
        ds.num_ratings(),
        threads.map_or_else(|| "all".to_string(), |t| t.to_string()),
        "algorithm",
        "pairwise",
        "prepared",
        "speedup",
        "sims/s(prep)",
        "graphs",
    ));
    for r in &runs {
        out.push_str(&format!(
            "{:>10}  {:>8.3}s  {:>8.3}s  {:>7.2}x  {:>13.0}  {}\n",
            r.label,
            r.pairwise_s,
            r.prepared_s,
            r.speedup,
            r.sim_evals as f64 / r.prepared_s,
            if r.identical { "identical" } else { "MISMATCH" },
        ));
    }
    out.push_str("\nCross-metric identity (prepared vs pairwise, 1 run each):\n");
    for (algo, metric, ok) in &metric_checks {
        out.push_str(&format!(
            "{algo:>10} / {metric:<12} {}\n",
            if *ok { "identical" } else { "MISMATCH" }
        ));
    }

    // Hard gates, like the counting experiment's: divergent graphs fail
    // the suite.
    for r in runs
        .iter()
        .filter(|r| !r.identical || r.recall_ratio < 1.0 - 1e-12)
    {
        let msg = format!(
            "baselines/{}: prepared vs pairwise graphs diverged (recall ratio {:.6})",
            r.label, r.recall_ratio
        );
        eprintln!("AGREEMENT VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    for (algo, metric, _) in metric_checks.iter().filter(|(_, _, ok)| !ok) {
        let msg = format!("baselines/{algo}/{metric}: prepared vs pairwise graphs diverged");
        eprintln!("AGREEMENT VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }

    let runs_v: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            let pairwise_v = serde_json::json!({
                "wall_time_s": r.pairwise_s,
                "sims_per_sec": r.sim_evals as f64 / r.pairwise_s
            });
            let prepared_v = serde_json::json!({
                "wall_time_s": r.prepared_s,
                "sims_per_sec": r.sim_evals as f64 / r.prepared_s
            });
            serde_json::json!({
                "algorithm": r.label,
                "sim_evals": r.sim_evals,
                "pairwise": pairwise_v,
                "prepared": prepared_v,
                "prepared_speedup_vs_pairwise": r.speedup,
                "identical_graphs": r.identical,
                "recall_ratio": r.recall_ratio
            })
        })
        .collect();
    let metric_checks_v: Vec<serde_json::Value> = metric_checks
        .iter()
        .map(|(algo, metric, ok)| {
            serde_json::json!({
                "algorithm": algo,
                "metric": metric,
                "identical_graphs": ok
            })
        })
        .collect();
    let dataset_v = serde_json::json!({
        "name": ds.name(),
        "num_users": ds.num_users(),
        "num_items": ds.num_items(),
        "num_ratings": ds.num_ratings()
    });
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": K,
        "algorithms": runs_v,
        "metric_identity": metric_checks_v
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_baselines.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_baselines.json: {e}"));
    }
    ctx.finish(
        "baselines",
        "Baseline-suite scoring throughput, prepared vs pairwise, with graph-identity gates",
        out,
        &payload,
    )
}
