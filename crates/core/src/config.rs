//! KIFF configuration.

use kiff_telemetry::Registry;

/// Number of candidates popped from each RCS per iteration (Algorithm 1,
/// line 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gamma {
    /// Pop at most this many per iteration. The paper's default is `2k`.
    Fixed(usize),
    /// Exhaust the whole RCS in the first iteration (`γ = ∞`, §III-D): the
    /// result is the exact KNN under the sparse axioms.
    All,
}

impl Gamma {
    /// The pop budget for one iteration.
    pub fn budget(self) -> usize {
        match self {
            Gamma::Fixed(g) => g,
            Gamma::All => usize::MAX,
        }
    }
}

/// Strategy used to count shared items while building RCSs.
///
/// All strategies produce bit-identical
/// [`RankedCandidates`](crate::counting::RankedCandidates) (ids *and*
/// counts) — property-tested in `tests/counting_scorers.rs`; they differ
/// only in speed and memory (see the `ablations` bench and the `counting`
/// experiment for measurements):
///
/// * [`CountStrategy::Dense`] — epoch-stamped dense counter + counting
///   sort over multiplicities (which are bounded by the user's degree).
///   O(1) per gathered candidate, no hashing, no sort of the raw
///   multiset. Fastest whenever candidate batches carry real
///   multiplicity.
/// * [`CountStrategy::SortBased`] — gather, radix-sort, run-length
///   encode; the reference implementation and the better choice when
///   batches are tiny relative to the user universe (the dense counter's
///   random accesses would miss cache for no multiplicity gain).
/// * [`CountStrategy::HashBased`] — hash-map multiplicity counting; the
///   second reference implementation.
/// * [`CountStrategy::Auto`] (default) — picks [`CountStrategy::Dense`]
///   when the dataset's average candidate-batch size amortises the dense
///   counter's random access pattern, [`CountStrategy::SortBased`]
///   otherwise (decided from the item-profile degree distribution in
///   O(|I|)).
///
/// Memory: the flat-CSR sizing pass keeps one 4-byte-per-user stamp
/// array per worker thread under *every* strategy; dense ranking adds a
/// 4-byte count array. The strategies otherwise differ in ranking cost,
/// not scratch footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountStrategy {
    /// Choose [`CountStrategy::Dense`] or [`CountStrategy::SortBased`]
    /// from the dataset shape.
    #[default]
    Auto,
    /// Epoch-stamped dense counting + counting sort by multiplicity.
    Dense,
    /// Gather all candidate ids, radix-sort, run-length encode.
    SortBased,
    /// Hash-map multiplicity counting.
    HashBased,
}

// How candidate loops evaluate similarities. The selector lives in
// `kiff_similarity` (it is shared by the baselines and the exact
// constructions, which do not depend on this crate) and is re-exported
// here because `KiffConfig` carries it.
pub use kiff_similarity::ScoringMode;

/// How much of the refinement loop's per-activity wall-clock
/// instrumentation is collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Time 1 in 64 scheduling chunks and scale the totals by the timed
    /// fraction of similarity evaluations — phase *shares* stay accurate
    /// while the hot loop takes two timestamps per 64 chunks instead of
    /// six per user. Default.
    #[default]
    Sampled,
    /// Time every user (the paper-faithful breakdown; measurably slows
    /// the loop on fast metrics).
    Full,
    /// No per-activity timing; the corresponding [`crate::KiffStats`]
    /// fields stay zero.
    Off,
}

/// Full KIFF configuration. Defaults follow §IV-D: `γ = 2k`, `β = 0.001`.
#[derive(Debug, Clone)]
pub struct KiffConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Per-iteration pop budget `γ`.
    pub gamma: Gamma,
    /// Termination threshold `β`: stop when changes-per-user in an
    /// iteration drop below it. `0.0` runs until every RCS is exhausted.
    pub beta: f64,
    /// Worker threads (`None` = all available).
    pub threads: Option<usize>,
    /// Safety cap on iterations.
    pub max_iterations: usize,
    /// Shared-item counting strategy.
    pub count_strategy: CountStrategy,
    /// Optional §VII heuristic: only ratings at or above this value
    /// contribute RCS candidates (shrinks RCSs on rating-valued data).
    pub rating_threshold: Option<f32>,
    /// Optional §VII-style cap on RCS length (top entries by shared-item
    /// count). Bounds memory and scan rate; `None` keeps full RCSs.
    pub max_rcs: Option<usize>,
    /// How the refinement loop evaluates similarities.
    pub scoring: ScoringMode,
    /// How much per-activity wall-clock instrumentation refinement
    /// collects.
    pub timing: TimingMode,
    /// Telemetry registry the run records into (`core.refine.*`
    /// counters, `core.phase.*_ns` histograms, `similarity.*` scorer
    /// counters). Each config starts with its own enabled registry;
    /// share one across layers with
    /// [`KiffConfig::with_telemetry`].
    pub telemetry: Registry,
}

impl KiffConfig {
    /// The paper's default parameters for neighbourhood size `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            gamma: Gamma::Fixed(2 * k),
            beta: 0.001,
            threads: None,
            max_iterations: 10_000,
            count_strategy: CountStrategy::Auto,
            rating_threshold: None,
            max_rcs: None,
            scoring: ScoringMode::Prepared,
            timing: TimingMode::Sampled,
            telemetry: Registry::new(),
        }
    }

    /// Exact mode: `γ = ∞`, `β = 0` (§III-D).
    pub fn exact(k: usize) -> Self {
        Self {
            gamma: Gamma::All,
            beta: 0.0,
            ..Self::new(k)
        }
    }

    /// Sets `γ`.
    pub fn with_gamma(mut self, gamma: usize) -> Self {
        self.gamma = Gamma::Fixed(gamma);
        self
    }

    /// Sets `β`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta >= 0.0 && beta.is_finite());
        self.beta = beta;
        self
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables the §VII rating-threshold heuristic.
    pub fn with_rating_threshold(mut self, threshold: f32) -> Self {
        assert!(threshold.is_finite() && threshold > 0.0);
        self.rating_threshold = Some(threshold);
        self
    }

    /// Caps every RCS at its top `cap` entries by shared-item count
    /// (the other §VII insertion limit).
    pub fn with_max_rcs(mut self, cap: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        self.max_rcs = Some(cap);
        self
    }

    /// Sets the shared-item counting strategy.
    pub fn with_count_strategy(mut self, strategy: CountStrategy) -> Self {
        self.count_strategy = strategy;
        self
    }

    /// Sets how refinement evaluates similarities.
    pub fn with_scoring(mut self, scoring: ScoringMode) -> Self {
        self.scoring = scoring;
        self
    }

    /// Sets the instrumentation level of the refinement loop.
    pub fn with_timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }

    /// Records the run into `registry` (shared, not copied): pass the
    /// same registry to several configs/engines to aggregate one
    /// unified snapshot across layers, or a
    /// [`Registry::disabled`] one to reduce recording to a single
    /// relaxed load per instrument operation.
    pub fn with_telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = registry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = KiffConfig::new(20);
        assert_eq!(cfg.k, 20);
        assert_eq!(cfg.gamma, Gamma::Fixed(40));
        assert_eq!(cfg.beta, 0.001);
        assert_eq!(cfg.count_strategy, CountStrategy::Auto);
        assert_eq!(cfg.scoring, ScoringMode::Prepared);
        assert_eq!(cfg.timing, TimingMode::Sampled);
    }

    #[test]
    fn exact_mode() {
        let cfg = KiffConfig::exact(5);
        assert_eq!(cfg.gamma, Gamma::All);
        assert_eq!(cfg.beta, 0.0);
        assert_eq!(cfg.gamma.budget(), usize::MAX);
    }

    #[test]
    fn builder_methods() {
        let cfg = KiffConfig::new(10)
            .with_gamma(7)
            .with_beta(0.1)
            .with_threads(2);
        assert_eq!(cfg.gamma, Gamma::Fixed(7));
        assert_eq!(cfg.beta, 0.1);
        assert_eq!(cfg.threads, Some(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        let _ = KiffConfig::new(0);
    }
}
