//! Mutable delta view over an immutable CSR dataset.
//!
//! [`Dataset`] is deliberately frozen: CSR rows are the fastest layout for
//! the batch algorithms, and rebuilding them per streamed rating would be
//! `O(|E|)` per update. [`DeltaDataset`] layers a sparse overlay on top:
//!
//! * **user side** — mutated users' full profiles live in a hash overlay
//!   (sorted item/rating vectors); untouched users keep serving borrowed
//!   [`ProfileRef`]s straight from the base CSR.
//! * **item side** — per-item *added* / *removed* rater deltas, so the
//!   current raters of an item (the only co-rater set a single rating
//!   update can affect) stream without rebuilding the transpose.
//!
//! When the overlay grows past the caller's threshold,
//! [`DeltaDataset::compact`] folds everything back into a fresh CSR —
//! batched re-compaction amortised across many updates, the same trade
//! LSM trees make.

use kiff_collections::{FxHashMap, FxHashSet};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::types::{ItemId, ProfileRef, Rating, UserId};

/// One mutated user's complete profile (sorted by item id).
#[derive(Debug, Clone, Default)]
struct OverlayProfile {
    items: Vec<ItemId>,
    ratings: Vec<Rating>,
}

impl OverlayProfile {
    fn from_profile(p: ProfileRef<'_>) -> Self {
        Self {
            items: p.items.to_vec(),
            ratings: p.ratings.to_vec(),
        }
    }
}

/// A [`Dataset`] plus a mutation overlay. See the module docs.
#[derive(Debug, Clone)]
pub struct DeltaDataset {
    base: Dataset,
    num_users: usize,
    num_items: usize,
    num_ratings: usize,
    overlay: FxHashMap<UserId, OverlayProfile>,
    item_added: FxHashMap<ItemId, FxHashSet<UserId>>,
    item_removed: FxHashMap<ItemId, FxHashSet<UserId>>,
}

impl DeltaDataset {
    /// Wraps `base` with an empty overlay.
    pub fn new(base: Dataset) -> Self {
        let num_users = base.num_users();
        let num_items = base.num_items();
        let num_ratings = base.num_ratings();
        // The base item profiles back every rater scan; build them once up
        // front so the first update does not pay the transpose.
        let _ = base.item_profiles();
        Self {
            base,
            num_users,
            num_items,
            num_ratings,
            overlay: FxHashMap::default(),
            item_added: FxHashMap::default(),
            item_removed: FxHashMap::default(),
        }
    }

    /// Current number of users (base plus streamed additions).
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Current number of items (grows when a rating names a new item).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Current number of ratings.
    pub fn num_ratings(&self) -> usize {
        self.num_ratings
    }

    /// The frozen base the overlay is relative to.
    pub fn base(&self) -> &Dataset {
        &self.base
    }

    /// Number of users whose profiles live in the overlay — the
    /// compaction-policy signal.
    pub fn overlay_users(&self) -> usize {
        self.overlay.len()
    }

    /// The current profile of `u`: overlay copy when mutated, borrowed CSR
    /// row otherwise; empty for users added after the base was frozen and
    /// not yet rated.
    pub fn profile(&self, u: UserId) -> ProfileRef<'_> {
        assert!((u as usize) < self.num_users, "user {u} out of bounds");
        if let Some(p) = self.overlay.get(&u) {
            ProfileRef {
                items: &p.items,
                ratings: &p.ratings,
            }
        } else if (u as usize) < self.base.num_users() {
            self.base.user_profile(u)
        } else {
            ProfileRef {
                items: &[],
                ratings: &[],
            }
        }
    }

    /// Appends a user with an empty profile, returning its id.
    pub fn add_user(&mut self) -> UserId {
        let id = self.num_users as UserId;
        self.num_users += 1;
        self.overlay.insert(id, OverlayProfile::default());
        id
    }

    /// Applies `ρ(u, i) += rating` (a repeated pair reinforces, matching
    /// [`DatasetBuilder`]'s duplicate merge). Returns `true` when the pair
    /// is newly rated — the case that changes shared-item counts.
    ///
    /// Items beyond the current bound extend the item space; users must
    /// already exist (see [`DeltaDataset::add_user`]).
    ///
    /// # Panics
    /// Panics on an out-of-range user or a non-finite/non-positive rating.
    pub fn add_rating(&mut self, u: UserId, i: ItemId, rating: Rating) -> bool {
        assert!((u as usize) < self.num_users, "user {u} out of bounds");
        assert!(
            rating.is_finite() && rating > 0.0,
            "rating must be finite and positive, got {rating}"
        );
        self.num_items = self.num_items.max(i as usize + 1);
        let profile = self.overlay_entry(u);
        match profile.items.binary_search(&i) {
            Ok(pos) => {
                profile.ratings[pos] += rating;
                false
            }
            Err(pos) => {
                profile.items.insert(pos, i);
                profile.ratings.insert(pos, rating);
                self.num_ratings += 1;
                self.record_item_add(u, i);
                true
            }
        }
    }

    /// Deletes the rating `(u, i)`; returns whether it existed.
    pub fn remove_rating(&mut self, u: UserId, i: ItemId) -> bool {
        assert!((u as usize) < self.num_users, "user {u} out of bounds");
        if self.profile(u).rating(i).is_none() {
            return false;
        }
        let profile = self.overlay_entry(u);
        let pos = profile.items.binary_search(&i).expect("checked present");
        profile.items.remove(pos);
        profile.ratings.remove(pos);
        self.num_ratings -= 1;
        self.record_item_remove(u, i);
        true
    }

    /// Streams the current raters of `i` (base row minus removals, plus
    /// additions), in no particular order.
    pub fn for_each_item_rater(&self, i: ItemId, mut f: impl FnMut(UserId)) {
        let removed = self.item_removed.get(&i);
        if (i as usize) < self.base.num_items() {
            for &u in self.base.item_profiles().row(i) {
                if !removed.is_some_and(|r| r.contains(&u)) {
                    f(u);
                }
            }
        }
        if let Some(added) = self.item_added.get(&i) {
            for &u in added {
                f(u);
            }
        }
    }

    /// The current raters of `i` as a vector (see
    /// [`DeltaDataset::for_each_item_rater`]).
    pub fn item_raters(&self, i: ItemId) -> Vec<UserId> {
        let mut out = Vec::new();
        self.for_each_item_rater(i, |u| out.push(u));
        out
    }

    /// Materialises the current state as a frozen [`Dataset`].
    pub fn to_dataset(&self) -> Dataset {
        let mut builder = DatasetBuilder::new(self.base.name(), self.num_users, self.num_items);
        builder.reserve(self.num_ratings);
        for u in 0..self.num_users as UserId {
            for (i, r) in self.profile(u).iter() {
                builder.add_rating(u, i, r);
            }
        }
        builder.build()
    }

    /// Folds the overlay into a fresh base CSR (batched re-compaction).
    /// `O(|E|)`; call when [`DeltaDataset::overlay_users`] crosses the
    /// caller's threshold so the cost amortises over the preceding updates.
    pub fn compact(&mut self) {
        self.base = self.to_dataset();
        let _ = self.base.item_profiles();
        self.overlay.clear();
        self.item_added.clear();
        self.item_removed.clear();
    }

    fn overlay_entry(&mut self, u: UserId) -> &mut OverlayProfile {
        let base_profile = if (u as usize) < self.base.num_users() {
            Some(self.base.user_profile(u))
        } else {
            None
        };
        self.overlay.entry(u).or_insert_with(|| {
            base_profile
                .map(OverlayProfile::from_profile)
                .unwrap_or_default()
        })
    }

    /// A read-only, copyable view of the current state — the handle shard
    /// workers share during parallel repair (see [`DeltaView`]).
    pub fn view(&self) -> DeltaView<'_> {
        DeltaView { data: self }
    }

    /// Marks `u` as a rater of `i`, cancelling a prior removal first.
    fn record_item_add(&mut self, u: UserId, i: ItemId) {
        if let Some(removed) = self.item_removed.get_mut(&i) {
            if removed.remove(&u) {
                return;
            }
        }
        self.item_added.entry(i).or_default().insert(u);
    }

    /// Marks `u` as no longer rating `i`, cancelling a prior addition
    /// first.
    fn record_item_remove(&mut self, u: UserId, i: ItemId) {
        if let Some(added) = self.item_added.get_mut(&i) {
            if added.remove(&u) {
                return;
            }
        }
        self.item_removed.entry(i).or_default().insert(u);
    }
}

/// A read-only, `Copy` view over a [`DeltaDataset`].
///
/// The sharded online engine mutates the dataset serially, then repairs
/// shards in parallel; every shard worker needs to read *any* user's
/// profile (similarity candidates cross shard boundaries) but must not be
/// able to mutate the store. `DeltaView` is that capability split made
/// explicit: a borrow-sized handle that is `Copy + Send + Sync` and only
/// exposes the read side, so handing one per shard to a thread pool
/// compiles without interior mutability or cloning the overlay.
#[derive(Debug, Clone, Copy)]
pub struct DeltaView<'a> {
    data: &'a DeltaDataset,
}

impl<'a> DeltaView<'a> {
    /// Current number of users.
    pub fn num_users(self) -> usize {
        self.data.num_users()
    }

    /// Current number of items.
    pub fn num_items(self) -> usize {
        self.data.num_items()
    }

    /// Current number of ratings.
    pub fn num_ratings(self) -> usize {
        self.data.num_ratings()
    }

    /// The current profile of `u` (see [`DeltaDataset::profile`]).
    pub fn profile(self, u: UserId) -> ProfileRef<'a> {
        self.data.profile(u)
    }

    /// Streams the current raters of `i` (see
    /// [`DeltaDataset::for_each_item_rater`]).
    pub fn for_each_item_rater(self, i: ItemId, f: impl FnMut(UserId)) {
        self.data.for_each_item_rater(i, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::figure2_toy;

    fn raters_sorted(d: &DeltaDataset, i: ItemId) -> Vec<UserId> {
        let mut r = d.item_raters(i);
        r.sort_unstable();
        r
    }

    #[test]
    fn untouched_view_matches_base() {
        let d = DeltaDataset::new(figure2_toy());
        assert_eq!(d.num_users(), 4);
        assert_eq!(d.num_items(), 4);
        assert_eq!(d.num_ratings(), 6);
        assert_eq!(d.profile(0).items, &[0, 1]);
        assert_eq!(raters_sorted(&d, 1), vec![0, 1]);
        assert_eq!(d.overlay_users(), 0);
    }

    #[test]
    fn add_rating_updates_both_sides() {
        let mut d = DeltaDataset::new(figure2_toy());
        // Carl(2) picks up coffee(1).
        assert!(d.add_rating(2, 1, 2.0));
        assert_eq!(d.num_ratings(), 7);
        assert_eq!(d.profile(2).items, &[1, 3]);
        assert_eq!(d.profile(2).rating(1), Some(2.0));
        assert_eq!(raters_sorted(&d, 1), vec![0, 1, 2]);
        // Untouched users still serve from the base.
        assert_eq!(d.profile(0).items, &[0, 1]);
    }

    #[test]
    fn duplicate_add_reinforces() {
        let mut d = DeltaDataset::new(figure2_toy());
        assert!(!d.add_rating(0, 1, 3.0), "pair already rated");
        assert_eq!(d.num_ratings(), 6, "no new edge");
        assert_eq!(d.profile(0).rating(1), Some(4.0), "1.0 + 3.0");
        assert_eq!(raters_sorted(&d, 1), vec![0, 1], "rater set unchanged");
    }

    #[test]
    fn remove_rating_updates_both_sides() {
        let mut d = DeltaDataset::new(figure2_toy());
        assert!(d.remove_rating(1, 1)); // Bob drops coffee
        assert!(!d.remove_rating(1, 1), "already gone");
        assert_eq!(d.num_ratings(), 5);
        assert_eq!(d.profile(1).items, &[2]);
        assert_eq!(raters_sorted(&d, 1), vec![0]);
    }

    #[test]
    fn add_after_remove_cancels() {
        let mut d = DeltaDataset::new(figure2_toy());
        assert!(d.remove_rating(0, 1));
        assert!(d.add_rating(0, 1, 5.0));
        assert_eq!(d.num_ratings(), 6);
        assert_eq!(raters_sorted(&d, 1), vec![0, 1]);
        assert_eq!(d.profile(0).rating(1), Some(5.0), "fresh value, not sum");
    }

    #[test]
    fn new_users_and_items_grow_the_space() {
        let mut d = DeltaDataset::new(figure2_toy());
        let u = d.add_user();
        assert_eq!(u, 4);
        assert_eq!(d.num_users(), 5);
        assert!(d.profile(u).is_empty());
        // Rating an unseen item grows the item space.
        assert!(d.add_rating(u, 9, 1.0));
        assert_eq!(d.num_items(), 10);
        assert_eq!(d.item_raters(9), vec![4]);
        assert!(d.item_raters(7).is_empty());
    }

    #[test]
    fn to_dataset_round_trips_all_mutations() {
        let mut d = DeltaDataset::new(figure2_toy());
        d.remove_rating(1, 2);
        d.add_rating(2, 0, 2.0);
        let u = d.add_user();
        d.add_rating(u, 3, 1.0);
        let frozen = d.to_dataset();
        assert_eq!(frozen.num_users(), 5);
        assert_eq!(frozen.num_ratings(), d.num_ratings());
        assert_eq!(frozen.user_profile(1).items, &[1]);
        assert_eq!(frozen.user_profile(2).items, &[0, 3]);
        assert_eq!(frozen.user_profile(4).items, &[3]);
        // The item side of the frozen dataset agrees with the live deltas.
        for i in 0..frozen.num_items() as ItemId {
            let mut live = d.item_raters(i);
            live.sort_unstable();
            assert_eq!(frozen.item_profile(i).items, &live[..], "item {i}");
        }
    }

    #[test]
    fn compact_clears_overlay_preserving_content() {
        let mut d = DeltaDataset::new(figure2_toy());
        d.add_rating(2, 1, 2.0);
        d.remove_rating(0, 0);
        assert_eq!(d.overlay_users(), 2);
        let before = d.to_dataset();
        d.compact();
        assert_eq!(d.overlay_users(), 0);
        let after = d.to_dataset();
        assert_eq!(before.num_ratings(), after.num_ratings());
        for u in 0..before.num_users() as UserId {
            assert_eq!(before.user_profile(u).items, after.user_profile(u).items);
        }
        // Still mutable after compaction (item 0 lost its only base rater
        // above, so Dave is now alone on it).
        assert!(d.add_rating(3, 0, 1.0));
        assert_eq!(raters_sorted(&d, 0), vec![3]);
    }

    #[test]
    fn view_reads_live_state_and_is_shareable() {
        fn assert_shareable<T: Copy + Send + Sync>(_: T) {}
        let mut d = DeltaDataset::new(figure2_toy());
        d.add_rating(2, 1, 2.0);
        let v = d.view();
        assert_shareable(v);
        assert_eq!(v.num_users(), 4);
        assert_eq!(v.num_ratings(), 7);
        assert_eq!(v.profile(2).items, &[1, 3]);
        let mut raters = Vec::new();
        v.for_each_item_rater(1, |u| raters.push(u));
        raters.sort_unstable();
        assert_eq!(raters, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rating_unknown_user_panics() {
        let mut d = DeltaDataset::new(figure2_toy());
        d.add_rating(99, 0, 1.0);
    }
}
