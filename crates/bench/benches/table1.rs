//! Bench for Table I: dataset descriptor computation (sizes, density,
//! average/max profile sizes) on a calibrated synthetic dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_dataset::stats::{item_profile_sizes, user_profile_sizes};
use kiff_dataset::DatasetStats;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(1);
    let _ = ds.item_profiles(); // warm the transpose cache
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("dataset_stats", |b| {
        b.iter(|| black_box(DatasetStats::compute(black_box(&ds))))
    });
    group.bench_function("profile_size_vectors", |b| {
        b.iter(|| {
            (
                black_box(user_profile_sizes(&ds)),
                black_box(item_profile_sizes(&ds)),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
