//! A blocking client for the `kiff-serve` wire protocol.
//!
//! One request in flight per connection: [`Client::request`] writes a
//! frame and blocks for the answer. Server-side failures come back as
//! [`KiffError::Remote`] carrying the server's error `kind` tag, so a
//! caller can still branch on the failure class across the wire.

use std::net::TcpStream;

use kiff_core::KiffError;
use kiff_graph::Neighbor;
use kiff_online::Update;
use serde_json::Value;

use crate::wire::{read_frame, write_frame, Request};

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

fn protocol(msg: impl Into<String>) -> KiffError {
    KiffError::Protocol(msg.into())
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Self, KiffError> {
        let stream = TcpStream::connect(addr).map_err(KiffError::Io)?;
        stream.set_nodelay(true).map_err(KiffError::Io)?;
        Ok(Self { stream })
    }

    /// Sends `request` and returns the decoded response body. An
    /// `"ok": false` response is mapped to [`KiffError::Remote`].
    pub fn request(&mut self, request: &Request) -> Result<Value, KiffError> {
        write_frame(&mut self.stream, &request.to_value())?;
        let response = read_frame(&mut self.stream)?
            .ok_or_else(|| protocol("server closed the connection"))?;
        let ok = response
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| protocol("response missing `ok`"))?;
        if ok {
            return Ok(response);
        }
        let error = response.get("error");
        let kind = error
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let message = error
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap_or("unspecified server error")
            .to_string();
        Err(KiffError::Remote { kind, message })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), KiffError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// `user`'s current neighbours, best first.
    pub fn neighbors(&mut self, user: u32) -> Result<Vec<Neighbor>, KiffError> {
        let response = self.request(&Request::Neighbors { user })?;
        response
            .get("neighbors")
            .and_then(Value::as_array)
            .ok_or_else(|| protocol("response missing `neighbors`"))?
            .iter()
            .map(|nb| {
                let id = nb
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| protocol("neighbor missing `id`"))?
                    as u32;
                let sim = nb
                    .get("sim")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| protocol("neighbor missing `sim`"))?;
                Ok(Neighbor { id, sim })
            })
            .collect()
    }

    /// Top-`top` item recommendations for `user`, as `(item, score)`.
    pub fn recommend(&mut self, user: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Recommend { user, top })?;
        pairs(&response, "recommendations", "item", "score")
    }

    /// Predicted rating of `item` by `user` (`None` = no basis).
    pub fn predict(&mut self, user: u32, item: u32) -> Result<Option<f64>, KiffError> {
        let response = self.request(&Request::Predict { user, item })?;
        match response
            .field("prediction")
            .map_err(|_| protocol("response missing `prediction`"))?
        {
            Value::Null => Ok(None),
            v => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| protocol("non-numeric prediction")),
        }
    }

    /// The `top` users most interested in `item`, as `(user, score)`.
    pub fn audience(&mut self, item: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Audience { item, top })?;
        pairs(&response, "audience", "user", "score")
    }

    /// Users most similar to the ad-hoc profile `items`.
    pub fn search(
        &mut self,
        items: &[(u32, f32)],
        top: usize,
    ) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Search {
            items: items.to_vec(),
            top,
        })?;
        pairs(&response, "hits", "user", "sim")
    }

    /// Applies `updates` (persisted server-side first); returns the
    /// number applied.
    pub fn update(&mut self, updates: &[Update]) -> Result<u64, KiffError> {
        let response = self.request(&Request::Update {
            updates: updates.to_vec(),
        })?;
        response
            .get("applied")
            .and_then(Value::as_u64)
            .ok_or_else(|| protocol("response missing `applied`"))
    }

    /// Engine lifetime statistics as a raw JSON object.
    pub fn stats(&mut self) -> Result<Value, KiffError> {
        self.request(&Request::Stats)
    }

    /// The daemon's telemetry snapshot as a raw JSON object.
    pub fn metrics(&mut self) -> Result<Value, KiffError> {
        let response = self.request(&Request::Metrics)?;
        response
            .get("metrics")
            .cloned()
            .ok_or_else(|| protocol("response missing `metrics`"))
    }

    /// Forces a snapshot; returns the covered sequence number.
    pub fn snapshot(&mut self) -> Result<u64, KiffError> {
        let response = self.request(&Request::Snapshot)?;
        response
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| protocol("response missing `seq`"))
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), KiffError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

fn pairs(
    response: &Value,
    field: &str,
    key: &str,
    value: &str,
) -> Result<Vec<(u32, f64)>, KiffError> {
    response
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| protocol(format!("response missing `{field}`")))?
        .iter()
        .map(|entry| {
            let k = entry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| protocol(format!("entry missing `{key}`")))?
                as u32;
            let v = entry
                .get(value)
                .and_then(Value::as_f64)
                .ok_or_else(|| protocol(format!("entry missing `{value}`")))?;
            Ok((k, v))
        })
        .collect()
}
