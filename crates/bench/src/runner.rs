//! Normalised algorithm runners shared by experiments and benches.

use kiff_baselines::{GreedyConfig, HyRec, L2Knng, L2KnngConfig, Lsh, LshConfig, NnDescent};
use kiff_core::{Kiff, KiffConfig, TimingMode};
use kiff_dataset::Dataset;
use kiff_eval::AlgoRunRecord;
use kiff_graph::{exact_knn, recall, IterationTrace, KnnGraph, NoObserver};
use kiff_similarity::WeightedCosine;

/// Common knobs for a comparison run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Neighbourhood size.
    pub k: usize,
    /// Worker threads.
    pub threads: Option<usize>,
    /// Seed for random initial graphs.
    pub seed: u64,
}

/// Output of one algorithm run, normalised across algorithms.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The constructed graph.
    pub graph: KnnGraph,
    /// Normalised record (recall left at 0 until ground truth is applied).
    pub record: AlgoRunRecord,
    /// Per-iteration traces.
    pub per_iteration: Vec<IterationTrace>,
}

impl RunOutcome {
    /// Fills in recall against `exact`.
    pub fn with_recall(mut self, exact: &KnnGraph) -> Self {
        self.record.recall = recall(exact, &self.graph);
        self
    }
}

/// Runs KIFF with the paper's defaults (γ = 2k, β = 0.001) under fitted
/// cosine.
pub fn run_kiff(dataset: &Dataset, opts: RunOptions) -> RunOutcome {
    run_kiff_with(dataset, opts, None, None)
}

/// Runs KIFF with optional overrides of `γ` and `β`.
pub fn run_kiff_with(
    dataset: &Dataset,
    opts: RunOptions,
    gamma: Option<usize>,
    beta: Option<f64>,
) -> RunOutcome {
    let sim = WeightedCosine::fit(dataset);
    // Paper tables report phase breakdowns: measure every user instead of
    // the production default's 1-in-64 sampling.
    let mut config = KiffConfig::new(opts.k).with_timing(TimingMode::Full);
    config.threads = opts.threads;
    if let Some(g) = gamma {
        config = config.with_gamma(g);
    }
    if let Some(b) = beta {
        config = config.with_beta(b);
    }
    let result = Kiff::new(config).run_observed(dataset, &sim, &mut NoObserver);
    let stats = &result.stats;
    RunOutcome {
        record: AlgoRunRecord {
            algorithm: "KIFF".into(),
            dataset: dataset.name().into(),
            k: opts.k,
            recall: 0.0,
            wall_time_s: stats.total_time.as_secs_f64(),
            scan_rate: stats.scan_rate,
            iterations: stats.iterations,
            preprocessing_s: stats.preprocessing_time().as_secs_f64(),
            candidate_selection_s: stats.candidate_selection_time.as_secs_f64(),
            similarity_s: stats.similarity_time.as_secs_f64(),
        },
        per_iteration: stats.per_iteration.clone(),
        graph: result.graph,
    }
}

/// Runs NN-Descent with the paper's defaults (no sampling, δ = 0.001).
pub fn run_nndescent(dataset: &Dataset, opts: RunOptions) -> RunOutcome {
    let sim = WeightedCosine::fit(dataset);
    let mut config = GreedyConfig::new(opts.k);
    config.threads = opts.threads;
    config.seed = opts.seed;
    let (graph, stats) = NnDescent::new(config).run(dataset, &sim);
    RunOutcome {
        record: AlgoRunRecord {
            algorithm: "NN-Descent".into(),
            dataset: dataset.name().into(),
            k: opts.k,
            recall: 0.0,
            wall_time_s: stats.total_time.as_secs_f64(),
            scan_rate: stats.scan_rate,
            iterations: stats.iterations,
            preprocessing_s: stats.init_time.as_secs_f64(),
            candidate_selection_s: stats.candidate_selection_time.as_secs_f64(),
            similarity_s: stats.similarity_time.as_secs_f64(),
        },
        per_iteration: stats.per_iteration.clone(),
        graph,
    }
}

/// Runs HyRec with the paper's defaults (r = 0, KIFF's termination).
pub fn run_hyrec(dataset: &Dataset, opts: RunOptions) -> RunOutcome {
    let sim = WeightedCosine::fit(dataset);
    let mut config = GreedyConfig::new(opts.k);
    config.threads = opts.threads;
    config.seed = opts.seed;
    let (graph, stats) = HyRec::new(config).run(dataset, &sim);
    RunOutcome {
        record: AlgoRunRecord {
            algorithm: "HyRec".into(),
            dataset: dataset.name().into(),
            k: opts.k,
            recall: 0.0,
            wall_time_s: stats.total_time.as_secs_f64(),
            scan_rate: stats.scan_rate,
            iterations: stats.iterations,
            preprocessing_s: stats.init_time.as_secs_f64(),
            candidate_selection_s: stats.candidate_selection_time.as_secs_f64(),
            similarity_s: stats.similarity_time.as_secs_f64(),
        },
        per_iteration: stats.per_iteration.clone(),
        graph,
    }
}

/// Runs the L2Knng-style two-phase pruning construction (§VI related
/// work; exact under cosine). Sequential by design — see the module docs
/// of `kiff_baselines::l2knng`.
pub fn run_l2knng(dataset: &Dataset, opts: RunOptions) -> RunOutcome {
    let (graph, stats) = L2Knng::new(L2KnngConfig::new(opts.k)).run(dataset);
    RunOutcome {
        record: AlgoRunRecord {
            algorithm: "L2Knng".into(),
            dataset: dataset.name().into(),
            k: opts.k,
            recall: 0.0,
            wall_time_s: stats.total_time.as_secs_f64(),
            scan_rate: stats.scan_rate,
            iterations: 1,
            preprocessing_s: stats.approx_time.as_secs_f64(),
            candidate_selection_s: 0.0,
            similarity_s: stats.verify_time.as_secs_f64(),
        },
        per_iteration: Vec::new(),
        graph,
    }
}

/// Runs LSH banding with cosine hyperplane signatures (§VI related work).
pub fn run_lsh(dataset: &Dataset, opts: RunOptions) -> RunOutcome {
    let sim = WeightedCosine::fit(dataset);
    let mut config = LshConfig::new(opts.k);
    config.threads = opts.threads;
    config.seed = opts.seed;
    let (graph, stats) = Lsh::new(config).run(dataset, &sim);
    RunOutcome {
        record: AlgoRunRecord {
            algorithm: "LSH".into(),
            dataset: dataset.name().into(),
            k: opts.k,
            recall: 0.0,
            wall_time_s: stats.total_time.as_secs_f64(),
            scan_rate: stats.scan_rate,
            iterations: 1,
            preprocessing_s: stats.signature_time.as_secs_f64(),
            candidate_selection_s: 0.0,
            similarity_s: stats.join_time.as_secs_f64(),
        },
        per_iteration: Vec::new(),
        graph,
    }
}

/// Exact ground truth under fitted cosine.
pub fn ground_truth(dataset: &Dataset, k: usize, threads: Option<usize>) -> KnnGraph {
    let sim = WeightedCosine::fit(dataset);
    exact_knn(dataset, &sim, k, threads)
}

/// Runs all three algorithms and scores them against exact ground truth —
/// one Table II block.
pub fn compare_all(dataset: &Dataset, opts: RunOptions, exact: &KnnGraph) -> Vec<RunOutcome> {
    vec![
        run_nndescent(dataset, opts).with_recall(exact),
        run_hyrec(dataset, opts).with_recall(exact),
        run_kiff(dataset, opts).with_recall(exact),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::small_bench_dataset;

    #[test]
    fn compare_all_produces_scored_records() {
        let ds = small_bench_dataset(11);
        let opts = RunOptions {
            k: 5,
            threads: Some(2),
            seed: 3,
        };
        let exact = ground_truth(&ds, 5, Some(2));
        let outcomes = compare_all(&ds, opts, &exact);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert!(
                o.record.recall > 0.3,
                "{}: {}",
                o.record.algorithm,
                o.record.recall
            );
            assert!(o.record.wall_time_s > 0.0);
            assert!(o.record.scan_rate > 0.0);
            assert!(!o.per_iteration.is_empty());
        }
        // KIFF's headline property on sparse data: fewest similarity
        // evaluations (lowest scan rate) with the best recall.
        let kiff = &outcomes[2].record;
        assert_eq!(kiff.algorithm, "KIFF");
        assert!(kiff.scan_rate <= outcomes[0].record.scan_rate);
        assert!(kiff.recall + 1e-9 >= outcomes[0].record.recall.min(outcomes[1].record.recall));
    }
}
