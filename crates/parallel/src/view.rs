//! Epoch-published shared views: the read side of a single-writer system.
//!
//! The serving daemon has one writer (the engine host applying batches
//! under its own mutex) and many readers (query connections). Readers
//! must never wait on the writer's long critical section, so the writer
//! publishes an immutable snapshot ([`ViewCell::publish`]) after every
//! batch and readers load it with — in the steady state — **one relaxed
//! atomic read** ([`ViewCell::load_cached`] against a per-reader
//! [`ViewCache`]).
//!
//! There is no `arc-swap` crate in this workspace, so the cell is built
//! from `std` parts: an epoch counter plus a micro-mutex guarding the
//! `Arc` slot. The micro-mutex is held only for an `Arc` clone or
//! pointer swap (a few nanoseconds); crucially it is *not* the writer's
//! engine mutex, so a reader can at worst collide with another reader's
//! clone or the writer's swap — never with an in-flight `apply_batch`.
//!
//! [`SnapshotCache`] is the engine-internal sibling: a version-tagged
//! lazy cache for derived structures (CSR graph snapshots, materialized
//! datasets) whose build runs **outside** any lock, fixing the
//! lock-held-across-O(E)-build pattern the pre-view engines had.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared slot holding the current immutable view of some state,
/// republished by a single writer and loaded by many readers.
///
/// Readers are wait-free with respect to the writer's long critical
/// sections: the internal mutex only ever guards an `Arc` clone/swap.
/// Pair with a per-reader [`ViewCache`] to collapse the steady-state
/// load to a single atomic epoch check.
#[derive(Debug)]
pub struct ViewCell<T> {
    /// Bumped on every publish; `ViewCache` validates against this.
    epoch: AtomicU64,
    /// Micro-lock: held only to clone or replace the `Arc`, never while
    /// building `T`.
    slot: Mutex<Arc<T>>,
}

impl<T> ViewCell<T> {
    /// Creates a cell publishing `initial` as epoch 1.
    pub fn new(initial: Arc<T>) -> Self {
        ViewCell {
            epoch: AtomicU64::new(1),
            slot: Mutex::new(initial),
        }
    }

    /// Atomically replaces the published view, returning the new epoch.
    ///
    /// The epoch is bumped *after* the swap, so a reader that observes
    /// epoch `e` and then loads the slot can only see the view for `e`
    /// or something newer — never an older view tagged with a newer
    /// epoch.
    pub fn publish(&self, view: Arc<T>) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = view;
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(slot);
        epoch
    }

    /// Loads the current view (one micro-lock clone).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Loads the current view and the epoch it was observed at.
    pub fn load_with_epoch(&self) -> (Arc<T>, u64) {
        let slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        let view = Arc::clone(&slot);
        // Read the epoch while still holding the slot: the writer bumps
        // the epoch under the same lock, so this pairing is exact.
        let epoch = self.epoch.load(Ordering::Acquire);
        drop(slot);
        (view, epoch)
    }

    /// Loads through a per-reader cache: in the steady state (no
    /// publish since the last call) this is a single atomic load and
    /// an `Arc` clone of the cached view — no lock at all.
    pub fn load_cached(&self, cache: &mut ViewCache<T>) -> Arc<T> {
        let current = self.epoch.load(Ordering::Acquire);
        match &cache.view {
            Some(v) if cache.epoch == current => Arc::clone(v),
            _ => {
                let (view, epoch) = self.load_with_epoch();
                cache.epoch = epoch;
                cache.view = Some(Arc::clone(&view));
                view
            }
        }
    }

    /// The current publish epoch (starts at 1, +1 per publish).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// Per-reader memo for [`ViewCell::load_cached`].
///
/// One per connection/thread; never shared. Holding one keeps the last
/// view's `Arc` alive, which is exactly the snapshot-isolation contract:
/// a reader mid-request keeps its view even as the writer publishes.
#[derive(Debug)]
pub struct ViewCache<T> {
    epoch: u64,
    view: Option<Arc<T>>,
}

impl<T> ViewCache<T> {
    /// An empty cache; the first load always hits the cell.
    pub fn new() -> Self {
        ViewCache {
            epoch: 0,
            view: None,
        }
    }
}

impl<T> Default for ViewCache<T> {
    fn default() -> Self {
        ViewCache::new()
    }
}

/// A version-tagged lazy cache for a derived structure (graph snapshot,
/// materialized dataset) owned by a mutable engine.
///
/// The contract: mutation paths hold `&mut` on the engine (so no reader
/// is concurrent with [`SnapshotCache::invalidate`] by Rust's aliasing
/// rules), while read paths share `&self` and may race each other in
/// [`SnapshotCache::get_or_build`]. The build closure therefore runs
/// **outside** the lock; publication re-checks the version under a
/// short critical section and keeps whichever same-version value landed
/// first, so concurrent readers agree on one `Arc` (pointer-stable
/// caching) and a torn half-built value can never be observed.
#[derive(Debug)]
pub struct SnapshotCache<T> {
    /// Bumped by `invalidate`; entries are tagged with the version they
    /// were built at and ignored once stale.
    version: AtomicU64,
    entry: Mutex<Option<(u64, Arc<T>)>>,
}

impl<T> SnapshotCache<T> {
    /// An empty cache at version 0.
    pub fn new() -> Self {
        SnapshotCache {
            version: AtomicU64::new(0),
            entry: Mutex::new(None),
        }
    }

    /// Marks any cached value stale. Callers hold `&mut` on the owning
    /// engine, but `&self` here keeps the engine's field borrows simple.
    pub fn invalidate(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
        // Dropping the stale entry eagerly releases its memory; the
        // version tag alone already guarantees correctness.
        let mut entry = self.entry.lock().unwrap_or_else(|e| e.into_inner());
        *entry = None;
    }

    /// Returns the cached value, building (outside the lock) when the
    /// cache is empty or stale.
    pub fn get_or_build(&self, build: impl FnOnce() -> T) -> Arc<T> {
        let version = self.version.load(Ordering::Acquire);
        {
            let entry = self.entry.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((v, cached)) = entry.as_ref() {
                if *v == version {
                    return Arc::clone(cached);
                }
            }
        }
        // Build with no lock held: concurrent readers may duplicate the
        // work, but none of them ever blocks behind an O(E) build.
        let built = Arc::new(build());
        let mut entry = self.entry.lock().unwrap_or_else(|e| e.into_inner());
        // Install only if still current and nobody beat us: first
        // same-version install wins so all readers share one Arc.
        match entry.as_ref() {
            Some((v, cached)) if *v == version => Arc::clone(cached),
            _ => {
                if self.version.load(Ordering::Acquire) == version {
                    *entry = Some((version, Arc::clone(&built)));
                }
                built
            }
        }
    }
}

impl<T> Default for SnapshotCache<T> {
    fn default() -> Self {
        SnapshotCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn publish_and_load_round_trip() {
        let cell = ViewCell::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.epoch(), 1);
        let epoch = cell.publish(Arc::new(2));
        assert_eq!(epoch, 2);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn cached_load_skips_the_lock_until_a_publish() {
        let cell = ViewCell::new(Arc::new(10u32));
        let mut cache = ViewCache::new();
        let a = cell.load_cached(&mut cache);
        let b = cell.load_cached(&mut cache);
        assert!(Arc::ptr_eq(&a, &b), "steady state reuses the cached Arc");
        cell.publish(Arc::new(11));
        let c = cell.load_cached(&mut cache);
        assert_eq!(*c, 11, "cache notices the new epoch");
    }

    #[test]
    fn readers_see_monotone_epochs_under_a_publishing_writer() {
        let cell = Arc::new(ViewCell::new(Arc::new(0u64)));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for i in 1..=500u64 {
                    cell.publish(Arc::new(i));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut cache = ViewCache::new();
                    let mut last = 0u64;
                    for _ in 0..2000 {
                        let v = *cell.load_cached(&mut cache);
                        assert!(v >= last, "view went backwards: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 500);
    }

    #[test]
    fn snapshot_cache_is_pointer_stable_until_invalidated() {
        let cache: SnapshotCache<Vec<u32>> = SnapshotCache::new();
        let a = cache.get_or_build(|| vec![1, 2, 3]);
        let b = cache.get_or_build(|| unreachable!("must reuse the cache"));
        assert!(Arc::ptr_eq(&a, &b));
        cache.invalidate();
        let c = cache.get_or_build(|| vec![4]);
        assert_eq!(*c, vec![4]);
    }

    #[test]
    fn snapshot_cache_concurrent_readers_converge_without_blocking() {
        let cache = Arc::new(SnapshotCache::<u64>::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                thread::spawn(move || {
                    let mut values = Vec::new();
                    for _ in 0..200 {
                        values.push(*cache.get_or_build(|| {
                            builds.fetch_add(1, Ordering::Relaxed);
                            42
                        }));
                    }
                    values
                })
            })
            .collect();
        for h in handles {
            for v in h.join().unwrap() {
                assert_eq!(v, 42);
            }
        }
        // Duplicated builds are allowed (racing first fills), but the
        // cache must converge: once filled, later reads reuse it.
        let a = cache.get_or_build(|| unreachable!("cache is warm"));
        let b = cache.get_or_build(|| unreachable!("cache is warm"));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_cache_stale_build_is_not_installed() {
        let cache: SnapshotCache<u32> = SnapshotCache::new();
        let _ = cache.get_or_build(|| 1);
        cache.invalidate();
        // A build that started before an invalidate arriving mid-build
        // must not poison the cache: simulate by invalidating inside
        // the closure.
        let v = cache.get_or_build(|| {
            cache.invalidate();
            7
        });
        assert_eq!(*v, 7, "caller still gets its own build result");
        let fresh = cache.get_or_build(|| 9);
        assert_eq!(*fresh, 9, "stale 7 was not installed");
    }
}
