//! Point-in-time engine snapshots.
//!
//! A snapshot freezes everything recovery needs to resume without a
//! rebuild: the compacted dataset, the KNN graph (raw `f64` bits, so a
//! restored engine's heaps are bit-identical), and — optionally — the
//! per-user shared-item counters. Counters are a pure speed
//! optimisation: recounting them from the dataset yields the same
//! values (counting is exact), just slower, so a reader missing the
//! section still recovers correctly via `OnlineKnn::from_graph`.
//!
//! ```text
//! magic    b"KIFS"
//! version  u16 (currently 3)
//! seq      u64      — the WAL sequence this snapshot covers (1..=seq)
//! hwm      u64      — applied-batch high-water mark (version ≥ 2)
//! epoch    u64      — replication leadership epoch (version ≥ 3)
//! dataset  kiff_dataset::codec block (b"KIFD")
//! graph    kiff_graph::codec block (b"KIFG")
//! counters u8 presence flag; when 1: per user u32 len,
//!          then len × (u32 co-rater id, u32 shared-item count)
//! ```
//!
//! Version 2 added the applied-batch high-water mark: once a snapshot
//! lets the WAL prune segments, the hwm is the only surviving proof
//! that a client-retried batch was already applied — losing it would
//! re-open the double-apply window the WAL's commit markers close.
//! Version 3 added the replication leadership epoch: a promoted replica
//! bumps it and snapshots immediately, so the fence against the old
//! primary's late frames survives a restart. Version-1 and -2 files
//! still load (with `batch_hwm = 0` / `epoch = 0` respectively).
//!
//! Files are named `snap-{seq:016}.kifs` and written via a `.tmp` +
//! `fsync` + atomic rename, so a crash mid-write leaves no torn
//! snapshot behind — only the previous one. The `snapshot.write` and
//! `snapshot.rename` failpoints ([`kiff_core::fault`]) fire here,
//! scoped by the snapshot directory path.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use kiff_core::fault::{self, points};
use kiff_core::KiffError;
use kiff_dataset::{Dataset, UserId};
use kiff_graph::KnnGraph;

const MAGIC: &[u8; 4] = b"KIFS";
const VERSION: u16 = 3;

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The WAL sequence number this snapshot covers (updates `1..=seq`).
    pub seq: u64,
    /// Highest client-assigned batch id applied at the snapshot point
    /// (0 in version-1 files, which predate batch ids).
    pub batch_hwm: u64,
    /// Replication leadership epoch at the snapshot point (0 in
    /// version-1/-2 files, which predate replication).
    pub epoch: u64,
    /// The compacted dataset at the snapshot point.
    pub dataset: Dataset,
    /// The KNN graph at the snapshot point, bit-identical to the writer's.
    pub graph: KnnGraph,
    /// Per-user shared-item counters, when the writer exported them.
    pub counters: Option<Vec<Vec<(UserId, u32)>>>,
}

fn corrupt(detail: impl Into<String>) -> KiffError {
    KiffError::corrupt("snapshot", detail)
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// The canonical file name for the snapshot covering `seq`.
pub fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:016}.kifs")
}

/// Writes a snapshot of (`dataset`, `graph`, `counters`) covering WAL
/// sequence `seq` with applied-batch high-water mark `batch_hwm` and
/// replication leadership epoch `epoch` into `dir`, atomically. Returns
/// the final path.
pub fn save_snapshot(
    dir: &Path,
    seq: u64,
    batch_hwm: u64,
    epoch: u64,
    dataset: &Dataset,
    graph: &KnnGraph,
    counters: Option<&[Vec<(UserId, u32)>]>,
) -> Result<PathBuf, KiffError> {
    fs::create_dir_all(dir).map_err(KiffError::Io)?;
    let ctx = dir.to_string_lossy();
    let final_path = dir.join(snapshot_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_name(seq)));

    // A fault anywhere before the rename leaves only the .tmp file,
    // which `latest_snapshot` never picks up — clean it up on the way
    // out so a retried snapshot starts fresh.
    let write_result = (|| -> Result<(), KiffError> {
        fault::check_ctx(points::SNAPSHOT_WRITE, &ctx)?;
        let file = File::create(&tmp_path).map_err(KiffError::Io)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC).map_err(KiffError::Io)?;
        w.write_all(&VERSION.to_le_bytes()).map_err(KiffError::Io)?;
        w.write_all(&seq.to_le_bytes()).map_err(KiffError::Io)?;
        w.write_all(&batch_hwm.to_le_bytes())
            .map_err(KiffError::Io)?;
        w.write_all(&epoch.to_le_bytes()).map_err(KiffError::Io)?;
        kiff_dataset::codec::write_dataset(&mut w, dataset).map_err(KiffError::Io)?;
        kiff_graph::codec::write_graph(&mut w, graph).map_err(KiffError::Io)?;
        match counters {
            Some(rows) => {
                if rows.len() != dataset.num_users() {
                    return Err(corrupt(format!(
                        "{} counter rows for {} users",
                        rows.len(),
                        dataset.num_users()
                    )));
                }
                w.write_all(&[1]).map_err(KiffError::Io)?;
                // One write per row: counters dominate the file, and
                // per-field writes cost more than the encoding itself.
                let mut buf: Vec<u8> = Vec::new();
                for row in rows {
                    buf.clear();
                    buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
                    for &(v, c) in row {
                        buf.extend_from_slice(&v.to_le_bytes());
                        buf.extend_from_slice(&c.to_le_bytes());
                    }
                    w.write_all(&buf).map_err(KiffError::Io)?;
                }
            }
            None => w.write_all(&[0]).map_err(KiffError::Io)?,
        }
        let file = w.into_inner().map_err(|e| KiffError::Io(e.into()))?;
        file.sync_all().map_err(KiffError::Io)?;
        drop(file);
        fault::check_ctx(points::SNAPSHOT_RENAME, &ctx)?;
        fs::rename(&tmp_path, &final_path).map_err(KiffError::Io)?;
        Ok(())
    })();
    if let Err(e) = write_result {
        let _ = fs::remove_file(&tmp_path);
        return Err(e);
    }
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Reads and validates the snapshot at `path`.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, KiffError> {
    let file = File::open(path).map_err(KiffError::Io)?;
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(KiffError::from)?;
    if &magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:?}")));
    }
    let version = read_u16(&mut r).map_err(KiffError::from)?;
    if !(1..=VERSION).contains(&version) {
        return Err(corrupt(format!(
            "unsupported version {version} (expected 1..={VERSION})"
        )));
    }
    let seq = read_u64(&mut r).map_err(KiffError::from)?;
    // Version 1 predates batch-id dedup; an hwm of 0 dedupes nothing.
    let batch_hwm = if version >= 2 {
        read_u64(&mut r).map_err(KiffError::from)?
    } else {
        0
    };
    // Versions 1–2 predate replication; epoch 0 fences nothing.
    let epoch = if version >= 3 {
        read_u64(&mut r).map_err(KiffError::from)?
    } else {
        0
    };
    let dataset = kiff_dataset::codec::read_dataset(&mut r).map_err(KiffError::from)?;
    let graph = kiff_graph::codec::read_graph(&mut r).map_err(KiffError::from)?;
    if graph.num_users() != dataset.num_users() {
        return Err(corrupt(format!(
            "graph covers {} users, dataset {}",
            graph.num_users(),
            dataset.num_users()
        )));
    }

    let mut flag = [0u8; 1];
    r.read_exact(&mut flag).map_err(KiffError::from)?;
    let counters = match flag[0] {
        0 => None,
        1 => {
            let n = dataset.num_users();
            let mut rows = Vec::with_capacity(n);
            // Bulk-read each row: recovery time is dominated by this
            // section, and two `read_exact` calls per pair cost more
            // than the decoding itself.
            let mut buf: Vec<u8> = Vec::new();
            for u in 0..n {
                let len = read_u32(&mut r).map_err(KiffError::from)? as usize;
                if len > n {
                    return Err(corrupt(format!("user {u} has {len} counter entries")));
                }
                buf.resize(len * 8, 0);
                r.read_exact(&mut buf).map_err(KiffError::from)?;
                let mut row = Vec::with_capacity(len);
                for pair in buf.chunks_exact(8) {
                    let v = u32::from_le_bytes(pair[0..4].try_into().expect("4-byte chunk"));
                    let c = u32::from_le_bytes(pair[4..8].try_into().expect("4-byte chunk"));
                    row.push((v, c));
                }
                rows.push(row);
            }
            Some(rows)
        }
        other => return Err(corrupt(format!("bad counters flag {other}"))),
    };
    Ok(Snapshot {
        seq,
        batch_hwm,
        epoch,
        dataset,
        graph,
        counters,
    })
}

/// The newest complete snapshot in `dir`, as `(seq, path)`.
pub fn latest_snapshot(dir: &Path) -> Result<Option<(u64, PathBuf)>, KiffError> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(dir).map_err(KiffError::Io)? {
        let entry = entry.map_err(KiffError::Io)?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|rest| rest.strip_suffix(".kifs"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| seq > *b) {
                best = Some((seq, entry.path()));
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_graph::Neighbor;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiff-snap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn toy_graph() -> KnnGraph {
        KnnGraph::from_neighbors(
            2,
            vec![
                vec![Neighbor { id: 1, sim: 0.5 }],
                vec![Neighbor { id: 0, sim: 0.5 }],
                vec![Neighbor { id: 3, sim: 1.0 }],
                vec![Neighbor { id: 2, sim: 1.0 }],
            ],
        )
    }

    #[test]
    fn round_trips_with_and_without_counters() {
        let dir = tmp("rt");
        let ds = figure2_toy();
        let graph = toy_graph();
        let counters = vec![
            vec![(1u32, 1u32)],
            vec![(0, 1), (2, 1)],
            vec![(1, 1)],
            vec![],
        ];

        save_snapshot(&dir, 7, 41, 2, &ds, &graph, Some(&counters)).unwrap();
        let snap = load_snapshot(&dir.join(snapshot_name(7))).unwrap();
        assert_eq!(snap.seq, 7);
        assert_eq!(snap.batch_hwm, 41);
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.dataset.num_ratings(), ds.num_ratings());
        assert_eq!(snap.graph, graph);
        assert_eq!(snap.counters.as_deref(), Some(&counters[..]));

        save_snapshot(&dir, 9, 0, 0, &ds, &graph, None).unwrap();
        let snap = load_snapshot(&dir.join(snapshot_name(9))).unwrap();
        assert!(snap.counters.is_none());

        let (seq, path) = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(seq, 9);
        assert!(path.ends_with(snapshot_name(9)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version1_files_load_with_zero_hwm() {
        let dir = tmp("v1");
        let ds = figure2_toy();
        let graph = toy_graph();
        let path = save_snapshot(&dir, 3, 17, 9, &ds, &graph, None).unwrap();
        // Rewrite the file as version 1: drop the hwm and epoch fields.
        let bytes = fs::read(&path).unwrap();
        let mut v1 = Vec::with_capacity(bytes.len() - 16);
        v1.extend_from_slice(&bytes[..4]);
        v1.extend_from_slice(&1u16.to_le_bytes());
        v1.extend_from_slice(&bytes[6..14]); // seq
        v1.extend_from_slice(&bytes[30..]); // skip hwm + epoch
        fs::write(&path, &v1).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.seq, 3);
        assert_eq!(snap.batch_hwm, 0, "v1 predates batch ids");
        assert_eq!(snap.epoch, 0, "v1 predates replication");
        assert_eq!(snap.graph, graph);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version2_files_load_with_zero_epoch() {
        let dir = tmp("v2");
        let ds = figure2_toy();
        let graph = toy_graph();
        let path = save_snapshot(&dir, 4, 23, 5, &ds, &graph, None).unwrap();
        // Rewrite the file as version 2: keep hwm, drop the epoch field.
        let bytes = fs::read(&path).unwrap();
        let mut v2 = Vec::with_capacity(bytes.len() - 8);
        v2.extend_from_slice(&bytes[..4]);
        v2.extend_from_slice(&2u16.to_le_bytes());
        v2.extend_from_slice(&bytes[6..22]); // seq + hwm
        v2.extend_from_slice(&bytes[30..]); // skip epoch
        fs::write(&path, &v2).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.seq, 4);
        assert_eq!(snap.batch_hwm, 23, "v2 keeps its hwm");
        assert_eq!(snap.epoch, 0, "v2 predates replication");
        assert_eq!(snap.graph, graph);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_write_leaves_no_tmp_and_no_snapshot() {
        use kiff_core::fault::{self, points, Trigger};
        let dir = tmp("faulted");
        let ds = figure2_toy();
        let graph = toy_graph();
        let scope = dir.to_string_lossy().into_owned();

        fault::arm_scoped(points::SNAPSHOT_RENAME, Trigger::Nth(1), scope.clone());
        let err = save_snapshot(&dir, 5, 1, 0, &ds, &graph, None).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(latest_snapshot(&dir).unwrap(), None, "no torn snapshot");
        assert!(
            fs::read_dir(&dir).unwrap().next().is_none(),
            ".tmp cleaned up"
        );
        // The retry goes through untouched.
        save_snapshot(&dir, 5, 1, 0, &ds, &graph, None).unwrap();
        assert_eq!(latest_snapshot(&dir).unwrap().unwrap().0, 5);
        fault::disarm(points::SNAPSHOT_RENAME);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let dir = tmp("bad");
        let ds = figure2_toy();
        let graph = toy_graph();
        let path = save_snapshot(&dir, 1, 0, 0, &ds, &graph, None).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'?';
        fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(matches!(err, KiffError::Corrupt { .. }), "{err}");
        assert_eq!(err.exit_code(), 5);

        // A torn .tmp file is never picked up as a snapshot.
        fs::write(dir.join("snap-0000000000000002.kifs.tmp"), b"torn").unwrap();
        assert_eq!(latest_snapshot(&dir).unwrap().unwrap().0, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
