//! Shared per-iteration instrumentation for iterative KNN constructions.
//!
//! KIFF, NN-Descent and HyRec all converge through iterations; Fig. 8 plots
//! their per-iteration recall and update counts against the scan rate. The
//! algorithms report through this common observer so the experiment harness
//! can trace any of them identically.

use crate::knn::SharedKnn;

/// Trace of one refinement iteration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationTrace {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Neighbourhood changes during this iteration (the paper's `c`).
    pub changes: u64,
    /// Similarity evaluations performed during this iteration.
    pub sim_evals: u64,
    /// Cumulative similarity evaluations after this iteration.
    pub cumulative_sim_evals: u64,
    /// Worker time spent selecting candidates this iteration (Fig. 1's
    /// per-iteration breakdown).
    pub candidate_time: std::time::Duration,
    /// Worker time spent evaluating similarities this iteration.
    pub similarity_time: std::time::Duration,
}

/// Observer invoked after every iteration with the trace and the current
/// shared state (snapshot it to measure recall, as Fig. 8a does).
pub trait IterationObserver {
    /// Called once per completed iteration.
    fn on_iteration(&mut self, trace: IterationTrace, state: &SharedKnn);
}

/// No-op observer.
pub struct NoObserver;

impl IterationObserver for NoObserver {
    fn on_iteration(&mut self, _: IterationTrace, _: &SharedKnn) {}
}

impl<F: FnMut(IterationTrace, &SharedKnn)> IterationObserver for F {
    fn on_iteration(&mut self, trace: IterationTrace, state: &SharedKnn) {
        self(trace, state);
    }
}
