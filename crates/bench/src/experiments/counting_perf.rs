//! Counting/scoring hot-loop regression bench: `BENCH_counting.json`.
//!
//! Measures the two KIFF inner loops this repo's flat-CSR + prepared-
//! scorer rewrite targets, against the retained pre-rewrite baselines:
//!
//! 1. **RCS construction** — [`build_rcs`] (flat-CSR, two-pass) under
//!    every [`CountStrategy`] vs [`build_rcs_reference`] (the legacy
//!    gather → per-user-`Vec` → flatten pipeline), with a bit-for-bit
//!    agreement check on ids, counts and offsets.
//! 2. **Refinement scoring** — [`refine`] under
//!    [`ScoringMode::Prepared`] (one profile preparation per user, each
//!    candidate scored in `O(|UP_v|)`) vs [`ScoringMode::Pairwise`] (the
//!    old per-candidate profile merge), with a graph-identity check
//!    (recall ratio must be exactly 1.0 — both modes compute the same
//!    similarities).
//!
//! The JSON payload is the machine-readable baseline future PRs diff
//! against; the bench-smoke CI job uploads it next to the streaming
//! results.

use std::time::{Duration, Instant};

use kiff_core::refine::refine;
use kiff_core::{
    build_rcs, build_rcs_reference, CountStrategy, CountingConfig, KiffConfig, NoObserver,
    RankedCandidates, ScoringMode, TimingMode,
};
use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
use kiff_dataset::generators::RatingModel;
use kiff_dataset::Dataset;
use kiff_graph::recall;
use kiff_similarity::WeightedCosine;

use super::Ctx;

/// Timing repetitions per measured configuration (minimum taken).
const REPS: usize = 5;

/// Multiplicity-rich synthetic: few items relative to users, so item
/// profiles are long and every user's candidate multiset carries real
/// multiplicity — the regime the counting phase exists for (cf. the
/// paper's Wikipedia/Gowalla shapes).
fn counting_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    generate_bipartite(&BipartiteConfig {
        name: "bench-counting".to_string(),
        num_users: (20_000.0 * m) as usize,
        num_items: (2_000.0 * m) as usize,
        target_ratings: (800_000.0 * m) as usize,
        user_degree_min: 2,
        user_degree_max: 400,
        item_exponent: 0.8,
        rating_model: RatingModel::Stars { half_steps: false },
        seed,
    })
}

/// Runs `f` `REPS` times, returning the fastest wall time and the last
/// result.
fn time_best<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed());
        out = Some(r);
    }
    (best, out.expect("REPS > 0"))
}

fn rcs_equal(a: &RankedCandidates, b: &RankedCandidates) -> bool {
    let n = a.num_users();
    n == b.num_users() && (0..n as u32).all(|u| a.rcs(u) == b.rcs(u) && a.counts(u) == b.counts(u))
}

struct RcsRun {
    label: String,
    wall_s: f64,
    entries_per_sec: f64,
    speedup_vs_reference: f64,
    agrees: bool,
}

struct RefineRun {
    label: String,
    wall_s: f64,
    sims_per_sec: f64,
    sim_evals: u64,
}

/// Runs the counting/scoring regression bench and writes
/// `BENCH_counting.json`.
pub fn counting(ctx: &mut Ctx) -> String {
    let ds = counting_dataset(ctx.scale.multiplier, ctx.seed);
    // Item profiles are shared by every measured build; materialise them
    // up front so the timings isolate RCS assembly (as in Table V).
    let _ = ds.item_profiles();
    let threads = ctx.threads;

    let base_config = CountingConfig {
        keep_counts: true,
        threads,
        ..CountingConfig::default()
    };

    // The pre-rewrite path: sort-based ranking through the per-user-Vec
    // pipeline (what `build_rcs` was before the flat-CSR assembly).
    let (ref_time, reference) = time_best(|| {
        build_rcs_reference(
            &ds,
            &CountingConfig {
                strategy: CountStrategy::SortBased,
                ..base_config.clone()
            },
        )
    });
    let total_entries = reference.total();
    let ref_s = ref_time.as_secs_f64().max(1e-9);

    let mut rcs_runs = Vec::new();
    for (label, strategy) in [
        ("flat-dense", CountStrategy::Dense),
        ("flat-sort", CountStrategy::SortBased),
        ("flat-hash", CountStrategy::HashBased),
        ("flat-auto", CountStrategy::Auto),
    ] {
        let (time, rcs) = time_best(|| {
            build_rcs(
                &ds,
                &CountingConfig {
                    strategy,
                    ..base_config.clone()
                },
            )
        });
        let wall_s = time.as_secs_f64().max(1e-9);
        rcs_runs.push(RcsRun {
            label: label.to_string(),
            wall_s,
            entries_per_sec: total_entries as f64 / wall_s,
            speedup_vs_reference: ref_s / wall_s,
            agrees: rcs_equal(&reference, &rcs),
        });
    }

    // Refinement: same RCS (counts stripped, as `Kiff::run` builds it),
    // same metric, timing off — pure hot-loop wall clock.
    let refine_rcs = build_rcs(
        &ds,
        &CountingConfig {
            threads,
            ..CountingConfig::default()
        },
    );
    let sim = WeightedCosine::fit(&ds);
    let refine_config = |scoring: ScoringMode| {
        let mut c = KiffConfig::new(10)
            .with_beta(0.0)
            .with_scoring(scoring)
            .with_timing(TimingMode::Off);
        c.threads = threads;
        c
    };
    let (pairwise_time, (pairwise_graph, pairwise_stats)) = time_best(|| {
        refine(
            &ds,
            &sim,
            &refine_rcs,
            &refine_config(ScoringMode::Pairwise),
            &mut NoObserver,
        )
    });
    let (prepared_time, (prepared_graph, prepared_stats)) = time_best(|| {
        refine(
            &ds,
            &sim,
            &refine_rcs,
            &refine_config(ScoringMode::Prepared),
            &mut NoObserver,
        )
    });
    let refine_runs = [
        RefineRun {
            label: "pairwise".to_string(),
            wall_s: pairwise_time.as_secs_f64().max(1e-9),
            sims_per_sec: pairwise_stats.sim_evals as f64 / pairwise_time.as_secs_f64().max(1e-9),
            sim_evals: pairwise_stats.sim_evals,
        },
        RefineRun {
            label: "prepared".to_string(),
            wall_s: prepared_time.as_secs_f64().max(1e-9),
            sims_per_sec: prepared_stats.sim_evals as f64 / prepared_time.as_secs_f64().max(1e-9),
            sim_evals: prepared_stats.sim_evals,
        },
    ];
    let refine_speedup = refine_runs[0].wall_s / refine_runs[1].wall_s;
    // Both modes evaluate identical similarities: the graphs must match
    // exactly, so the recall ratio is 1.0 by construction — verified.
    let recall_ratio = recall(&pairwise_graph, &prepared_graph);

    let mut out = String::new();
    out.push_str(&format!(
        "Counting/scoring hot loops on {}: {} users, {} items, {} ratings\n\
         RCS total {total_entries} entries (avg {:.1}/user)\n\n\
         RCS construction (best of {REPS}, reference = pre-rewrite \
         per-user-Vec pipeline, {ref_s:.3}s):\n",
        ds.name(),
        ds.num_users(),
        ds.num_items(),
        ds.num_ratings(),
        reference.avg_len(),
    ));
    for r in &rcs_runs {
        out.push_str(&format!(
            "{:>10}: {:.3}s  {:>12.0} entries/s  {:.2}x vs reference  agreement: {}\n",
            r.label,
            r.wall_s,
            r.entries_per_sec,
            r.speedup_vs_reference,
            if r.agrees { "exact" } else { "MISMATCH" },
        ));
    }
    out.push_str(&format!(
        "\nRefinement to exhaustion (k=10, beta=0, best of {REPS}):\n"
    ));
    for r in &refine_runs {
        out.push_str(&format!(
            "{:>10}: {:.3}s  {:>12.0} sims/s  ({} evals)\n",
            r.label, r.wall_s, r.sims_per_sec, r.sim_evals,
        ));
    }
    out.push_str(&format!(
        "\nprepared-vs-pairwise speedup {refine_speedup:.2}x, graph recall \
         ratio {recall_ratio:.4} (must be 1.0)\n"
    ));
    // Correctness checks are hard gates, like the streaming experiments'
    // recall floors: a strategy diverging from the reference, or the two
    // scoring modes building different graphs, fails the suite.
    for r in rcs_runs.iter().filter(|r| !r.agrees) {
        let msg = format!(
            "counting/{}: output diverged from the reference pipeline",
            r.label
        );
        eprintln!("AGREEMENT VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    if recall_ratio < 1.0 - 1e-12 {
        let msg = format!(
            "counting/scoring: prepared vs pairwise graphs diverged (recall ratio {recall_ratio})"
        );
        eprintln!("AGREEMENT VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }

    let dataset_v = serde_json::json!({
        "name": ds.name(),
        "num_users": ds.num_users(),
        "num_items": ds.num_items(),
        "num_ratings": ds.num_ratings(),
        "rcs_entries": total_entries,
        "avg_rcs_len": reference.avg_len()
    });
    let rcs_runs_v: Vec<serde_json::Value> = rcs_runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "strategy": r.label,
                "wall_time_s": r.wall_s,
                "entries_per_sec": r.entries_per_sec,
                "speedup_vs_reference": r.speedup_vs_reference,
                "agrees_with_reference": r.agrees
            })
        })
        .collect();
    let rcs_build_v = serde_json::json!({
        "reference_wall_time_s": ref_s,
        "reference_entries_per_sec": total_entries as f64 / ref_s,
        "runs": rcs_runs_v
    });
    let refine_runs_v: Vec<serde_json::Value> = refine_runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "scoring": r.label,
                "wall_time_s": r.wall_s,
                "sims_per_sec": r.sims_per_sec,
                "sim_evals": r.sim_evals
            })
        })
        .collect();
    let refine_v = serde_json::json!({
        "k": 10,
        "runs": refine_runs_v,
        "prepared_speedup_vs_pairwise": refine_speedup,
        "recall_ratio": recall_ratio
    });
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "rcs_build": rcs_build_v,
        "refine": refine_v
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_counting.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_counting.json: {e}"));
    }
    ctx.finish(
        "counting",
        "RCS-construction and refinement-scoring throughput, old vs new hot paths",
        out,
        &payload,
    )
}
