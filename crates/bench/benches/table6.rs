//! Bench for Table VI: a full KIFF run plus the truncation statistics it
//! derives (iterations x gamma cut-off against the RCS size distribution).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::small_bench_dataset;
use kiff_core::{build_rcs, CountingConfig, Kiff, KiffConfig};
use kiff_similarity::WeightedCosine;

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(6);
    let sim = WeightedCosine::fit(&ds);
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    group.bench_function("kiff_run_plus_truncation_stats", |b| {
        b.iter(|| {
            let result = Kiff::new(KiffConfig::new(10).with_threads(2)).run(&ds, &sim);
            let cut = result.stats.iterations * 20;
            let rcs = build_rcs(&ds, &CountingConfig::default());
            let above = rcs.sizes().iter().filter(|&&s| s > cut).count();
            black_box((result, above))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
