//! Density study: Table IX (the ML-1…ML-5 family) and Fig. 10 (KIFF vs
//! NN-Descent at matched recall across densities).

use kiff_core::{Kiff, KiffConfig};
use kiff_dataset::density::ml_family;
use kiff_eval::table::{fmt_percent, fmt_secs, Table};
use kiff_graph::recall;

use super::Ctx;
use crate::runner::{ground_truth, run_kiff_with, run_nndescent};

/// Table IX + Fig. 10 in one pass (they share the dataset family and the
/// tuned-β runs).
pub fn table9_fig10(ctx: &mut Ctx) -> String {
    // The family is derived at the suite's scale multiplier (1.0 = the
    // paper's 6040x3706 ML-1).
    let scale = ctx.scale.multiplier.min(1.0);
    let family = ml_family(scale, ctx.seed);
    let k = 20;

    // Table IX: ratings, density, avg |RCS|.
    let mut t9 = Table::new(&["Dataset", "Ratings", "Density", "avg |RCS|"]);
    let mut t9_payload = Vec::new();
    for ds in &family {
        let rcs = Kiff::new(KiffConfig::new(k)).counting_phase(ds);
        t9.push_row(&[
            ds.name().to_string(),
            ds.num_ratings().to_string(),
            fmt_percent(ds.density()),
            format!("{:.1}", rcs.avg_len()),
        ]);
        t9_payload.push((
            ds.name().to_string(),
            ds.num_ratings(),
            ds.density(),
            rcs.avg_len(),
        ));
    }
    let mut out = format!(
        "Table IX: MovieLens datasets with decreasing density\n\n{}\n(Paper: densities 4.47%->0.30%, avg |RCS| 2892.7->202.5.)\n\n",
        t9.render()
    );

    // Fig. 10: match NN-Descent's recall by tuning KIFF's β, then compare
    // wall time and scan rate across densities.
    let mut f10 = Table::new(&[
        "Dataset",
        "NND recall",
        "NND time",
        "NND scan",
        "KIFF beta",
        "KIFF recall",
        "KIFF time",
        "KIFF scan",
    ]);
    let mut f10_payload = Vec::new();
    for ds in &family {
        eprintln!("  fig10: {} ({} ratings)", ds.name(), ds.num_ratings());
        let exact = ground_truth(ds, k, ctx.threads);
        let nnd = run_nndescent(ds, ctx.opts(k));
        let nnd_recall = recall(&exact, &nnd.graph);

        // The paper sets β per dataset "so as to obtain the same recalls as
        // NN-Descent": sweep β from loose to strict and keep the first
        // configuration that matches.
        let mut chosen = None;
        for beta in [0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001, 0.0] {
            let outcome = run_kiff_with(ds, ctx.opts(k), None, Some(beta));
            let r = recall(&exact, &outcome.graph);
            if r >= nnd_recall - 0.005 || beta == 0.0 {
                chosen = Some((beta, r, outcome));
                break;
            }
        }
        let (beta, kiff_recall, kiff) = chosen.expect("β sweep always terminates");
        f10.push_row(&[
            ds.name().to_string(),
            format!("{nnd_recall:.2}"),
            fmt_secs(nnd.record.wall_time_s),
            fmt_percent(nnd.record.scan_rate),
            format!("{beta}"),
            format!("{kiff_recall:.2}"),
            fmt_secs(kiff.record.wall_time_s),
            fmt_percent(kiff.record.scan_rate),
        ]);
        f10_payload.push((
            ds.name().to_string(),
            ds.density(),
            nnd_recall,
            nnd.record.wall_time_s,
            nnd.record.scan_rate,
            beta,
            kiff_recall,
            kiff.record.wall_time_s,
            kiff.record.scan_rate,
        ));
    }
    out.push_str(&format!(
        "Fig. 10: KIFF vs NN-Descent at matched recall across densities\n\n{}\n\
         Expected shape (paper): NN-Descent is faster on the dense ML-1/ML-2, the \
         two cross around ML-3 (~1.1% density), and KIFF wins on the sparse \
         ML-4/ML-5; KIFF's scan rate falls sharply with density while \
         NN-Descent's stays roughly flat.\n",
        f10.render()
    ));

    let payload = serde_json::json!({
        "table9": t9_payload,
        "fig10": f10_payload,
    });
    ctx.finish(
        "table9_fig10",
        "Density family and matched-recall comparison (Table IX, Fig. 10)",
        out,
        &payload,
    )
}
