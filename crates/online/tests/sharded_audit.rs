//! Invariant audit of the sharded engine under long random mixed update
//! streams: after any sequence of adds, removals, reinforcements and new
//! users, every shard's counters must equal brute-force profile
//! intersections, every stored edge must carry a fresh similarity, and
//! the cross-shard reverse-edge invariant must hold exactly.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
use kiff_online::{ModuloPartitioner, OnlineConfig, ShardConfig, ShardedOnlineKnn, Update};
use kiff_similarity::intersect_count;

/// Checks counters and stored similarities against the live profiles,
/// plus the engine's own cross-shard invariants.
fn audit(engine: &ShardedOnlineKnn) {
    engine.validate_invariants();
    let n = engine.num_users() as u32;
    for u in 0..n {
        for v in (u + 1)..n {
            let expected = intersect_count(
                engine.data().profile(u).items,
                engine.data().profile(v).items,
            ) as u32;
            assert_eq!(engine.shared_count(u, v), expected, "counter ({u}, {v})");
            assert_eq!(engine.shared_count(v, u), expected, "counter ({v}, {u})");
        }
        for nb in engine.neighbors(u) {
            let fresh = engine
                .config()
                .metric
                .eval(engine.data().profile(u), engine.data().profile(nb.id));
            assert!(
                (nb.sim - fresh).abs() < 1e-12,
                "stale edge {u} -> {}: stored {} fresh {fresh}",
                nb.id,
                nb.sim
            );
            assert!(nb.sim > 0.0, "zero-similarity edge {u} -> {}", nb.id);
        }
    }
}

#[test]
fn long_mixed_stream_stays_consistent_across_shards() {
    let base = generate_bipartite(&BipartiteConfig::tiny("shard-audit", 99));
    let mut engine = ShardedOnlineKnn::new(
        &base,
        OnlineConfig::new(5),
        ShardConfig::new(3).with_threads(2),
    );
    let mut rng = StdRng::seed_from_u64(7);

    let mut applied = 0u64;
    for step in 0..450 {
        let n = engine.num_users() as u32;
        let items = engine.data().num_items() as u32;
        let roll = rng.gen_range(0u32..10);
        if roll < 6 {
            engine.apply(Update::AddRating {
                user: rng.gen_range(0..n),
                item: rng.gen_range(0..items),
                rating: rng.gen_range(1..6) as f32,
            });
            applied += 1;
        } else if roll < 8 {
            let u = rng.gen_range(0..n);
            let profile = engine.data().profile(u);
            if !profile.is_empty() {
                let idx = rng.gen_range(0..profile.len());
                let item = profile.items[idx];
                engine.apply(Update::RemoveRating { user: u, item });
                applied += 1;
            }
        } else if roll < 9 {
            engine.apply(Update::AddUser);
            applied += 1;
        } else {
            // A newcomer arrives with a rating directly.
            engine.apply(Update::AddRating {
                user: n,
                item: rng.gen_range(0..items),
                rating: 1.0,
            });
            applied += 1;
        }
        if step % 150 == 149 {
            audit(&engine);
        }
    }
    audit(&engine);
    let life = engine.lifetime_stats();
    assert_eq!(life.updates, applied);
    assert!(life.sim_evals > 0);
}

#[test]
fn batched_mixed_stream_stays_consistent_with_modulo_partitioning() {
    let base = generate_bipartite(&BipartiteConfig::tiny("shard-audit-batch", 123));
    let mut engine = ShardedOnlineKnn::new(
        &base,
        OnlineConfig::new(4),
        ShardConfig::new(4)
            .with_threads(2)
            .with_partitioner(Arc::new(ModuloPartitioner)),
    );
    let mut rng = StdRng::seed_from_u64(11);

    for _ in 0..10 {
        let n = engine.num_users() as u32;
        let items = engine.data().num_items() as u32;
        let batch: Vec<Update> = (0..40)
            .map(|_| Update::AddRating {
                user: rng.gen_range(0..n),
                item: rng.gen_range(0..items),
                rating: 1.0,
            })
            .collect();
        let stats = engine.apply_batch(batch);
        assert_eq!(stats.updates, 40);
        audit(&engine);
    }
}
