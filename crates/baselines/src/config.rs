//! Shared configuration for the greedy baselines.

use kiff_similarity::ScoringMode;

/// Parameters shared by NN-Descent and HyRec.
#[derive(Debug, Clone)]
pub struct GreedyConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Termination threshold: stop when changes per user per iteration drop
    /// below this (the paper's `δ`/`β`).
    pub termination: f64,
    /// Worker threads (`None` = all available).
    pub threads: Option<usize>,
    /// RNG seed for the random initial graph.
    pub seed: u64,
    /// Hard cap on iterations (safety net; the paper's runs converge well
    /// before this).
    pub max_iterations: usize,
    /// How candidate loops evaluate similarities (default: prepared
    /// scorers — each pivot/reference profile is prepared once per batch;
    /// both modes build identical graphs).
    pub scoring: ScoringMode,
}

impl GreedyConfig {
    /// The paper's default parameters (§IV-D) for a given `k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            termination: 0.001,
            threads: None,
            seed: 42,
            max_iterations: 200,
            scoring: ScoringMode::default(),
        }
    }

    /// Sets how candidate loops evaluate similarities.
    pub fn with_scoring(mut self, scoring: ScoringMode) -> Self {
        self.scoring = scoring;
        self
    }
}
