//! Shard rebalancing under skew: `BENCH_rebalance.json`.
//!
//! Replays a *skewed* stream — Zipf-distributed ratings over a
//! planted-community population plus a tail of brand-new users joining
//! the hot community — through [`ShardedOnlineKnn`] at a fixed shard
//! count, in four configurations:
//!
//! * `hash` — the default spread placement (balanced sizes, but
//!   co-raters scattered: the cross-shard message baseline);
//! * `community` — [`CommunityPartitioner`] seeded from the base
//!   dataset's co-rating structure (must send measurably fewer
//!   cross-shard messages than `hash`: a **hard gate**);
//! * `range-skewed` — range sharding with growing ids and no rebalancer:
//!   every new user lands on the tail shard, demonstrating the imbalance
//!   (reported, not gated);
//! * `range-rebalanced` — the same placement with the rebalancer
//!   ([`RebalanceConfig`]) active: the max/min shard-size ratio must
//!   stay ≤ 2.0 (**hard gate**) and recall-vs-rebuild must clear the
//!   suite's floor (the bench-smoke `--recall-floor` gate).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use kiff_core::{Kiff, KiffConfig};
use kiff_dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff_dataset::zipf::Zipf;
use kiff_dataset::Dataset;
use kiff_graph::{exact_knn, recall, KnnGraph};
use kiff_online::{
    CommunityPartitioner, HashPartitioner, OnlineConfig, Partitioner, RangePartitioner,
    RebalanceConfig, ShardConfig, ShardedOnlineKnn, Update,
};
use kiff_similarity::WeightedCosine;

use super::Ctx;

const K: usize = 10;
const SHARDS: usize = 4;
const BATCH: usize = 256;
/// The balance bound the rebalanced run is gated on.
const MAX_RATIO: f64 = 2.0;

/// Planted communities twice as numerous as the shards, so community
/// placement is a real packing problem.
fn rebalance_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    let users = ((2400.0 * m) as usize).max(240);
    generate_planted(&PlantedConfig {
        name: "bench-rebalance".to_string(),
        num_users: users,
        num_items: (users * 4) / 5,
        communities: 2 * SHARDS,
        ratings_per_user: 12,
        affinity: 0.85,
        ..PlantedConfig::tiny("bench-rebalance", seed)
    })
    .0
}

/// Zipf-skewed arrivals over existing users plus a new-user tail joining
/// the hot community — deterministic in the seed. Same shape as
/// `zipf_stream` in `tests/shard_stress.rs` (which pins the claims this
/// experiment gates, at test scale); the hot-block modulus differs only
/// because each file's dataset has a different community count.
fn skewed_stream(ds: &Dataset, seed: u64) -> Vec<Update> {
    let n = ds.num_users() as u32;
    let items = ds.num_items() as u32;
    let updates = 2 * ds.num_users();
    let new_users = (ds.num_users() / 2) as u32;
    let user_dist = Zipf::new(n as usize, 1.1);
    let item_dist = Zipf::new(items as usize, 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(updates + 3 * new_users as usize);
    for _ in 0..updates {
        stream.push(Update::AddRating {
            user: user_dist.sample(&mut rng) as u32,
            item: item_dist.sample(&mut rng) as u32,
            rating: 1.0,
        });
    }
    for i in 0..new_users {
        for j in 0..3u32 {
            stream.push(Update::AddRating {
                user: n + i,
                // The hot community's item block.
                item: (i * 11 + j * 5) % (items / (2 * SHARDS as u32)),
                rating: 1.0,
            });
        }
    }
    stream
}

struct RebalanceRun {
    label: &'static str,
    elapsed_s: f64,
    updates_per_sec: f64,
    cross_messages: u64,
    migrations: u64,
    size_ratio: f64,
    recall_vs_exact: f64,
}

fn replay(
    base: &Dataset,
    stream: &[Update],
    threads: Option<usize>,
    label: &'static str,
    partitioner: Arc<dyn Partitioner>,
    rebalance: Option<RebalanceConfig>,
    exact: &KnnGraph,
) -> RebalanceRun {
    let mut config = ShardConfig {
        threads,
        ..ShardConfig::new(SHARDS)
    }
    .with_partitioner(partitioner);
    if let Some(r) = rebalance {
        config = config.with_rebalance(r);
    }
    let mut engine = ShardedOnlineKnn::new(base, OnlineConfig::new(K), config);
    let start = Instant::now();
    for chunk in stream.chunks(BATCH) {
        engine.apply_batch(chunk.iter().copied());
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    engine.validate_invariants();
    let sizes = engine.shard_sizes();
    let max = *sizes.iter().max().expect("shards") as f64;
    let min = (*sizes.iter().min().expect("shards")).max(1) as f64;
    let life = *engine.lifetime_stats();
    RebalanceRun {
        label,
        elapsed_s,
        updates_per_sec: life.updates as f64 / elapsed_s.max(1e-9),
        cross_messages: engine.cross_shard_messages(),
        migrations: engine.migrations_total(),
        size_ratio: max / min,
        recall_vs_exact: recall(exact, &engine.graph()),
    }
}

/// Runs the rebalancing benchmark and writes `BENCH_rebalance.json`.
pub fn rebalance(ctx: &mut Ctx) -> String {
    let base = rebalance_dataset(ctx.scale.multiplier, ctx.seed);
    let stream = skewed_stream(&base, ctx.seed);

    // Ground truth and the rebuild yardstick on the final dataset (the
    // replay outcome is partitioner-independent: same updates, same
    // eventual profiles).
    let final_users = stream
        .iter()
        .map(|u| match *u {
            Update::AddRating { user, .. } => user as usize + 1,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
        .max(base.num_users());
    let mut probe =
        kiff_dataset::DatasetBuilder::new("bench-rebalance-final", final_users, base.num_items());
    for (u, i, r) in base.iter_ratings() {
        probe.add_rating(u, i, r);
    }
    for update in &stream {
        if let Update::AddRating { user, item, rating } = *update {
            probe.add_rating(user, item, rating);
        }
    }
    let full = probe.build();
    let sim = WeightedCosine::fit(&full);
    let exact = exact_knn(&full, &sim, K, ctx.threads);
    let mut rebuild_config = KiffConfig::new(K);
    rebuild_config.threads = ctx.threads;
    let rebuild = Kiff::new(rebuild_config).run(&full, &sim);
    let rebuild_recall = recall(&exact, &rebuild.graph);

    let range = RangePartitioner::for_population(base.num_users(), SHARDS);
    let runs = vec![
        replay(
            &base,
            &stream,
            ctx.threads,
            "hash",
            Arc::new(HashPartitioner),
            None,
            &exact,
        ),
        replay(
            &base,
            &stream,
            ctx.threads,
            "community",
            Arc::new(CommunityPartitioner::from_dataset(&base, SHARDS)),
            None,
            &exact,
        ),
        replay(
            &base,
            &stream,
            ctx.threads,
            "range-skewed",
            Arc::new(range),
            None,
            &exact,
        ),
        replay(
            &base,
            &stream,
            ctx.threads,
            "range-rebalanced",
            Arc::new(range),
            Some(RebalanceConfig::new(MAX_RATIO)),
            &exact,
        ),
    ];

    let mut out = String::new();
    out.push_str(&format!(
        "Shard rebalancing under skew on {}: {} users + {} streamed \
         updates ({} shards, k={K}, batch {BATCH})\n\
         full rebuild recall {rebuild_recall:.4}\n\n\
         {:>17}  {:>9}  {:>11}  {:>10}  {:>9}  {:>7}  {:>7}\n",
        base.name(),
        base.num_users(),
        stream.len(),
        SHARDS,
        "configuration",
        "updates/s",
        "cross-msgs",
        "migrations",
        "sizeratio",
        "recall",
        "vs-rbld",
    ));
    for r in &runs {
        out.push_str(&format!(
            "{:>17}  {:>9.0}  {:>11}  {:>10}  {:>9.2}  {:>7.4}  {:>7.3}\n",
            r.label,
            r.updates_per_sec,
            r.cross_messages,
            r.migrations,
            r.size_ratio,
            r.recall_vs_exact,
            r.recall_vs_exact / rebuild_recall.max(1e-9),
        ));
    }
    out.push_str(
        "\nExpected shape: community placement cuts cross-shard messages \
         vs hash; range sharding without a rebalancer lets the new-user \
         tail blow the size ratio past the bound; the rebalancer restores \
         it to <= 2.0 at unchanged recall.\n",
    );

    // Hard gates.
    let hash_msgs = runs[0].cross_messages;
    let community_msgs = runs[1].cross_messages;
    if community_msgs >= hash_msgs {
        let msg = format!(
            "rebalance/community: cross-shard messages {community_msgs} not below \
             hash baseline {hash_msgs}"
        );
        eprintln!("CROSS-TRAFFIC VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    let rebalanced = &runs[3];
    if rebalanced.size_ratio > MAX_RATIO {
        let msg = format!(
            "rebalance/range-rebalanced: shard size ratio {:.2} above the {MAX_RATIO} bound",
            rebalanced.size_ratio
        );
        eprintln!("BALANCE VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    ctx.enforce_recall_floor(
        "rebalance",
        "range-rebalanced",
        rebalanced.recall_vs_exact / rebuild_recall.max(1e-9),
    );

    let runs_v: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "configuration": r.label,
                "wall_time_s": r.elapsed_s,
                "updates_per_sec": r.updates_per_sec,
                "cross_shard_messages": r.cross_messages,
                "migrations": r.migrations,
                "shard_size_ratio": r.size_ratio,
                "recall": r.recall_vs_exact,
                "recall_vs_rebuild": r.recall_vs_exact / rebuild_recall.max(1e-9)
            })
        })
        .collect();
    let dataset_v = serde_json::json!({
        "name": base.name(),
        "num_users": base.num_users(),
        "num_items": base.num_items(),
        "num_ratings": base.num_ratings(),
        "streamed_updates": stream.len()
    });
    let rebuild_v = serde_json::json!({ "recall": rebuild_recall });
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": K,
        "shards": SHARDS,
        "batch": BATCH,
        "max_size_ratio": MAX_RATIO,
        "rebuild": rebuild_v,
        "runs": runs_v,
        "cross_message_reduction_vs_hash":
            1.0 - community_msgs as f64 / hash_msgs.max(1) as f64
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_rebalance.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_rebalance.json: {e}"));
    }
    ctx.finish(
        "rebalance",
        "Shard rebalancing + community-aware partitioning under a skewed stream",
        out,
        &payload,
    )
}
