//! Bench for Table IV: user-profile (CSR) construction versus the extra
//! item-profile transpose.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_dataset::DatasetBuilder;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(4);
    let triples: Vec<(u32, u32, f32)> = ds.iter_ratings().collect();
    let mut group = c.benchmark_group("table4");
    group.sample_size(30);
    group.bench_function("build_user_profiles", |b| {
        b.iter(|| {
            let mut builder = DatasetBuilder::new("bench", ds.num_users(), ds.num_items());
            builder.reserve(triples.len());
            for &(u, i, r) in &triples {
                builder.add_rating(u, i, r);
            }
            black_box(builder.build())
        })
    });
    group.bench_function("build_item_profiles", |b| {
        b.iter(|| black_box(ds.build_item_profiles()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
