#![warn(missing_docs)]

//! KIFF — the paper's contribution (Algorithm 1).
//!
//! KIFF constructs an approximate KNN graph in two phases:
//!
//! 1. **Counting phase** ([`counting`]): item profiles are derived from the
//!    user–item bipartite graph, and each user's **Ranked Candidate Set**
//!    (RCS) is assembled — every co-rater with a higher id (the pivot
//!    strategy of §II-D), ordered by decreasing number of shared items.
//! 2. **Refinement phase** ([`refine`]): starting from empty
//!    neighbourhoods, each iteration pops the top `γ` candidates of every
//!    user's RCS, evaluates the real similarity once per pair, and updates
//!    both endpoints' bounded heaps; the loop stops when the average number
//!    of heap changes per user falls below `β` (or every RCS is exhausted).
//!
//! Because all candidates share at least one item and arrive in decreasing
//!  shared-count order, KIFF both skips all provably-zero pairs and meets
//! good neighbours early; with `γ = ∞` (and `β = 0`) the result is the
//! exact KNN for any metric satisfying the sparse axioms (§III-D) — a
//! property the test-suite checks against brute force.
//!
//! Entry point: [`Kiff`] with a [`KiffConfig`]; instrumentation (per-phase
//! wall time, similarity-evaluation counts, per-iteration traces) is
//! returned in [`KiffStats`].

pub mod config;
pub mod counting;
pub mod error;
pub mod fault;
pub mod init;
pub mod kiff;
pub mod refine;

pub use config::{CountStrategy, Gamma, KiffConfig, ScoringMode, TimingMode};
pub use counting::{
    build_rcs, build_rcs_reference, rank_candidate_counts, user_candidate_counts, CountingConfig,
    RankedCandidates,
};
pub use error::KiffError;
pub use init::initial_rcs_graph;
pub use kiff::{kiff_knn, Kiff, KiffResult};
pub use refine::{IterationObserver, IterationTrace, KiffStats, NoObserver};
