//! The `kiff` command-line binary. See [`kiff_cli`] for the implementation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match kiff_cli::run_with_code(&argv, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err((message, code)) => {
            eprintln!("kiff: {message}");
            ExitCode::from(code)
        }
    }
}
