//! Online-maintenance trajectory: `BENCH_online.json`.
//!
//! Streams the held-out 10% of an ML-4-like dataset (the MovieLens preset
//! subsampled into the sparse regime of Table IX) through the
//! `kiff-online` engine — one update at a time and in amortised batches —
//! and compares against rebuilding from scratch. The machine-readable
//! twin `BENCH_online.json` is the perf baseline future PRs must beat.

use std::time::Instant;

use kiff_core::{Kiff, KiffConfig};
use kiff_dataset::generators::movielens::movielens_like;
use kiff_dataset::{subsample_ratings, Dataset, DatasetBuilder};
use kiff_graph::{exact_knn, recall};
use kiff_online::{OnlineConfig, OnlineKnn, Update};
use kiff_similarity::WeightedCosine;

use super::Ctx;

const K: usize = 10;
const BATCH: usize = 100;

/// One replay mode's outcome.
struct Replay {
    label: &'static str,
    updates: u64,
    elapsed_s: f64,
    sim_evals_per_update: f64,
    repaired_edges_per_update: f64,
    recall_vs_exact: f64,
}

fn replay(
    base: &Dataset,
    held: &[(u32, u32, f32)],
    batch: usize,
    exact: &kiff_graph::KnnGraph,
) -> Replay {
    let mut engine = OnlineKnn::new(base, OnlineConfig::new(K));
    let start = Instant::now();
    let updates = held
        .iter()
        .map(|&(user, item, rating)| Update::AddRating { user, item, rating });
    if batch <= 1 {
        for update in updates {
            engine.apply(update);
        }
    } else {
        let all: Vec<Update> = updates.collect();
        for chunk in all.chunks(batch) {
            engine.apply_batch(chunk.iter().copied());
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let life = *engine.lifetime_stats();
    Replay {
        label: if batch <= 1 { "one-by-one" } else { "batched" },
        updates: life.updates,
        elapsed_s,
        sim_evals_per_update: life.sim_evals_per_update(),
        repaired_edges_per_update: life.edits_per_update(),
        recall_vs_exact: recall(exact, &engine.graph()),
    }
}

/// Runs the online-maintenance benchmark and writes `BENCH_online.json`.
pub fn online(ctx: &mut Ctx) -> String {
    // ML-4-like: the MovieLens preset subsampled to ~2.9% density.
    let ml_scale = (0.2 * ctx.scale.multiplier).clamp(0.02, 1.0);
    let ml1 = movielens_like(ml_scale, ctx.seed);
    let full =
        subsample_ratings(&ml1, ml1.num_ratings() * 13 / 100, ctx.seed).with_name("ML-4-like");

    // Hold out every 10th rating as the stream.
    let mut builder = DatasetBuilder::new("ml4-base", full.num_users(), full.num_items());
    let mut held = Vec::new();
    for (pos, (u, i, r)) in full.iter_ratings().enumerate() {
        if pos % 10 == 0 {
            held.push((u, i, r));
        } else {
            builder.add_rating(u, i, r);
        }
    }
    let base = builder.build();

    // Ground truth and the rebuild yardstick on the final dataset.
    let sim = WeightedCosine::fit(&full);
    let exact = exact_knn(&full, &sim, K, ctx.threads);
    let mut rebuild_config = KiffConfig::new(K);
    rebuild_config.threads = ctx.threads;
    let rebuild_start = Instant::now();
    let rebuild = Kiff::new(rebuild_config).run(&full, &sim);
    let rebuild_s = rebuild_start.elapsed().as_secs_f64();
    let rebuild_recall = recall(&exact, &rebuild.graph);

    let runs = [
        replay(&base, &held, 1, &exact),
        replay(&base, &held, BATCH, &exact),
    ];

    let mut out = String::new();
    out.push_str(&format!(
        "Online maintenance on {}: {} users, {} items, {} ratings ({} streamed)\n\
         full rebuild: {} sim evals in {rebuild_s:.3}s, recall {rebuild_recall:.4}\n\n",
        full.name(),
        full.num_users(),
        full.num_items(),
        full.num_ratings(),
        held.len(),
        rebuild.stats.sim_evals,
    ));
    for r in &runs {
        out.push_str(&format!(
            "{:<10}: {:.0} updates/s, {:.1} sim evals/update ({:.0}x below rebuild), \
             {:.2} repaired edges/update, recall {:.4} ({:.3}x rebuild)\n",
            r.label,
            r.updates as f64 / r.elapsed_s.max(1e-9),
            r.sim_evals_per_update,
            rebuild.stats.sim_evals as f64 / r.sim_evals_per_update.max(1e-9),
            r.repaired_edges_per_update,
            r.recall_vs_exact,
            r.recall_vs_exact / rebuild_recall.max(1e-9),
        ));
    }
    out.push_str(
        "\nExpected shape: per-update work stays orders of magnitude below one \
         rebuild while recall lands within a few percent of it; batching trades \
         a little recall for amortised repair.\n",
    );

    let dataset_v = serde_json::json!({
        "name": full.name(),
        "num_users": full.num_users(),
        "num_items": full.num_items(),
        "num_ratings": full.num_ratings(),
        "streamed_updates": held.len()
    });
    let rebuild_v = serde_json::json!({
        "sim_evals": rebuild.stats.sim_evals,
        "wall_time_s": rebuild_s,
        "recall": rebuild_recall
    });
    let runs_v: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "mode": r.label,
                "updates": r.updates,
                "updates_per_sec": r.updates as f64 / r.elapsed_s.max(1e-9),
                "sim_evals_per_update": r.sim_evals_per_update,
                "repaired_edges_per_update": r.repaired_edges_per_update,
                "recall": r.recall_vs_exact
            })
        })
        .collect();
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": K,
        "rebuild": rebuild_v,
        "runs": runs_v
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_online.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_online.json: {e}"));
    }
    ctx.finish(
        "online",
        "Streaming maintenance vs rebuild (kiff-online)",
        out,
        &payload,
    )
}
