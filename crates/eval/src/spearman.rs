//! Spearman rank correlation with tie handling.
//!
//! Fig. 7 correlates the order of each truncated RCS (by common-item count)
//! with the order the final metric (cosine or Jaccard) would impose on the
//! same users: a high coefficient means the counting phase rarely buries
//! good candidates past the truncation point.

/// Average ranks of `scores` (rank 1 = largest score; ties share the mean
/// of their rank range — the standard "fractional ranking").
fn average_ranks(scores: &[f64]) -> Vec<f64> {
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rank correlation coefficient between two score vectors over
/// the same elements, in `[-1, 1]`.
///
/// Computed as the Pearson correlation of the fractional ranks (correct in
/// the presence of ties). Returns 0 when either vector is constant (no
/// ordering information).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..n {
        let da = ra[i] - mean;
        let db = rb[i] - mean;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_order_is_one() {
        let a = [5.0, 4.0, 3.0, 2.0, 1.0];
        let b = [50.0, 40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_order_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_vector_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&a, &b), 0.0);
    }

    #[test]
    fn known_textbook_value() {
        // Classic example without ties.
        let a = [
            106.0, 100.0, 86.0, 101.0, 99.0, 103.0, 97.0, 113.0, 112.0, 110.0,
        ];
        let b = [7.0, 27.0, 2.0, 50.0, 28.0, 29.0, 20.0, 12.0, 6.0, 17.0];
        let rho = spearman(&a, &b);
        assert!((rho - (-0.175_757_575_757)).abs() < 1e-9, "rho = {rho}");
    }

    #[test]
    fn ties_use_fractional_ranks() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let ranks = average_ranks(&a);
        // Largest first: 3.0 -> 1, the two 2.0s share (2+3)/2 = 2.5, 1.0 -> 4.
        assert_eq!(ranks, vec![4.0, 2.5, 2.5, 1.0]);
    }

    #[test]
    fn short_inputs_return_zero() {
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// ρ ∈ [-1, 1], symmetric in its arguments, and ρ(a, a) = 1 for
            /// non-constant a.
            #[test]
            fn axioms(
                a in proptest::collection::vec(0u32..50, 2..60),
                b_seed in proptest::collection::vec(0u32..50, 2..60),
            ) {
                let n = a.len().min(b_seed.len());
                let a: Vec<f64> = a[..n].iter().map(|&x| f64::from(x)).collect();
                let b: Vec<f64> = b_seed[..n].iter().map(|&x| f64::from(x)).collect();
                let ab = spearman(&a, &b);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
                prop_assert!((ab - spearman(&b, &a)).abs() < 1e-9);
                let distinct = a.iter().any(|&x| x != a[0]);
                if distinct {
                    prop_assert!((spearman(&a, &a) - 1.0).abs() < 1e-9);
                }
            }
        }
    }
}
