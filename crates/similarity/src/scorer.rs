//! Prepared similarity scorers: preprocess one profile, score many.
//!
//! Both KIFF hot loops score one *reference* user against a stream of
//! candidates — `refine` pops up to `γ` RCS candidates per user per
//! iteration, and the online engines re-score a repaired user against its
//! whole candidate set. The pairwise entry points
//! ([`crate::functions`], [`crate::Similarity::sim`]) rediscover the
//! reference profile on every call: a fresh sorted-merge walk, plus — for
//! cosine — a fresh `O(|UP_u|)` norm pass.
//!
//! This module hoists the per-reference work out of the loop:
//!
//! * [`ScorerWorkspace`] — a reusable (per worker thread) preparation
//!   arena: a zeroed dense map `item → (rating, presence)` of the
//!   reference profile, cleaned up slot-by-slot (`O(|UP_u|)`) between
//!   reference users.
//! * [`ProfileScorer`] — the prepared reference profile. For high-degree
//!   references it stamps the profile into the dense map so each candidate
//!   scores in `O(|UP_v|)` *branchless* lookups (unshared items contribute
//!   exact zero terms); for low-degree references (where a merge/gallop is
//!   already cheap and stamping would dominate) it falls back to the
//!   pairwise kernels unchanged.
//! * [`ScoreKind`] — which metric formula the scorer applies.
//! * [`Scorer`] — the object-safe trait [`crate::Similarity::scorer`]
//!   returns, binding a prepared reference to a dataset so graph
//!   algorithms stay generic over the metric.
//!
//! Every path reproduces the pairwise functions *exactly* (same shared
//! items visited in the same ascending order, same f64 widening), so
//! prepared and pairwise scoring yield bit-identical similarities — the
//! property the `counting_scorers` suite tests and the `counting` bench
//! experiment relies on for its recall-ratio-1.0 check.

use std::sync::atomic::{AtomicU64, Ordering};

use kiff_dataset::{Dataset, ProfileRef, UserId};
use kiff_telemetry::{Counter, Registry};

use crate::functions;

/// Reference-profile degree below which stamping is skipped and scoring
/// falls back to the pairwise kernels (a short merge beats the stamp
/// setup; measured in the `counting` bench experiment).
const DENSE_MIN_DEGREE: usize = 8;

/// Candidate-batch size below which callers should skip preparation and
/// score pairwise instead: preparing (profile stamping + a boxed scorer)
/// only pays for itself across several candidates. Both paths compute
/// identical similarities, so the choice is invisible in the output —
/// `refine`, the baselines and `exact_knn` all use this threshold.
pub const PREPARED_MIN_BATCH: usize = 4;

/// How a candidate loop evaluates similarities against its reference
/// node.
///
/// Every algorithm in the workspace — KIFF's refinement, NN-Descent's
/// local joins, HyRec's neighbour-of-neighbour scans, LSH's bucket
/// joins, the random initialisation and the exact constructions — scores
/// one *reference* user against a stream of candidates, and accepts this
/// selector:
///
/// * [`ScoringMode::Prepared`] (default) prepares the reference once per
///   node through [`crate::Similarity::scorer`] and scores each
///   candidate in `O(|UP_v|)`;
/// * [`ScoringMode::Pairwise`] re-merges both raw profiles per candidate
///   through [`crate::Similarity::sim`] — the historical behaviour, kept
///   as the regression baseline for the `counting` and `baselines` bench
///   experiments.
///
/// Both modes compute bit-identical similarities for every metric in
/// this crate, so they build identical graphs (property-tested in
/// `tests/counting_scorers.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Prepare a reusable scorer per reference node; each candidate
    /// scores in `O(|UP_v|)`. Default.
    #[default]
    Prepared,
    /// Pairwise [`crate::Similarity::sim`] per candidate.
    Pairwise,
}

/// Metric selector for profile-level prepared scoring. Mirrors the
/// stateless metrics of [`crate::functions`]; dataset-fitted state
/// (cosine norms, Adamic–Adar weights) is layered on by the
/// [`crate::Similarity::scorer`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreKind {
    /// Weighted cosine over rating vectors (the paper's default).
    #[default]
    Cosine,
    /// Cosine over binary presence vectors.
    BinaryCosine,
    /// Jaccard's coefficient over item sets.
    Jaccard,
    /// Ruzicka (weighted Jaccard).
    WeightedJaccard,
    /// Dice coefficient.
    Dice,
    /// Raw shared-item count.
    CommonItems,
}

/// Reusable preparation arena for [`ProfileScorer`], one per worker.
///
/// Holds the dense `item → (rating, presence)` map of the current
/// reference profile in *zeroed* form: slots not touched by the reference
/// read as `(0.0, 0)`, so scoring loops accumulate branchlessly — an
/// unshared item contributes an exact `+0.0` (or `+0`) term, which leaves
/// every metric's sum bit-identical to the pairwise shared-only walk
/// because all contributions are non-negative. Preparing a new reference
/// clears exactly the previously touched slots (the `clear_ids` idiom),
/// so capacity grows to the largest item id seen but per-prepare cost
/// stays `O(|UP_u|)`.
#[derive(Debug, Default)]
pub struct ScorerWorkspace {
    /// Reference rating per item (0.0 when the reference lacks the item).
    rating: Vec<f32>,
    /// 1 when the reference rates the item, else 0.
    present: Vec<u32>,
    /// Items stamped by the current reference, for O(|UP_u|) cleanup.
    dirty: Vec<u32>,
    /// `similarity.prepares`/`similarity.scores` counters (detached
    /// no-ops unless wired via [`ScorerWorkspace::with_telemetry`]).
    prepares: Counter,
    scores: Counter,
    /// Scored-candidate tally not yet flushed into `scores`. Scoring is
    /// the hottest loop in the workspace: a shared-counter RMW per
    /// candidate bounces the counter's cache line across every worker
    /// thread (measured at >25% replay throughput in the `telemetry`
    /// bench experiment), so scorers bump this unsynchronised cell and
    /// the workspace flushes one `add` per reference at the next
    /// `prepare` / [`ScorerWorkspace::flush_telemetry`] / drop. An
    /// `AtomicU64` only so the workspace (and the engines embedding it)
    /// stays `Sync` for shared read access; every touch is a relaxed
    /// plain load/store on a per-worker cell — same machine code as the
    /// former `Cell<u64>`, never a contended RMW in the scoring loop.
    pending_scores: AtomicU64,
}

impl ScorerWorkspace {
    /// An empty workspace; the dense map grows on first use. Prepared
    /// scoring is *not* instrumented — see
    /// [`ScorerWorkspace::with_telemetry`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace whose scorers count into `registry`:
    /// `similarity.prepares` increments per prepared reference and
    /// `similarity.scores` per scored candidate. Score counts are
    /// batched per reference; holders of a long-lived workspace call
    /// [`ScorerWorkspace::flush_telemetry`] before snapshotting (see
    /// `pending_scores`).
    pub fn with_telemetry(registry: &Registry) -> Self {
        Self {
            rating: Vec::new(),
            present: Vec::new(),
            dirty: Vec::new(),
            prepares: registry.counter("similarity.prepares"),
            scores: registry.counter("similarity.scores"),
            pending_scores: AtomicU64::new(0),
        }
    }

    /// Publishes any scored-candidate tally still pending into the
    /// `similarity.scores` counter. Runs automatically on the next
    /// `prepare` and on drop; engines that keep a workspace alive
    /// across telemetry snapshots call this at batch end so the
    /// exported counter is exact. A no-op (and free) when nothing is
    /// pending or telemetry is not wired.
    pub fn flush_telemetry(&self) {
        let pending = self.pending_scores.swap(0, Ordering::Relaxed);
        if pending > 0 {
            self.scores.add(pending);
        }
    }

    /// Prepares `a` as the reference profile for `kind`.
    ///
    /// The returned scorer borrows both the workspace and the profile; it
    /// is valid until the next `prepare` call on this workspace.
    pub fn prepare<'a>(&'a mut self, kind: ScoreKind, a: ProfileRef<'a>) -> ProfileScorer<'a> {
        // The norm is the same `ProfileRef::norm` the pairwise functions
        // call; callers holding a fitted norm table use
        // [`ScorerWorkspace::prepare_with_norm`] to skip this pass.
        let norm_a = match kind {
            ScoreKind::Cosine => a.norm(),
            _ => 0.0,
        };
        self.prepare_with_norm(kind, a, norm_a)
    }

    /// [`ScorerWorkspace::prepare`] with an externally supplied reference
    /// norm (the fitted-cosine path): no `O(|UP_u|)` norm pass runs here.
    /// `norm_a` is only read by [`ScoreKind::Cosine`]'s
    /// [`ProfileScorer::score`] / [`ProfileScorer::score_cosine`].
    pub fn prepare_with_norm<'a>(
        &'a mut self,
        kind: ScoreKind,
        a: ProfileRef<'a>,
        norm_a: f64,
    ) -> ProfileScorer<'a> {
        self.flush_telemetry();
        self.prepares.incr();
        for &i in &self.dirty {
            self.rating[i as usize] = 0.0;
            self.present[i as usize] = 0;
        }
        self.dirty.clear();
        let dense = a.len() >= DENSE_MIN_DEGREE;
        if dense {
            // Items are sorted: the last is the largest, sizing the map.
            let need = *a.items.last().expect("non-empty profile") as usize + 1;
            if self.rating.len() < need {
                self.rating.resize(need, 0.0);
                self.present.resize(need, 0);
            }
            for (item, rating) in a.iter() {
                self.rating[item as usize] = rating;
                self.present[item as usize] = 1;
            }
            self.dirty.extend_from_slice(a.items);
        }
        // Per-reference statistics each formula needs, computed once.
        let total_a = match kind {
            ScoreKind::WeightedJaccard => a.ratings.iter().map(|&r| f64::from(r)).sum(),
            _ => 0.0,
        };
        ProfileScorer {
            ws: if dense { Some(&*self) } else { None },
            a,
            kind,
            norm_a,
            total_a,
            pending_scores: &self.pending_scores,
        }
    }
}

impl Drop for ScorerWorkspace {
    /// Transient workspaces (per-run scratch pools, test locals) publish
    /// their final reference's score tally without an explicit
    /// [`ScorerWorkspace::flush_telemetry`] call.
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

/// A reference profile prepared for repeated scoring (see the module
/// docs). Create via [`ScorerWorkspace::prepare`].
#[derive(Debug)]
pub struct ProfileScorer<'a> {
    /// The dense map, when the reference is stamped; `None` selects the
    /// pairwise fallback.
    ws: Option<&'a ScorerWorkspace>,
    a: ProfileRef<'a>,
    kind: ScoreKind,
    norm_a: f64,
    total_a: f64,
    /// The workspace's unflushed `similarity.scores` tally: one
    /// unsynchronised bump per candidate here, one shared-counter `add`
    /// per reference at flush — never an atomic RMW in the scoring loop.
    pending_scores: &'a AtomicU64,
}

impl ProfileScorer<'_> {
    /// One unsynchronised tally bump per scored candidate: a relaxed
    /// load/store pair (not an RMW) on the workspace's private cell.
    #[inline]
    fn bump_scores(&self) {
        self.pending_scores.store(
            self.pending_scores.load(Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
    }

    /// The prepared reference profile.
    pub fn reference(&self) -> ProfileRef<'_> {
        self.a
    }

    /// Whether the dense-stamp fast path is active (false = pairwise
    /// fallback for a low-degree reference).
    pub fn is_dense(&self) -> bool {
        self.ws.is_some()
    }

    /// `|A ∩ B|` in `O(|UP_v|)` (dense) — identical to
    /// [`crate::intersect_count`] on the same pair.
    #[inline]
    pub fn shared_count(&self, b: ProfileRef<'_>) -> usize {
        match self.ws {
            Some(ws) => {
                // Branchless: absent slots read 0.
                let mut shared = 0u32;
                for &item in b.items {
                    shared += ws.present.get(item as usize).copied().unwrap_or(0);
                }
                shared as usize
            }
            None => crate::kernels::intersect_count(self.a.items, b.items),
        }
    }

    /// `⟨a, b⟩` over shared items, widened to f64 exactly like
    /// [`crate::kernels::sparse_dot`] (ascending item order; the dense
    /// path's extra `+0.0` terms for unshared items cannot change a sum
    /// of non-negative products).
    #[inline]
    pub fn dot(&self, b: ProfileRef<'_>) -> f64 {
        match self.ws {
            Some(ws) => {
                let mut dot = 0.0f64;
                for (item, rating) in b.iter() {
                    let a_rating = ws.rating.get(item as usize).copied().unwrap_or(0.0);
                    dot += f64::from(a_rating) * f64::from(rating);
                }
                dot
            }
            None => crate::kernels::sparse_dot(self.a.items, self.a.ratings, b.items, b.ratings),
        }
    }

    /// `Σ min(aᵢ, bᵢ)` over shared items (the weighted-Jaccard numerator;
    /// absent reference slots read 0.0, whose `min` against a positive
    /// rating contributes an exact `+0.0`).
    #[inline]
    fn min_sum(&self, b: ProfileRef<'_>) -> f64 {
        match self.ws {
            Some(ws) => {
                let mut min_sum = 0.0f64;
                for (item, rating) in b.iter() {
                    let a_rating = ws.rating.get(item as usize).copied().unwrap_or(0.0);
                    min_sum += f64::from(a_rating).min(f64::from(rating));
                }
                min_sum
            }
            None => {
                let mut min_sum = 0.0f64;
                crate::kernels::for_each_shared(self.a.items, b.items, |i, j| {
                    min_sum += f64::from(self.a.ratings[i]).min(f64::from(b.ratings[j]));
                });
                min_sum
            }
        }
    }

    /// `Σ_{i ∈ A∩B} weights[i]` — the Adamic–Adar accumulator, identical
    /// to [`functions::adamic_adar_with`] on the same pair (weights are
    /// positive, so masked `+0.0` terms are exact no-ops).
    #[inline]
    pub fn weighted_shared(&self, b: ProfileRef<'_>, weights: &[f64]) -> f64 {
        match self.ws {
            Some(ws) => {
                let mut sum = 0.0f64;
                for &item in b.items {
                    let i = item as usize;
                    let mask = ws.present.get(i).copied().unwrap_or(0);
                    sum += f64::from(mask) * weights[i];
                }
                sum
            }
            None => functions::adamic_adar_with(self.a, b, weights),
        }
    }

    /// Scores `b` against the prepared reference under the prepared
    /// [`ScoreKind`] — equal to the matching [`crate::functions`] function
    /// on `(a, b)`, bit for bit.
    #[inline]
    pub fn score(&self, b: ProfileRef<'_>) -> f64 {
        self.bump_scores();
        match self.kind {
            ScoreKind::Cosine => self.cosine_value(b, self.norm_a, b.norm()),
            ScoreKind::BinaryCosine => {
                if self.a.is_empty() || b.is_empty() {
                    return 0.0;
                }
                let shared = self.shared_count(b) as f64;
                shared / ((self.a.len() as f64) * (b.len() as f64)).sqrt()
            }
            ScoreKind::Jaccard => {
                if self.a.is_empty() && b.is_empty() {
                    return 0.0;
                }
                let shared = self.shared_count(b);
                let union = self.a.len() + b.len() - shared;
                shared as f64 / union as f64
            }
            ScoreKind::WeightedJaccard => {
                if self.a.is_empty() && b.is_empty() {
                    return 0.0;
                }
                let min_sum = self.min_sum(b);
                let total_b: f64 = b.ratings.iter().map(|&r| f64::from(r)).sum();
                let max_sum = self.total_a + total_b - min_sum;
                if max_sum == 0.0 {
                    0.0
                } else {
                    min_sum / max_sum
                }
            }
            ScoreKind::Dice => {
                if self.a.is_empty() && b.is_empty() {
                    return 0.0;
                }
                let shared = self.shared_count(b);
                2.0 * shared as f64 / (self.a.len() + b.len()) as f64
            }
            ScoreKind::CommonItems => self.shared_count(b) as f64,
        }
    }

    /// Cosine against `b` with an externally supplied `norm_b`, using the
    /// reference norm precomputed at prepare time; matches
    /// [`functions::weighted_cosine`] when `norm_b == b.norm()`. Only
    /// meaningful when prepared with [`ScoreKind::Cosine`].
    #[inline]
    pub fn score_cosine(&self, b: ProfileRef<'_>, norm_b: f64) -> f64 {
        self.bump_scores();
        self.cosine_value(b, self.norm_a, norm_b)
    }

    /// Cosine with both norms supplied (the fitted [`crate::WeightedCosine`]
    /// path, where the reference norm too comes from the fitted table).
    #[inline]
    pub fn score_cosine_with_norms(&self, b: ProfileRef<'_>, norm_a: f64, norm_b: f64) -> f64 {
        self.bump_scores();
        self.cosine_value(b, norm_a, norm_b)
    }

    /// The shared cosine formula behind every public cosine entry point.
    #[inline]
    fn cosine_value(&self, b: ProfileRef<'_>, norm_a: f64, norm_b: f64) -> f64 {
        debug_assert_eq!(self.kind, ScoreKind::Cosine, "prepared for {:?}", self.kind);
        if self.a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let dot = self.dot(b);
        if dot == 0.0 {
            0.0
        } else {
            dot / (norm_a * norm_b)
        }
    }
}

/// A similarity scorer prepared for one reference user of a dataset.
///
/// Returned by [`crate::Similarity::scorer`]; [`Scorer::score`] equals
/// `sim.sim(dataset, u, v)` within [`crate::SIM_EPSILON`] (for every
/// metric in this crate, exactly).
pub trait Scorer {
    /// Similarity of the prepared user against `v`.
    fn score(&mut self, v: UserId) -> f64;

    /// Scores every candidate in one pass, overwriting `out` with one
    /// similarity per candidate (same order). The node-centric batch
    /// entry point of the graph algorithms: one virtual call per
    /// candidate *list* instead of per candidate, and implementations
    /// keep the prepared reference hot across the whole batch.
    fn score_into(&mut self, candidates: &[UserId], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(candidates.len());
        for &v in candidates {
            out.push(self.score(v));
        }
    }
}

/// The trait-level fallback scorer: pairwise [`crate::Similarity::sim`]
/// per candidate, no preparation. Used by the default
/// [`crate::Similarity::scorer`] implementation so custom metrics work
/// unchanged.
pub struct PairwiseScorer<'a, S: ?Sized> {
    /// The metric scored through.
    pub sim: &'a S,
    /// The dataset profiles come from.
    pub dataset: &'a Dataset,
    /// The reference user.
    pub u: UserId,
}

impl<S: crate::Similarity + ?Sized> Scorer for PairwiseScorer<'_, S> {
    fn score(&mut self, v: UserId) -> f64 {
        self.sim.sim(self.dataset, self.u, v)
    }
}

/// A [`Scorer`] over a [`ProfileScorer`] whose formula needs no fitted
/// state: the common implementation behind the stateless metrics.
pub struct ProfileKindScorer<'a> {
    pub(crate) inner: ProfileScorer<'a>,
    pub(crate) dataset: &'a Dataset,
}

impl Scorer for ProfileKindScorer<'_> {
    fn score(&mut self, v: UserId) -> f64 {
        self.inner.score(self.dataset.user_profile(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile<'a>(items: &'a [u32], ratings: &'a [f32]) -> ProfileRef<'a> {
        ProfileRef { items, ratings }
    }

    /// A reference big enough to trigger the dense path.
    fn big_profile() -> (Vec<u32>, Vec<f32>) {
        let items: Vec<u32> = (0..20).map(|i| i * 3).collect();
        let ratings: Vec<f32> = (0..20).map(|i| 1.0 + (i % 5) as f32).collect();
        (items, ratings)
    }

    #[test]
    fn dense_path_engages_by_degree() {
        let (items, ratings) = big_profile();
        let mut ws = ScorerWorkspace::new();
        assert!(ws
            .prepare(ScoreKind::Cosine, profile(&items, &ratings))
            .is_dense());
        let small = profile(&items[..2], &ratings[..2]);
        assert!(!ws.prepare(ScoreKind::Cosine, small).is_dense());
    }

    #[test]
    fn every_kind_matches_its_pairwise_function() {
        let (a_items, a_ratings) = big_profile();
        let a = profile(&a_items, &a_ratings);
        let b_items: Vec<u32> = vec![0, 3, 7, 12, 30, 57, 100];
        let b_ratings: Vec<f32> = vec![2.0, 1.0, 5.0, 3.0, 4.0, 1.0, 2.0];
        let b = profile(&b_items, &b_ratings);
        type PairwiseFn = fn(ProfileRef<'_>, ProfileRef<'_>) -> f64;
        let cases: [(ScoreKind, PairwiseFn); 6] = [
            (ScoreKind::Cosine, functions::weighted_cosine),
            (ScoreKind::BinaryCosine, functions::binary_cosine),
            (ScoreKind::Jaccard, functions::jaccard),
            (ScoreKind::WeightedJaccard, functions::weighted_jaccard),
            (ScoreKind::Dice, functions::dice),
            (ScoreKind::CommonItems, functions::common_items),
        ];
        let mut ws = ScorerWorkspace::new();
        for (kind, f) in cases {
            // Dense path (high-degree reference).
            let scorer = ws.prepare(kind, a);
            assert_eq!(scorer.score(b), f(a, b), "{kind:?} dense");
            // Fallback path (low-degree reference).
            let small = profile(&a_items[..3], &a_ratings[..3]);
            let scorer = ws.prepare(kind, small);
            assert_eq!(scorer.score(b), f(small, b), "{kind:?} fallback");
        }
    }

    #[test]
    fn candidates_beyond_the_dense_map_score_zero_shared() {
        // b rates items far beyond a's largest: the bounds check must
        // treat them as unshared, not panic.
        let (a_items, a_ratings) = big_profile();
        let a = profile(&a_items, &a_ratings);
        let b_items = [1_000_000u32, 2_000_000];
        let b_ratings = [1.0f32, 1.0];
        let b = profile(&b_items, &b_ratings);
        let mut ws = ScorerWorkspace::new();
        let scorer = ws.prepare(ScoreKind::Jaccard, a);
        assert_eq!(scorer.score(b), 0.0);
    }

    #[test]
    fn reprepared_workspace_forgets_the_old_reference() {
        let (a_items, a_ratings) = big_profile();
        let a = profile(&a_items, &a_ratings);
        let c_items: Vec<u32> = (100..120).collect();
        let c_ratings: Vec<f32> = vec![1.0; 20];
        let c = profile(&c_items, &c_ratings);
        let b = profile(&a_items[..5], &a_ratings[..5]); // shares with a only
        let mut ws = ScorerWorkspace::new();
        let s1 = ws.prepare(ScoreKind::CommonItems, a);
        assert_eq!(s1.score(b), 5.0);
        // After re-preparing with c, a's stamps must be stale.
        let s2 = ws.prepare(ScoreKind::CommonItems, c);
        assert_eq!(s2.score(b), 0.0);
    }

    #[test]
    fn empty_candidate_never_nan() {
        let (a_items, a_ratings) = big_profile();
        let a = profile(&a_items, &a_ratings);
        let e = profile(&[], &[]);
        let mut ws = ScorerWorkspace::new();
        for kind in [
            ScoreKind::Cosine,
            ScoreKind::BinaryCosine,
            ScoreKind::Jaccard,
            ScoreKind::WeightedJaccard,
            ScoreKind::Dice,
            ScoreKind::CommonItems,
        ] {
            let scorer = ws.prepare(kind, a);
            assert_eq!(scorer.score(e), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn telemetry_counts_prepares_and_scores() {
        let registry = kiff_telemetry::Registry::new();
        let (a_items, a_ratings) = big_profile();
        let a = profile(&a_items, &a_ratings);
        let b = profile(&a_items[..3], &a_ratings[..3]);
        let mut ws = ScorerWorkspace::with_telemetry(&registry);
        let scorer = ws.prepare(ScoreKind::Cosine, a);
        let _ = scorer.score(b);
        let _ = scorer.score_cosine(b, b.norm());
        let _ = scorer.score_cosine_with_norms(b, 1.0, 1.0);
        let scorer = ws.prepare(ScoreKind::Jaccard, a);
        let _ = scorer.score(b);
        // Score counts batch per reference: the live workspace still
        // holds the Jaccard reference's tally until flushed.
        ws.flush_telemetry();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("similarity.prepares"), Some(2));
        assert_eq!(snap.counter("similarity.scores"), Some(4));
        // The plain workspace stays uninstrumented.
        let mut plain = ScorerWorkspace::new();
        let scorer = plain.prepare(ScoreKind::Cosine, a);
        let _ = scorer.score(b);
        assert_eq!(
            registry.snapshot().counter("similarity.prepares"),
            Some(2),
            "detached workspace leaked into the registry"
        );
    }

    #[test]
    fn weighted_shared_matches_adamic_adar() {
        let (a_items, a_ratings) = big_profile();
        let a = profile(&a_items, &a_ratings);
        let b_items = [0u32, 3, 57];
        let b_ratings = [1.0f32; 3];
        let b = profile(&b_items, &b_ratings);
        let weights: Vec<f64> = (0..200).map(|i| 1.0 / (i as f64 + 2.0)).collect();
        let mut ws = ScorerWorkspace::new();
        let scorer = ws.prepare(ScoreKind::CommonItems, a);
        assert_eq!(
            scorer.weighted_shared(b, &weights),
            functions::adamic_adar_with(a, b, &weights)
        );
    }
}
