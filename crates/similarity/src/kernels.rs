//! Sorted-set intersection kernels.
//!
//! Profiles are sorted id slices, so intersections are linear merges — or,
//! when one side is much shorter, galloping (exponential) searches into the
//! longer side. [`intersect_count`] picks the strategy by size ratio; the
//! `ablations` bench target quantifies the crossover.

/// Size ratio beyond which galloping beats merging (measured on skewed
/// profile pairs; see the `ablations` bench).
const GALLOP_RATIO: usize = 16;

/// Counts common elements of two sorted, duplicate-free slices by linear
/// merge.
pub fn merge_intersect_count(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Counts common elements by galloping the *short* slice into the long one.
///
/// `O(|short| · log |long|)` — asymptotically better than merging when one
/// profile is tiny (e.g. a casual user against a heavy rater).
pub fn galloping_intersect_count(short: &[u32], long: &[u32]) -> usize {
    let mut count = 0;
    let mut lo = 0usize;
    for &x in short {
        // Gallop: find a window [lo+step/2, lo+step] containing x.
        let mut step = 1;
        while lo + step < long.len() && long[lo + step] < x {
            step *= 2;
        }
        // The gallop stopped because long[lo + step] >= x (or ran off the
        // end), so the match — if any — lies in long[lo..=lo + step].
        let hi = (lo + step + 1).min(long.len());
        match long[lo..hi].binary_search(&x) {
            Ok(pos) => {
                count += 1;
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
        if lo >= long.len() {
            break;
        }
    }
    count
}

/// Counts common elements, choosing merge or galloping by size ratio.
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        0
    } else if long.len() / short.len() >= GALLOP_RATIO {
        galloping_intersect_count(short, long)
    } else {
        merge_intersect_count(short, long)
    }
}

/// Visits every shared id of two sorted slices with its positions in each,
/// by linear merge. The workhorse behind the weighted metrics.
#[inline]
pub fn for_each_shared(a: &[u32], b: &[u32], mut visit: impl FnMut(usize, usize)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                visit(i, j);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Dot product of two sparse rating vectors given as (sorted ids, ratings).
pub fn sparse_dot(a_items: &[u32], a_ratings: &[f32], b_items: &[u32], b_ratings: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    for_each_shared(a_items, b_items, |i, j| {
        dot += f64::from(a_ratings[i]) * f64::from(b_ratings[j]);
    });
    dot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_counts_shared() {
        assert_eq!(merge_intersect_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(merge_intersect_count(&[], &[1, 2]), 0);
        assert_eq!(merge_intersect_count(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(merge_intersect_count(&[1, 2], &[3, 4]), 0);
    }

    #[test]
    fn galloping_counts_shared() {
        let long: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(galloping_intersect_count(&[3, 9, 10, 999], &long), 3);
        assert_eq!(galloping_intersect_count(&[1, 2], &long[..1]), 0);
        assert_eq!(galloping_intersect_count(&[0], &long), 1);
        assert_eq!(galloping_intersect_count(&[2997], &long), 1); // last element
    }

    #[test]
    fn dispatcher_handles_extreme_ratios() {
        let long: Vec<u32> = (0..10_000).collect();
        assert_eq!(intersect_count(&[5000], &long), 1);
        assert_eq!(intersect_count(&long, &[5000]), 1);
        assert_eq!(intersect_count(&[], &long), 0);
    }

    #[test]
    fn sparse_dot_multiplies_shared_ratings() {
        let dot = sparse_dot(&[1, 2, 5], &[1.0, 2.0, 3.0], &[2, 5, 9], &[4.0, 5.0, 6.0]);
        assert_eq!(dot, 2.0 * 4.0 + 3.0 * 5.0);
    }

    #[test]
    fn for_each_shared_yields_positions() {
        let mut pairs = vec![];
        for_each_shared(&[1, 4, 6], &[4, 5, 6], |i, j| pairs.push((i, j)));
        assert_eq!(pairs, vec![(1, 0), (2, 2)]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        fn sorted_ids() -> impl Strategy<Value = Vec<u32>> {
            proptest::collection::btree_set(0u32..500, 0..120)
                .prop_map(|s: BTreeSet<u32>| s.into_iter().collect())
        }

        proptest! {
            /// All three strategies agree with the set-model answer.
            #[test]
            fn kernels_agree(a in sorted_ids(), b in sorted_ids()) {
                let sa: BTreeSet<u32> = a.iter().copied().collect();
                let sb: BTreeSet<u32> = b.iter().copied().collect();
                let expected = sa.intersection(&sb).count();
                prop_assert_eq!(merge_intersect_count(&a, &b), expected);
                let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
                prop_assert_eq!(galloping_intersect_count(short, long), expected);
                prop_assert_eq!(intersect_count(&a, &b), expected);
            }

            /// Intersection count is symmetric and bounded.
            #[test]
            fn count_symmetric_and_bounded(a in sorted_ids(), b in sorted_ids()) {
                let ab = intersect_count(&a, &b);
                prop_assert_eq!(ab, intersect_count(&b, &a));
                prop_assert!(ab <= a.len().min(b.len()));
            }
        }
    }
}
