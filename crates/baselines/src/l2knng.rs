//! L2Knng-style exact KNN graph construction under cosine with L2-norm
//! pruning (Anastasiu & Karypis, CIKM'15), the two-phase competitor the
//! paper contrasts KIFF against in §VI.
//!
//! "L2Knng also adopts a two-phase approach and uses pruning to improve its
//! KNN computation. … Firstly, L2Knng's approach is specific to the cosine
//! similarity while KIFF can be applied to any similarity metric. Secondly,
//! L2Knng exploits neighbors-of-neighbors relationships … for its
//! convergence phase … Finally, the design and implementation choice of the
//! candidate set of L2Knng renders it unsuitable for parallel execution."
//!
//! This module reproduces that design faithfully enough to stand in as the
//! comparison point:
//!
//! 1. **Approximate phase** (`L2KnngApprox`): every user indexes her μ
//!    highest-weight features in an inverted index; candidates are scored
//!    by the partial dot product over those indexed features; the top
//!    `λ·k` candidates per user are verified exactly, and a few
//!    neighbours-of-neighbours improvement sweeps refine the initial
//!    graph. Its only job is to establish good per-user similarity
//!    thresholds `θ_u` (the current k-th neighbour similarity).
//! 2. **Exact phase**: users are processed in id order against an
//!    inverted index of all previously processed users, so every pair
//!    sharing at least one item is encountered exactly once. Each
//!    encountered pair is verified with an *early-abandoning* merged dot
//!    product: at merge position `(i, j)` the remaining mass is bounded by
//!    Cauchy–Schwarz as `‖u_{≥i}‖·‖v_{≥j}‖`, and the pair is abandoned as
//!    soon as `dot + bound < min(θ_u, θ_v)` — it can then enter neither
//!    final neighbourhood, because thresholds only grow.
//!
//! Unlike the original (which also truncates the *index* to vector
//! prefixes), the index here holds full vectors; only verification is
//! pruned. That keeps the exactness argument two-sided and local while
//! preserving the algorithm's signature behaviour — L2-norm bounds driven
//! by approximate-graph thresholds. The exact phase is sequential by
//! construction: each user's pruning consumes the thresholds produced by
//! all earlier users, which is precisely the serial dependency §VI calls
//! out ("its pruning mechanism of order n requires results from the
//! remaining n−1 objects").

use std::time::{Duration, Instant};

use kiff_dataset::{Dataset, UserId};
use kiff_graph::{KnnGraph, KnnHeap, SharedKnn};

/// Parameters of [`L2Knng`].
#[derive(Debug, Clone)]
pub struct L2KnngConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// μ — number of highest-weight features each user contributes to the
    /// approximate phase's inverted index. Ties (all weights are equal on
    /// binary data) are broken towards *rarer* items, which discriminate
    /// better.
    pub index_features: usize,
    /// λ — the approximate phase verifies the `λ·k` best-estimated
    /// candidates per user.
    pub candidate_factor: usize,
    /// Neighbourhood-improvement sweeps run after the initial candidates
    /// (the original's "neighborhood enhancement" step).
    pub improve_iterations: usize,
}

impl L2KnngConfig {
    /// Defaults used by the harness: μ = 4, λ = 2, two improvement sweeps.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            index_features: 4,
            candidate_factor: 2,
            improve_iterations: 2,
        }
    }
}

/// Instrumentation of an [`L2Knng`] run.
#[derive(Debug, Clone, Default)]
pub struct L2Stats {
    /// Completed similarity evaluations (full dot products), both phases.
    pub sim_evals: u64,
    /// Pairs abandoned early by the L2 suffix-norm bound.
    pub pruned_pairs: u64,
    /// Pairs encountered in the exact phase (shared-item pairs).
    pub candidate_pairs: u64,
    /// `sim_evals / (|U|·(|U|−1)/2)` — comparable to the other
    /// algorithms' scan rates.
    pub scan_rate: f64,
    /// Wall time of the approximate phase.
    pub approx_time: Duration,
    /// Wall time of the exact verification phase.
    pub verify_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
}

impl L2Stats {
    fn finish(&mut self, n: usize) {
        let possible = n as f64 * (n as f64 - 1.0) / 2.0;
        self.scan_rate = if possible > 0.0 {
            self.sim_evals as f64 / possible
        } else {
            0.0
        };
    }
}

/// A configured L2Knng instance.
///
/// Cosine-specific by design: profiles are L2-normalised once, so a dot
/// product of stored weights *is* the cosine similarity.
///
/// ```
/// use kiff_baselines::{L2Knng, L2KnngConfig};
/// use kiff_dataset::dataset::figure2_toy;
///
/// let (graph, stats) = L2Knng::new(L2KnngConfig::new(1)).run(&figure2_toy());
/// assert_eq!(graph.neighbors(0)[0].id, 1); // Alice ↔ Bob, exact
/// assert!(stats.scan_rate <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct L2Knng {
    config: L2KnngConfig,
}

/// Flattened normalised vectors with per-position suffix norms.
struct NormalizedProfiles {
    /// `offsets[u]..offsets[u + 1]` indexes user `u`'s entries.
    offsets: Vec<usize>,
    /// Item ids, ascending per user (CSR order).
    items: Vec<u32>,
    /// L2-normalised weights parallel to `items`.
    weights: Vec<f64>,
    /// `suffix[p] = ‖weights[p..end-of-user]‖` — the Cauchy–Schwarz bound
    /// on any dot product confined to the suffix starting at `p`.
    suffix: Vec<f64>,
}

impl NormalizedProfiles {
    fn build(dataset: &Dataset) -> Self {
        let n = dataset.num_users();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let nnz = dataset.num_ratings();
        let mut items = Vec::with_capacity(nnz);
        let mut weights = Vec::with_capacity(nnz);
        let mut suffix = vec![0.0f64; nnz];
        for u in 0..n as u32 {
            let p = dataset.user_profile(u);
            let norm = p.norm();
            let start = items.len();
            for (item, rating) in p.iter() {
                items.push(item);
                weights.push(if norm > 0.0 {
                    f64::from(rating) / norm
                } else {
                    0.0
                });
            }
            // Suffix norms, right to left.
            let mut acc = 0.0f64;
            for pos in (start..items.len()).rev() {
                acc += weights[pos] * weights[pos];
                suffix[pos] = acc.sqrt();
            }
            offsets.push(items.len());
        }
        Self {
            offsets,
            items,
            weights,
            suffix,
        }
    }

    #[inline]
    fn range(&self, u: UserId) -> std::ops::Range<usize> {
        self.offsets[u as usize]..self.offsets[u as usize + 1]
    }

    /// Full cosine similarity (merged dot product of normalised weights).
    fn dot(&self, u: UserId, v: UserId) -> f64 {
        let (ru, rv) = (self.range(u), self.range(v));
        let (iu, iv) = (&self.items[ru.clone()], &self.items[rv.clone()]);
        let (wu, wv) = (&self.weights[ru], &self.weights[rv]);
        let mut dot = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < iu.len() && j < iv.len() {
            match iu[i].cmp(&iv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += wu[i] * wv[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        dot
    }

    /// Early-abandoning cosine: returns `None` as soon as the remaining
    /// mass cannot lift the dot product to `threshold`.
    fn dot_bounded(&self, u: UserId, v: UserId, threshold: f64) -> Option<f64> {
        let (ru, rv) = (self.range(u), self.range(v));
        let (iu, iv) = (&self.items[ru.clone()], &self.items[rv.clone()]);
        let (wu, wv) = (&self.weights[ru.clone()], &self.weights[rv.clone()]);
        let (su, sv) = (&self.suffix[ru], &self.suffix[rv]);
        let mut dot = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < iu.len() && j < iv.len() {
            if dot + su[i] * sv[j] < threshold {
                return None;
            }
            match iu[i].cmp(&iv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += wu[i] * wv[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        Some(dot)
    }
}

impl L2Knng {
    /// Creates an instance with `config`.
    pub fn new(config: L2KnngConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &L2KnngConfig {
        &self.config
    }

    /// Builds the exact cosine KNN graph of `dataset`.
    pub fn run(&self, dataset: &Dataset) -> (KnnGraph, L2Stats) {
        let total_start = Instant::now();
        let n = dataset.num_users();
        let k = self.config.k;
        let mut stats = L2Stats::default();
        let profiles = NormalizedProfiles::build(dataset);
        let shared = SharedKnn::new(n, k);

        let approx_start = Instant::now();
        self.approximate_phase(dataset, &profiles, &shared, &mut stats);
        stats.approx_time = approx_start.elapsed();

        let verify_start = Instant::now();
        self.exact_phase(dataset, &profiles, &shared, &mut stats);
        stats.verify_time = verify_start.elapsed();

        stats.total_time = total_start.elapsed();
        stats.finish(n);
        (shared.snapshot(), stats)
    }

    /// Phase 1: initial approximate graph from the top-μ feature index,
    /// refined by neighbours-of-neighbours sweeps. Establishes the
    /// thresholds that make phase 2's pruning effective.
    fn approximate_phase(
        &self,
        dataset: &Dataset,
        profiles: &NormalizedProfiles,
        shared: &SharedKnn,
        stats: &mut L2Stats,
    ) {
        let n = dataset.num_users();
        let mu = self.config.index_features.max(1);
        let items = dataset.item_profiles();

        // Each user's μ highest-weight features, ties towards rarer items.
        let mut indexed: Vec<Vec<u32>> = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let r = profiles.range(u);
            let ids = &profiles.items[r.clone()];
            let ws = &profiles.weights[r];
            let mut order: Vec<usize> = (0..ids.len()).collect();
            order.sort_unstable_by(|&a, &b| {
                ws[b]
                    .partial_cmp(&ws[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| items.degree(ids[a]).cmp(&items.degree(ids[b])))
                    .then_with(|| ids[a].cmp(&ids[b]))
            });
            order.truncate(mu);
            indexed.push(order.into_iter().map(|idx| ids[idx]).collect());
        }

        // Inverted index over the selected features only.
        let mut inv: Vec<Vec<u32>> = vec![Vec::new(); dataset.num_items()];
        for (u, feats) in indexed.iter().enumerate() {
            for &i in feats {
                inv[i as usize].push(u as u32);
            }
        }

        // Candidate scoring by partial dot over indexed features.
        let k = self.config.k;
        let budget = (self.config.candidate_factor * k).max(k);
        let mut estimate: Vec<f64> = vec![0.0; n];
        let mut touched: Vec<u32> = Vec::new();
        for u in 0..n as u32 {
            touched.clear();
            let r = profiles.range(u);
            let (ids, ws) = (&profiles.items[r.clone()], &profiles.weights[r]);
            for (pos, &i) in ids.iter().enumerate() {
                for &v in &inv[i as usize] {
                    if v == u {
                        continue;
                    }
                    if estimate[v as usize] == 0.0 {
                        touched.push(v);
                    }
                    // The candidate's weight on `i` is found by binary
                    // search in its profile; both sides contribute.
                    let rv = profiles.range(v);
                    let vi = &profiles.items[rv.clone()];
                    if let Ok(idx) = vi.binary_search(&i) {
                        estimate[v as usize] += ws[pos] * profiles.weights[rv.start + idx];
                    }
                }
            }
            // Verify the top-λk estimates exactly.
            if touched.len() > budget {
                touched.select_nth_unstable_by(budget - 1, |&a, &b| {
                    estimate[b as usize]
                        .partial_cmp(&estimate[a as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for &v in &touched[budget..] {
                    estimate[v as usize] = 0.0;
                }
                touched.truncate(budget);
            }
            for &v in &touched {
                let s = profiles.dot(u, v);
                stats.sim_evals += 1;
                if s > 0.0 {
                    shared.update(u, v, s);
                    shared.update(v, u, s);
                }
                estimate[v as usize] = 0.0;
            }
        }

        // Neighbourhood improvement sweeps (neighbours of neighbours).
        let mut cands: Vec<u32> = Vec::new();
        for _ in 0..self.config.improve_iterations {
            let mut changes = 0u64;
            for u in 0..n as u32 {
                cands.clear();
                let direct = shared.lock(u).ids();
                for &v in &direct {
                    cands.extend(shared.lock(v).ids());
                }
                cands.sort_unstable();
                cands.dedup();
                for &w in &cands {
                    if w == u || direct.contains(&w) {
                        continue;
                    }
                    let s = profiles.dot(u, w);
                    stats.sim_evals += 1;
                    if s > 0.0 {
                        changes += shared.update(u, w, s) + shared.update(w, u, s);
                    }
                }
            }
            if changes == 0 {
                break;
            }
        }
    }

    /// Phase 2: sequential exact pass. Every shared-item pair `(v, u)`
    /// with `v < u` is encountered once when `u` queries the index of
    /// processed users, and abandoned only when the L2 bound proves it
    /// cannot enter either neighbourhood.
    fn exact_phase(
        &self,
        dataset: &Dataset,
        profiles: &NormalizedProfiles,
        shared: &SharedKnn,
        stats: &mut L2Stats,
    ) {
        let n = dataset.num_users();
        let k = self.config.k;
        // Inverted index of processed users, one list per item.
        let mut inv: Vec<Vec<u32>> = vec![Vec::new(); dataset.num_items()];
        // Epoch-stamped candidate dedup.
        let mut stamp: Vec<u32> = vec![u32::MAX; n];
        let mut cands: Vec<u32> = Vec::new();

        let theta = |heap: &KnnHeap| -> f64 {
            if heap.len() == k {
                heap.worst().map_or(0.0, |(s, _)| s)
            } else {
                0.0
            }
        };

        for u in 0..n as u32 {
            cands.clear();
            let r = profiles.range(u);
            for &i in &profiles.items[r.clone()] {
                for &v in &inv[i as usize] {
                    if stamp[v as usize] != u {
                        stamp[v as usize] = u;
                        cands.push(v);
                    }
                }
            }
            stats.candidate_pairs += cands.len() as u64;

            let mut theta_u = theta(&shared.lock(u));
            for &v in &cands {
                let theta_v = theta(&shared.lock(v));
                let min_theta = theta_u.min(theta_v);
                match profiles.dot_bounded(u, v, min_theta) {
                    None => stats.pruned_pairs += 1,
                    Some(s) => {
                        stats.sim_evals += 1;
                        if s > 0.0 {
                            let changed = shared.update(u, v, s) + shared.update(v, u, s);
                            if changed > 0 {
                                theta_u = theta(&shared.lock(u));
                            }
                        }
                    }
                }
            }

            // u becomes part of the index for all later users.
            for &i in &profiles.items[r] {
                inv[i as usize].push(u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_graph::{exact_knn_brute, recall};
    use kiff_similarity::WeightedCosine;

    #[test]
    fn toy_dataset_exact() {
        let ds = figure2_toy();
        let (graph, _) = L2Knng::new(L2KnngConfig::new(1)).run(&ds);
        assert_eq!(graph.neighbors(0)[0].id, 1); // Alice ↔ Bob
        assert_eq!(graph.neighbors(2)[0].id, 3); // Carl ↔ Dave
        assert!((graph.neighbors(2)[0].sim - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_exactly() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("l2k", 131));
        let sim = WeightedCosine::fit(&ds);
        for k in [1, 5, 10] {
            let (graph, _) = L2Knng::new(L2KnngConfig::new(k)).run(&ds);
            let exact = exact_knn_brute(&ds, &sim, k, None);
            let r = recall(&exact, &graph);
            assert!((r - 1.0).abs() < 1e-12, "k={k}: recall = {r}");
        }
    }

    #[test]
    fn exact_even_with_crippled_approximate_phase() {
        // With μ = 1, λ·k tiny and no improvement sweeps, thresholds are
        // poor — pruning must still never discard a true neighbour.
        let ds = generate_bipartite(&BipartiteConfig::tiny("l2c", 137));
        let sim = WeightedCosine::fit(&ds);
        let cfg = L2KnngConfig {
            k: 5,
            index_features: 1,
            candidate_factor: 1,
            improve_iterations: 0,
        };
        let (graph, _) = L2Knng::new(cfg).run(&ds);
        let exact = exact_knn_brute(&ds, &sim, 5, None);
        assert!((recall(&exact, &graph) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_is_effective() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("l2p", 139));
        let (_, stats) = L2Knng::new(L2KnngConfig::new(3)).run(&ds);
        assert!(stats.pruned_pairs > 0, "no pairs pruned");
        assert!(stats.sim_evals > 0);
        assert!(stats.candidate_pairs >= stats.pruned_pairs);
        assert!(stats.scan_rate > 0.0);
    }

    #[test]
    fn better_thresholds_prune_more() {
        // More improvement sweeps ⇒ higher θ entering the exact phase ⇒
        // at least as many pruned pairs.
        let ds = generate_bipartite(&BipartiteConfig::tiny("l2t", 149));
        let weak = L2KnngConfig {
            k: 5,
            index_features: 1,
            candidate_factor: 1,
            improve_iterations: 0,
        };
        let strong = L2KnngConfig {
            k: 5,
            index_features: 6,
            candidate_factor: 3,
            improve_iterations: 3,
        };
        let (_, sw) = L2Knng::new(weak).run(&ds);
        let (_, ss) = L2Knng::new(strong).run(&ds);
        assert!(
            ss.pruned_pairs >= sw.pruned_pairs,
            "strong {} < weak {}",
            ss.pruned_pairs,
            sw.pruned_pairs
        );
    }

    #[test]
    fn deterministic() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("l2d", 151));
        let (g1, s1) = L2Knng::new(L2KnngConfig::new(4)).run(&ds);
        let (g2, s2) = L2Knng::new(L2KnngConfig::new(4)).run(&ds);
        assert_eq!(s1.sim_evals, s2.sim_evals);
        assert_eq!(s1.pruned_pairs, s2.pruned_pairs);
        for u in 0..ds.num_users() as u32 {
            let a: Vec<_> = g1.neighbors(u).iter().map(|x| x.id).collect();
            let b: Vec<_> = g2.neighbors(u).iter().map(|x| x.id).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn suffix_norms_decrease() {
        let ds = figure2_toy();
        let p = NormalizedProfiles::build(&ds);
        for u in 0..ds.num_users() as u32 {
            let r = p.range(u);
            let s = &p.suffix[r];
            for w in s.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            // A normalised vector's full suffix norm is 1.
            if !s.is_empty() {
                assert!((s[0] - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_and_disjoint_users() {
        use kiff_dataset::DatasetBuilder;
        let mut b = DatasetBuilder::new("sparse", 3, 4);
        b.add_rating(0, 0, 1.0);
        b.add_rating(1, 1, 1.0);
        b.add_rating(2, 2, 1.0);
        let ds = b.build();
        let (graph, stats) = L2Knng::new(L2KnngConfig::new(2)).run(&ds);
        for u in 0..3 {
            assert!(graph.neighbors(u).is_empty(), "user {u} has neighbours");
        }
        assert_eq!(stats.candidate_pairs, 0);
    }
}
