//! Bench for Fig. 10: KIFF vs NN-Descent across dataset densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_bench::runner::{run_kiff, run_nndescent, RunOptions};
use kiff_dataset::subsample_ratings;

fn bench(c: &mut Criterion) {
    let base = bench_dataset(17);
    let opts = RunOptions {
        k: 10,
        threads: Some(2),
        seed: 4,
    };
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for keep_pct in [100usize, 30, 10] {
        let ds = subsample_ratings(&base, base.num_ratings() * keep_pct / 100, 3);
        group.bench_with_input(BenchmarkId::new("kiff_density", keep_pct), &ds, |b, ds| {
            b.iter(|| black_box(run_kiff(ds, opts)))
        });
        group.bench_with_input(
            BenchmarkId::new("nndescent_density", keep_pct),
            &ds,
            |b, ds| b.iter(|| black_box(run_nndescent(ds, opts))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
