//! Initialisation-quality helpers (Table VII).
//!
//! Table VII compares the recall of two *initial* KNN approximations before
//! any convergence: the top-`k` of each user's (unpivoted) RCS versus a
//! random graph. The former "illustrates the immediate benefit obtained by
//! KIFF from its counting phase" (§V-A2).

use kiff_dataset::Dataset;
use kiff_graph::{KnnGraph, Neighbor};
use kiff_similarity::{ScorerWorkspace, Similarity, PREPARED_MIN_BATCH};

use crate::config::CountStrategy;
use crate::counting::{build_rcs, CountingConfig};

/// Builds the KNN approximation obtained by taking the top `k` entries of
/// each user's full (unpivoted) Ranked Candidate Set, with their true
/// similarities attached (recall evaluation compares similarity values).
/// Each user's profile is prepared once ([`Similarity::scorer`]) and its
/// RCS prefix streams through the prepared scorer — identical values to
/// the pairwise path, as everywhere in the workspace.
pub fn initial_rcs_graph<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    k: usize,
    threads: Option<usize>,
) -> KnnGraph {
    let rcs = build_rcs(
        dataset,
        &CountingConfig {
            pivot: false,
            keep_counts: false,
            threads,
            strategy: CountStrategy::SortBased,
            rating_threshold: None,
            max_rcs: None,
        },
    );
    let mut ws = ScorerWorkspace::new();
    let lists: Vec<Vec<Neighbor>> = (0..dataset.num_users() as u32)
        .map(|u| {
            let prefix = &rcs.rcs(u)[..k.min(rcs.rcs(u).len())];
            let mut scorer =
                (prefix.len() >= PREPARED_MIN_BATCH).then(|| sim.scorer(dataset, u, &mut ws));
            prefix
                .iter()
                .map(|&v| Neighbor {
                    id: v,
                    sim: match scorer.as_mut() {
                        Some(scorer) => scorer.score(v),
                        None => sim.sim(dataset, u, v),
                    },
                })
                .collect()
        })
        .collect();
    KnnGraph::from_neighbors(k, lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_graph::{exact_knn, recall};
    use kiff_similarity::WeightedCosine;

    #[test]
    fn toy_initialisation_is_already_exact() {
        let ds = figure2_toy();
        let sim = WeightedCosine::new();
        let init = initial_rcs_graph(&ds, &sim, 1, Some(1));
        assert_eq!(init.neighbors(0)[0].id, 1);
        assert_eq!(init.neighbors(1)[0].id, 0); // unpivoted: Bob sees Alice
        assert_eq!(init.neighbors(3)[0].id, 2);
    }

    #[test]
    fn rcs_initialisation_beats_random_substantially() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("init", 71));
        let sim = WeightedCosine::fit(&ds);
        let k = 5;
        let n = ds.num_users() as u32;
        let exact = exact_knn(&ds, &sim, k, None);
        let init = initial_rcs_graph(&ds, &sim, k, None);
        let r_init = recall(&exact, &init);
        // A deterministic stand-in for the random initial graph greedy
        // approaches start from.
        let random = KnnGraph::from_neighbors(
            k,
            (0..n)
                .map(|u| {
                    (1..=k as u32)
                        .map(|d| {
                            let v = (u + d * 17) % n;
                            Neighbor {
                                id: v,
                                sim: sim.sim(&ds, u, v),
                            }
                        })
                        .collect()
                })
                .collect(),
        );
        let r_random = recall(&exact, &random);
        // Table VII's shape: the counting-phase initialisation dominates a
        // random start by a wide margin.
        assert!(
            r_init > 2.0 * r_random,
            "init recall {r_init} vs random {r_random}"
        );
        assert!(r_init <= 1.0 + 1e-9);
    }

    #[test]
    fn neighbor_sims_are_true_similarities() {
        let ds = figure2_toy();
        let sim = WeightedCosine::new();
        let init = initial_rcs_graph(&ds, &sim, 2, Some(1));
        for u in 0..4u32 {
            for n in init.neighbors(u) {
                assert!((n.sim - sim.sim(&ds, u, n.id)).abs() < 1e-12);
            }
        }
    }
}
