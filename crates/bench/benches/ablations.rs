//! Ablation benches for the design choices called out in DESIGN.md:
//! sort-based vs hash-based RCS counting, merge vs galloping
//! intersections, pivot on/off, inverted-index vs brute-force exact KNN,
//! and NN-Descent sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_baselines::{GreedyConfig, NnDescent};
use kiff_bench::datasets::{bench_dataset, small_bench_dataset};
use kiff_core::{build_rcs, CountStrategy, CountingConfig};
use kiff_graph::{exact_knn, exact_knn_brute};
use kiff_similarity::{galloping_intersect_count, merge_intersect_count, WeightedCosine};

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(18);
    let _ = ds.item_profiles();

    // RCS counting strategy.
    let mut group = c.benchmark_group("ablation_rcs_strategy");
    group.sample_size(20);
    for (name, strategy) in [
        ("dense", CountStrategy::Dense),
        ("sort_based", CountStrategy::SortBased),
        ("hash_based", CountStrategy::HashBased),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(build_rcs(
                    &ds,
                    &CountingConfig {
                        strategy,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    // Pivot halves the stored candidates.
    group.bench_function("unpivoted", |b| {
        b.iter(|| {
            black_box(build_rcs(
                &ds,
                &CountingConfig {
                    pivot: false,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();

    // Intersection kernels on skewed slice pairs.
    let long: Vec<u32> = (0..8192u32).map(|i| i * 3).collect();
    let short: Vec<u32> = (0..64u32).map(|i| i * 379).collect();
    let mut group = c.benchmark_group("ablation_intersection");
    group.bench_function("merge_skewed", |b| {
        b.iter(|| black_box(merge_intersect_count(black_box(&short), black_box(&long))))
    });
    group.bench_function("gallop_skewed", |b| {
        b.iter(|| {
            black_box(galloping_intersect_count(
                black_box(&short),
                black_box(&long),
            ))
        })
    });
    group.finish();

    // Exact KNN: inverted index vs brute force.
    let small = small_bench_dataset(19);
    let sim = WeightedCosine::fit(&small);
    let _ = small.item_profiles();
    let mut group = c.benchmark_group("ablation_exact");
    group.sample_size(10);
    group.bench_function("inverted_index", |b| {
        b.iter(|| black_box(exact_knn(&small, &sim, 10, Some(2))))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| black_box(exact_knn_brute(&small, &sim, 10, Some(2))))
    });
    group.finish();

    // NN-Descent sampling.
    let mut group = c.benchmark_group("ablation_nnd_sampling");
    group.sample_size(10);
    let mut cfg = GreedyConfig::new(10);
    cfg.threads = Some(2);
    group.bench_function("no_sampling", |b| {
        b.iter(|| black_box(NnDescent::new(cfg.clone()).run(&small, &sim)))
    });
    group.bench_function("rho_0_5", |b| {
        b.iter(|| {
            black_box(
                NnDescent::new(cfg.clone())
                    .with_sampling(0.5)
                    .run(&small, &sim),
            )
        })
    });
    group.finish();
}

fn bench_rating_threshold(c: &mut Criterion) {
    // The paper's §VII future-work heuristic: a rating threshold shrinks
    // the RCSs on star-rated data.
    use kiff_core::{Kiff, KiffConfig};
    use kiff_dataset::generators::movielens_like;

    let ds = movielens_like(0.05, 20);
    let sim = WeightedCosine::fit(&ds);
    let mut group = c.benchmark_group("ablation_rating_threshold");
    group.sample_size(10);
    group.bench_function("no_threshold", |b| {
        b.iter(|| black_box(Kiff::new(KiffConfig::new(10).with_threads(2)).run(&ds, &sim)))
    });
    group.bench_function("threshold_3_stars", |b| {
        b.iter(|| {
            black_box(
                Kiff::new(
                    KiffConfig::new(10)
                        .with_threads(2)
                        .with_rating_threshold(3.0),
                )
                .run(&ds, &sim),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench, bench_rating_threshold);
criterion_main!(benches);
