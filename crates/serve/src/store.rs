//! Durable engine state: the WAL + snapshot lifecycle in one place.
//!
//! The daemon's write path is *log → apply → (occasionally) snapshot*:
//!
//! 1. [`Store::append`] persists an update batch to the WAL before the
//!    engine applies it.
//! 2. After [`Store::threshold`] updates have accumulated since the last
//!    snapshot, [`Store::maybe_snapshot`] freezes the engine (dataset,
//!    graph, counters) into a `snap-*.kifs` file and prunes WAL segments
//!    the snapshot now covers.
//! 3. [`recover`] reverses the process: load the newest snapshot, replay
//!    the WAL tail (`seq > snapshot.seq`), and hand back a live engine
//!    plus a store positioned to continue the sequence.
//!
//! Because the online engine is deterministic under replay (heap
//! evolution has a total tie-break order, and mutate's candidate
//! truncation is id-stable), *snapshot + tail replay produces exactly
//! the state of an uninterrupted run* — `tests/serve_recovery.rs` proves
//! this property over arbitrary streams and snapshot points.

use std::path::{Path, PathBuf};
use std::time::Instant;

use kiff_core::KiffError;
use kiff_dataset::Dataset;
use kiff_graph::KnnGraph;
use kiff_online::{KnnEngine, OnlineConfig, OnlineKnn, ShardConfig, ShardedOnlineKnn, Update};
use kiff_telemetry::Registry;

use crate::snapshot::{latest_snapshot, load_snapshot, save_snapshot};
use crate::wal::{Wal, DEFAULT_SEGMENT_BYTES};

/// Persistence knobs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding `wal-*.log` segments and `snap-*.kifs` files.
    pub dir: PathBuf,
    /// Take a snapshot every this many updates (`0` = only on demand).
    pub snapshot_every: u64,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl StoreConfig {
    /// Defaults for `dir`: snapshot every 10 000 updates, 8 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 10_000,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }

    /// Sets the automatic snapshot interval (`0` disables it).
    pub fn with_snapshot_every(mut self, updates: u64) -> Self {
        self.snapshot_every = updates;
        self
    }

    /// Sets the WAL segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }
}

/// A live WAL plus the snapshot bookkeeping around it.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    snapshot_every: u64,
    last_snapshot_seq: u64,
    batch_hwm: u64,
    epoch: u64,
    last_append_at: Instant,
    last_snapshot_at: Instant,
    telemetry: Registry,
}

/// What [`Store::append`] did with a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Appended {
    /// The batch was durably logged; the engine must now apply it.
    Applied {
        /// Sequence number of the batch's last update.
        seq: u64,
    },
    /// The batch id was at or below the applied high-water mark — a
    /// client retry of a batch that already landed. The engine must
    /// *not* apply it again.
    Duplicate {
        /// The store's current sequence, unchanged.
        seq: u64,
    },
}

/// What [`recover`] reconstructed.
pub struct Recovered {
    /// The live engine, positioned exactly where the stream left off.
    pub engine: Box<dyn KnnEngine>,
    /// A store continuing the same WAL sequence.
    pub store: Store,
    /// Sequence of the snapshot recovery started from (`None` = none).
    pub snapshot_seq: Option<u64>,
    /// WAL updates replayed on top of the snapshot (or the seed).
    pub replayed: u64,
    /// Whether the WAL tail was cut short by a torn or corrupt record.
    pub truncated: bool,
    /// Replication leadership epoch recovered from the snapshot (0 when
    /// the daemon never participated in a failover).
    pub epoch: u64,
}

fn build_engine(
    dataset: &Dataset,
    graph: Option<&KnnGraph>,
    counters: Option<Vec<Vec<(u32, u32)>>>,
    config: OnlineConfig,
    shards: Option<&ShardConfig>,
) -> Result<Box<dyn KnnEngine>, KiffError> {
    Ok(match shards {
        Some(sc) => match graph {
            Some(g) => Box::new(ShardedOnlineKnn::from_graph(dataset, g, config, sc.clone())),
            None => Box::new(ShardedOnlineKnn::new(dataset, config, sc.clone())),
        },
        None => match (graph, counters) {
            (Some(g), Some(rows)) => Box::new(OnlineKnn::from_snapshot(dataset, g, rows, config)?),
            (Some(g), None) => Box::new(OnlineKnn::from_graph(dataset, g, config)),
            (None, _) => Box::new(OnlineKnn::new(dataset, config)),
        },
    })
}

/// Rebuilds a live engine from the newest snapshot in `cfg.dir` plus the
/// WAL tail past it. When the directory holds no snapshot, the engine
/// starts from `seed` (and `seed_graph`, when one was prebuilt) and the
/// *whole* WAL is replayed on top — the seed is the state WAL sequence
/// numbers count from, so it must be the same dataset the daemon was
/// first started with.
pub fn recover(
    cfg: &StoreConfig,
    seed: &Dataset,
    seed_graph: Option<&KnnGraph>,
    config: OnlineConfig,
    shards: Option<ShardConfig>,
) -> Result<Recovered, KiffError> {
    let telemetry = config.telemetry.clone();
    let (mut engine, after_seq, snapshot_seq, snapshot_hwm, epoch) =
        match latest_snapshot(&cfg.dir)? {
            Some((seq, path)) => {
                let snap = load_snapshot(&path)?;
                let engine = build_engine(
                    &snap.dataset,
                    Some(&snap.graph),
                    snap.counters,
                    config,
                    shards.as_ref(),
                )?;
                (engine, seq, Some(seq), snap.batch_hwm, snap.epoch)
            }
            None => {
                let engine = build_engine(seed, seed_graph, None, config, shards.as_ref())?;
                (engine, 0, None, 0, 0)
            }
        };

    let replay = Wal::replay(&cfg.dir, after_seq, &telemetry)?;
    let replayed = replay.updates.len() as u64;
    let (next_seq, truncated) = (replay.next_seq, replay.truncated);
    // The dedup mark must survive both paths: WAL pruning (snapshot hwm)
    // and snapshots that predate the latest committed batches (replay
    // hwm). Take the max.
    let batch_hwm = snapshot_hwm.max(replay.batch_hwm);
    // Re-apply with the *original* batch boundaries: repair is amortised
    // per batch, so the boundaries are part of the replayed state.
    for batch in replay.batches() {
        engine.apply_batch(batch);
    }
    let wal =
        Wal::open(&cfg.dir, next_seq, telemetry.clone())?.with_segment_bytes(cfg.segment_bytes);
    telemetry.gauge("store.seq").set((next_seq - 1) as i64);
    Ok(Recovered {
        engine,
        store: Store {
            dir: cfg.dir.clone(),
            wal,
            snapshot_every: cfg.snapshot_every,
            last_snapshot_seq: after_seq,
            batch_hwm,
            epoch,
            last_append_at: Instant::now(),
            last_snapshot_at: Instant::now(),
            telemetry,
        },
        snapshot_seq,
        replayed,
        truncated,
        epoch,
    })
}

impl Store {
    /// The sequence number of the last persisted update (0 = none yet).
    pub fn seq(&self) -> u64 {
        self.wal.next_seq() - 1
    }

    /// The automatic snapshot interval (`0` = manual only).
    pub fn threshold(&self) -> u64 {
        self.snapshot_every
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Highest client-assigned batch id applied so far (0 = none).
    pub fn batch_hwm(&self) -> u64 {
        self.batch_hwm
    }

    /// The replication leadership epoch this store last persisted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adopts a new leadership epoch. The caller (promotion, or a
    /// replica following a newer primary) should snapshot soon after so
    /// the fence survives a restart; until then the epoch lives only in
    /// memory.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.telemetry.gauge("store.epoch").set(epoch as i64);
    }

    /// Whether a failed append has poisoned the WAL (writes must be
    /// refused until [`Store::reopen_wal`] succeeds).
    pub fn is_poisoned(&self) -> bool {
        self.wal.is_poisoned()
    }

    /// Attempts to heal a poisoned WAL (see [`Wal::reopen`]).
    pub fn reopen_wal(&mut self) -> Result<(), KiffError> {
        self.wal.reopen()
    }

    /// Seconds since the last successful WAL append (or recovery).
    pub fn wal_age_secs(&self) -> u64 {
        self.last_append_at.elapsed().as_secs()
    }

    /// Seconds since the last snapshot (or recovery).
    pub fn snapshot_age_secs(&self) -> u64 {
        self.last_snapshot_at.elapsed().as_secs()
    }

    /// Durably appends `updates` to the WAL (one fsync), *before* they
    /// are applied to the engine.
    ///
    /// `batch_id` is the client-assigned id (0 = none): ids at or below
    /// the applied high-water mark are retries of batches that already
    /// landed and come back as [`Appended::Duplicate`] without touching
    /// the log — the idempotence half of the self-healing client.
    pub fn append(&mut self, updates: &[Update], batch_id: u64) -> Result<Appended, KiffError> {
        if batch_id != 0 && batch_id <= self.batch_hwm {
            self.telemetry.counter("store.deduped").incr();
            return Ok(Appended::Duplicate { seq: self.seq() });
        }
        let seq = self.wal.append_batch(updates, batch_id)?;
        self.batch_hwm = self.batch_hwm.max(batch_id);
        self.last_append_at = Instant::now();
        self.telemetry.gauge("store.seq").set(seq as i64);
        Ok(Appended::Applied { seq })
    }

    /// Whether the WAL holds updates not yet covered by a snapshot.
    pub fn dirty(&self) -> bool {
        self.seq() > self.last_snapshot_seq
    }

    /// Whether enough updates accumulated since the last snapshot.
    pub fn should_snapshot(&self) -> bool {
        self.snapshot_every > 0 && self.seq() - self.last_snapshot_seq >= self.snapshot_every
    }

    /// Snapshots `engine` at the current sequence and prunes WAL
    /// segments the snapshot covers. The engine must have applied
    /// everything appended so far.
    pub fn snapshot(&mut self, engine: &dyn KnnEngine) -> Result<PathBuf, KiffError> {
        let seq = self.seq();
        let dataset = engine.data().to_dataset();
        let graph = engine.graph();
        let counters = engine.counters_snapshot();
        let path = save_snapshot(
            &self.dir,
            seq,
            self.batch_hwm,
            self.epoch,
            &dataset,
            &graph,
            counters.as_deref(),
        )?;
        self.last_snapshot_seq = seq;
        self.last_snapshot_at = Instant::now();
        self.wal.prune(seq)?;
        self.telemetry.counter("snapshot.saved").incr();
        self.telemetry.gauge("snapshot.seq").set(seq as i64);
        Ok(path)
    }

    /// Runs [`Store::snapshot`] when [`Store::should_snapshot`] says so.
    pub fn maybe_snapshot(&mut self, engine: &dyn KnnEngine) -> Result<Option<PathBuf>, KiffError> {
        if self.should_snapshot() {
            self.snapshot(engine).map(Some)
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiff-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn stream() -> Vec<Update> {
        let mut updates = vec![Update::AddUser];
        for i in 0..20u32 {
            updates.push(Update::AddRating {
                user: i % 5,
                item: (i * 3) % 7,
                rating: 1.0 + (i % 4) as f32,
            });
        }
        updates.push(Update::RemoveRating { user: 0, item: 0 });
        updates
    }

    fn graphs_equal(a: &KnnGraph, b: &KnnGraph) -> bool {
        a == b
    }

    #[test]
    fn snapshot_plus_tail_equals_uninterrupted_replay() {
        let dir = tmp("equiv");
        let seed = figure2_toy();
        let stream = stream();

        // Uninterrupted reference run, applied with the same batch
        // boundaries the persisted run will log (repair is amortised per
        // batch, so boundaries are part of the state).
        let mut reference = OnlineKnn::new(&seed, OnlineConfig::new(2));
        for chunk in stream.chunks(4) {
            reference.apply_batch(chunk.to_vec());
        }

        // Persisted run: append + apply in small batches, snapshot at an
        // arbitrary point in the middle.
        let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
        let rec = recover(&cfg, &seed, None, OnlineConfig::new(2), None).unwrap();
        let (mut engine, mut store) = (rec.engine, rec.store);
        for (i, chunk) in stream.chunks(4).enumerate() {
            store.append(chunk, 0).unwrap();
            engine.apply_batch(chunk.to_vec());
            if i == 2 {
                store.snapshot(engine.as_ref()).unwrap();
            }
        }
        drop((engine, store));

        // Recover: snapshot + WAL tail must equal the reference exactly.
        let rec = recover(&cfg, &seed, None, OnlineConfig::new(2), None).unwrap();
        assert_eq!(rec.snapshot_seq, Some(12));
        assert_eq!(rec.replayed, stream.len() as u64 - 12);
        assert!(!rec.truncated);
        assert!(
            graphs_equal(&rec.engine.graph(), &reference.graph()),
            "recovered graph diverged from the uninterrupted run"
        );
        assert_eq!(rec.engine.len(), reference.num_users());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn automatic_snapshots_fire_on_threshold() {
        let dir = tmp("auto");
        let seed = figure2_toy();
        let cfg = StoreConfig::new(&dir).with_snapshot_every(8);
        let rec = recover(&cfg, &seed, None, OnlineConfig::new(2), None).unwrap();
        let (mut engine, mut store) = (rec.engine, rec.store);
        let stream = stream();
        let mut snapped = 0;
        for chunk in stream.chunks(3) {
            store.append(chunk, 0).unwrap();
            engine.apply_batch(chunk.to_vec());
            if store.maybe_snapshot(engine.as_ref()).unwrap().is_some() {
                snapped += 1;
            }
        }
        assert!(snapped >= 2, "snapshots fired {snapped} times");
        assert!(!store.should_snapshot());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_persists_through_snapshot_and_recovery() {
        let dir = tmp("epoch");
        let seed = figure2_toy();
        let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
        let rec = recover(&cfg, &seed, None, OnlineConfig::new(2), None).unwrap();
        assert_eq!(rec.epoch, 0, "fresh stores start at epoch 0");
        let (mut engine, mut store) = (rec.engine, rec.store);
        let stream = stream();
        store.append(&stream, 1).unwrap();
        engine.apply_batch(stream.clone());
        store.set_epoch(3);
        store.snapshot(engine.as_ref()).unwrap();
        drop((engine, store));

        let rec = recover(&cfg, &seed, None, OnlineConfig::new(2), None).unwrap();
        assert_eq!(rec.epoch, 3, "promotion epoch survives restart");
        assert_eq!(rec.store.epoch(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_engines_recover_through_snapshots_too() {
        let dir = tmp("sharded");
        let seed = figure2_toy();
        let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
        let shards = Some(ShardConfig::new(2));
        let rec = recover(&cfg, &seed, None, OnlineConfig::new(2), shards.clone()).unwrap();
        let (mut engine, mut store) = (rec.engine, rec.store);
        let stream = stream();
        store.append(&stream, 0).unwrap();
        engine.apply_batch(stream.clone());
        store.snapshot(engine.as_ref()).unwrap();
        let expected = engine.graph();
        drop((engine, store));

        let rec = recover(&cfg, &seed, None, OnlineConfig::new(2), shards).unwrap();
        assert_eq!(rec.replayed, 0, "everything was covered by the snapshot");
        assert_eq!(rec.engine.graph().as_ref(), expected.as_ref());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
