//! Workspace-local stand-in for `parking_lot`: a thin wrapper over
//! `std::sync::Mutex` with the poison-free `lock()` signature the
//! workspace relies on. Built because the offline environment cannot
//! fetch the real crate; the API subset is identical.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (std-backed; poisoning is swallowed,
/// matching `parking_lot` semantics where a panicked holder does not
/// poison the lock).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
