//! Fig. 8: convergence traces (recall and update counts vs scan rate) on
//! the Arxiv dataset.

use kiff_baselines::{GreedyConfig, HyRec, NnDescent};
use kiff_core::{Kiff, KiffConfig};
use kiff_dataset::{paper_k, PaperDataset};
use kiff_eval::table::Table;
use kiff_graph::{recall, IterationObserver, IterationTrace, KnnGraph, SharedKnn};
use kiff_similarity::WeightedCosine;

use super::Ctx;

/// One point of a convergence series.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ConvergencePoint {
    /// Cumulative scan rate after the iteration.
    pub scan_rate: f64,
    /// Recall after the iteration (Fig. 8a).
    pub recall: f64,
    /// Average updates per user during the iteration (Fig. 8b).
    pub updates_per_user: f64,
}

struct Tracer<'a> {
    exact: &'a KnnGraph,
    num_users: usize,
    possible_pairs: f64,
    points: Vec<ConvergencePoint>,
}

impl IterationObserver for Tracer<'_> {
    fn on_iteration(&mut self, trace: IterationTrace, state: &SharedKnn) {
        let snapshot = state.snapshot();
        self.points.push(ConvergencePoint {
            scan_rate: trace.cumulative_sim_evals as f64 / self.possible_pairs,
            recall: recall(self.exact, &snapshot),
            updates_per_user: trace.changes as f64 / self.num_users as f64,
        });
    }
}

/// Fig. 8a/8b on Arxiv: KIFF starts high and terminates at a small scan
/// rate; the greedy baselines start near zero and converge much later.
pub fn fig8(ctx: &mut Ctx) -> String {
    let d = PaperDataset::Arxiv;
    let k = paper_k(d);
    let ds = ctx.dataset(d);
    let exact = ctx.ground_truth(d, k);
    let sim = WeightedCosine::fit(&ds);
    let n = ds.num_users();
    let possible_pairs = n as f64 * (n as f64 - 1.0) / 2.0;

    let trace_of = |points: Vec<ConvergencePoint>| points;
    let mut series: Vec<(String, Vec<ConvergencePoint>)> = Vec::new();

    {
        let mut tracer = Tracer {
            exact: &exact,
            num_users: n,
            possible_pairs,
            points: Vec::new(),
        };
        let mut config = KiffConfig::new(k);
        config.threads = ctx.threads;
        Kiff::new(config).run_observed(&ds, &sim, &mut tracer);
        series.push(("KIFF".into(), trace_of(tracer.points)));
    }
    {
        let mut tracer = Tracer {
            exact: &exact,
            num_users: n,
            possible_pairs,
            points: Vec::new(),
        };
        let mut config = GreedyConfig::new(k);
        config.threads = ctx.threads;
        config.seed = ctx.seed;
        NnDescent::new(config).run_observed(&ds, &sim, &mut tracer);
        series.push(("NN-Descent".into(), trace_of(tracer.points)));
    }
    {
        let mut tracer = Tracer {
            exact: &exact,
            num_users: n,
            possible_pairs,
            points: Vec::new(),
        };
        let mut config = GreedyConfig::new(k);
        config.threads = ctx.threads;
        config.seed = ctx.seed;
        HyRec::new(config).run_observed(&ds, &sim, &mut tracer);
        series.push(("HyRec".into(), trace_of(tracer.points)));
    }

    let mut out = String::from("Fig. 8: convergence on Arxiv (per-iteration traces)\n");
    for (name, points) in &series {
        out.push_str(&format!("\n-- {name} --\n"));
        let mut table = Table::new(&["iter", "scan rate", "recall", "updates/user"]);
        for (i, p) in points.iter().enumerate() {
            table.push_row(&[
                format!("{}", i + 1),
                format!("{:.4}", p.scan_rate),
                format!("{:.3}", p.recall),
                format!("{:.2}", p.updates_per_user),
            ]);
        }
        out.push_str(&table.render());
    }
    out.push_str(
        "\nExpected shape (paper): KIFF's first iteration already reaches a high \
         recall and it terminates at a scan rate several times smaller than \
         NN-Descent's and HyRec's; the baselines start from ~0.08 recall and \
         need an order of magnitude more similarity evaluations.\n",
    );
    ctx.finish("fig8", "Convergence traces on Arxiv (Fig. 8)", out, &series)
}
