# Mirrors .github/workflows/ci.yml so contributors can reproduce gate
# failures offline: `make ci` runs exactly what a PR must pass.

CARGO ?= cargo
BENCH_OUT ?= bench-results
RECALL_FLOOR ?= 0.90

.PHONY: ci fmt clippy build test examples doc bench-smoke bench-counting bench-baselines bench-rebalance bench-telemetry bench-serve bench-reads bench-faults bench-failover chaos clean-bench

ci: fmt clippy build test examples doc bench-smoke

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

examples:
	$(CARGO) build --examples

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps

# The CI bench-regression gate: streaming + hot-loop experiments on a
# small synthetic dataset, failing when recall-vs-rebuild drops below
# $(RECALL_FLOOR). Reports land in $(BENCH_OUT)/.
bench-smoke:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		online sharded counting baselines rebalance telemetry serve reads faults failover \
		--scale 0.1 \
		--threads 4 --seed 42 --recall-floor $(RECALL_FLOOR) --out $(BENCH_OUT)

# Counting/scoring hot-loop throughput only (BENCH_counting.json):
# RCS construction per strategy vs the pre-rewrite pipeline, and
# prepared vs pairwise refinement scoring.
bench-counting:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		counting --scale 0.1 --threads 4 --seed 42 --out $(BENCH_OUT)

# Baseline-suite scoring throughput only (BENCH_baselines.json):
# prepared vs pairwise sims/sec for NN-Descent, HyRec, LSH and
# exact_knn, with graph-identity gates per algorithm and metric.
bench-baselines:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		baselines --scale 0.1 --threads 4 --seed 42 --out $(BENCH_OUT)

# Shard rebalancing under skew only (BENCH_rebalance.json): skewed-stream
# throughput and cross-shard message count per partitioner, with the
# community-beats-hash and size-ratio <= 2.0 gates.
bench-rebalance:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		rebalance --scale 0.1 --threads 4 --seed 42 \
		--recall-floor $(RECALL_FLOOR) --out $(BENCH_OUT)

# Telemetry overhead only (BENCH_telemetry.json): instrumented vs
# disabled-registry replay throughput (gated within 3%), plus the
# per-shard repair p99 and sims/update readouts from the registry.
bench-telemetry:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		telemetry --scale 0.1 --threads 4 --seed 42 --out $(BENCH_OUT)

# Serving layer only (BENCH_serve.json): TCP query throughput under
# concurrent update load against a durable daemon, and crash recovery
# (snapshot + WAL tail) timed against a full rebuild (gated >= 5x).
bench-serve:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		serve --scale 0.1 --threads 4 --seed 42 --out $(BENCH_OUT)

# Lock-free read path only (BENCH_reads.json): query p99 and
# throughput with 8 readers under a streaming writer vs write-idle,
# gated on the contended/idle ratios and on serve.read_wait_ns p99
# (reads must never wait on the writer's mutex).
bench-reads:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		reads --scale 0.1 --threads 4 --seed 42 --out $(BENCH_OUT)

# Fault tolerance only (BENCH_faults.json): the self-healing client
# under a ~1% injected fault rate (success rate >= 0.999 and bounded
# p99, both gated), plus degraded-mode recovery time and the
# exactly-once bit-exactness check.
bench-faults:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		faults --scale 0.1 --threads 4 --seed 42 --out $(BENCH_OUT)

# Replication only (BENCH_failover.json): primary/replica WAL shipping
# (replica read p99 <= 2x primary, steady-state lag <= 1 batch, both
# gated), a forced failover with client-observed unavailability <= 2s,
# and the exactly-once bit-exactness check across the kill.
bench-failover:
	$(CARGO) run --release -p kiff-bench --bin experiments -- \
		failover --scale 0.1 --threads 4 --seed 42 --out $(BENCH_OUT)

# The chaos suite: proptest fault schedules and replication failovers
# against live daemons, with failpoints at elevated probability.
chaos:
	$(CARGO) test --test serve_faults --test serve_replica --test serve_reads

clean-bench:
	rm -rf $(BENCH_OUT)
