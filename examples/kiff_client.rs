//! Talking to a `kiff serve` daemon over TCP.
//!
//! Spawns an in-process daemon on an ephemeral port — the same
//! [`kiff::serve::Server`] the `kiff serve` subcommand runs — with WAL +
//! snapshot persistence in a scratch directory, then walks the typed
//! [`kiff::serve::Client`] through the whole wire surface: neighbours,
//! recommendations, predictions, durable updates, a forced snapshot,
//! stats, and telemetry. A chaos interlude arms a `net.write` failpoint
//! so the daemon's ack dies mid-flight, and a [`SelfHealingClient`]
//! retries the batch across a fresh connection without double-applying
//! it. Finally it kills the daemon, recovers a second one from the same
//! directory, and shows the streamed ratings survived.
//!
//! Against a real daemon (`kiff serve --input ... --data-dir ...`), skip
//! the spawning and just `Client::connect("host:port")`.
//!
//! Run with: `cargo run --release --example kiff_client`

use kiff::core::fault::{self, points, Trigger};
use kiff::dataset::generators::movielens::movielens_like;
use kiff::online::{OnlineConfig, Update};
use kiff::prelude::*;
use kiff::serve::{
    recover, Client, EngineHost, RetryPolicy, SelfHealingClient, Server, StoreConfig,
};
use kiff::telemetry::Registry;

fn spawn_daemon(
    dir: &std::path::Path,
    base: &Dataset,
) -> (std::thread::JoinHandle<Result<(), KiffError>>, String) {
    let registry = Registry::new();
    let config = OnlineConfig::new(10).with_telemetry(registry.clone());
    let rec = recover(&StoreConfig::new(dir), base, None, config, None)
        .expect("data directory must recover");
    println!(
        "daemon: snapshot {:?}, {} WAL update(s) replayed",
        rec.snapshot_seq, rec.replayed
    );
    let host = EngineHost::new(rec.engine, Some(rec.store), registry);
    let server = Server::bind("127.0.0.1:0", host).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (std::thread::spawn(move || server.run()), addr)
}

fn main() {
    let base = movielens_like(0.05, 42);
    println!(
        "dataset : {} users, {} items, {} ratings",
        base.num_users(),
        base.num_items(),
        base.num_ratings()
    );
    let dir = std::env::temp_dir().join(format!("kiff-client-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First daemon: fresh directory, engine built from the dataset.
    let (daemon, addr) = spawn_daemon(&dir, &base);
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("ping");
    println!("connected to {addr}\n");

    // Queries: the same answers the in-process engines give.
    let neighbors = client.neighbors(0).expect("neighbors");
    println!(
        "user 0's top neighbours: {:?}",
        &neighbors[..neighbors.len().min(3)]
    );
    let recs = client.recommend(0, 3).expect("recommend");
    println!("user 0's recommendations: {recs:?}");
    if let Some((item, _)) = recs.first() {
        let p = client.predict(0, *item).expect("predict");
        println!("user 0's predicted rating of item {item}: {p:?}");
    }

    // A durable update: WAL-appended and fsynced before it is applied.
    let applied = client
        .update(&[Update::AddRating {
            user: 0,
            item: 1,
            rating: 5.0,
        }])
        .expect("update");
    let seq = client.snapshot().expect("snapshot");
    println!("\napplied {applied} update(s), forced a snapshot at seq {seq}");

    let stats = client.stats().expect("stats");
    println!(
        "stats   : {}",
        serde_json::to_string(&stats).expect("stats render")
    );
    let metrics = client.metrics().expect("metrics");
    let request_count = metrics
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .cloned();
    println!("requests served so far (from telemetry): {request_count:?}");

    // Chaos interlude: kill the ack of the next write on the wire and
    // let the self-healing client ride it out. The batch carries a
    // client-assigned id, so when the ack dies after the daemon already
    // applied it, the retry dedupes against the WAL high-water mark
    // instead of double-applying.
    let mut healing =
        SelfHealingClient::connect(&addr, RetryPolicy::default()).expect("self-healing connect");
    fault::arm_scoped(points::NET_WRITE, Trigger::Nth(1), &addr);
    let ack = healing
        .update(&[Update::AddRating {
            user: 1,
            item: 2,
            rating: 4.0,
        }])
        .expect("update survives the torn connection");
    println!(
        "\nchaos   : ack killed mid-flight; {} retr{}, {} reconnect(s), \
         batch {} (applied {})",
        healing.retries(),
        if healing.retries() == 1 { "y" } else { "ies" },
        healing.reconnects(),
        if ack.deduped {
            "deduped — first attempt had landed"
        } else {
            "applied on the retry"
        },
        ack.applied
    );
    assert!(
        healing.reconnects() >= 1,
        "the torn connection forced a reconnect"
    );
    let health = healing.health().expect("health");
    println!(
        "health  : {} at seq {:?}, batch high-water mark {}",
        health.status, health.seq, health.batch_hwm
    );
    fault::disarm(points::NET_WRITE);

    // Stop the daemon, then recover a second one from the same
    // directory: the update streamed above is still there.
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
    println!("\ndaemon stopped; restarting from {}", dir.display());
    let (daemon, addr) = spawn_daemon(&dir, &base);
    let mut client = Client::connect(&addr).expect("reconnect");
    let stats = client.stats().expect("stats");
    println!(
        "recovered daemon resumes at seq {:?}",
        stats.get("seq").cloned()
    );
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}
