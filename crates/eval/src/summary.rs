//! Small statistical helpers used by the experiment reports.

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of positive values (0 for empty input).
///
/// Speed-up factors are ratios; Table III's "average speed-up" aggregates
/// them — the geometric mean is the defensible aggregate, though the
/// arithmetic mean is also reported for direct comparison with the paper.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The `p`-th percentile (0–100) by nearest-rank on a copy of the data.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn geometric_mean_basic() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 75.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
