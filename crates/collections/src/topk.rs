//! Bounded top-k selection over a stream of scored entries.
//!
//! KIFF, NN-Descent and HyRec all maintain, per user, the `k` best-scored
//! neighbours seen so far. [`BoundedTopK`] keeps the *smallest* retained
//! score at the root of a binary min-heap so a new candidate can be accepted
//! or rejected in `O(1)` and inserted in `O(log k)`.
//!
//! Entries are `(score, id)` pairs ordered primarily by score and secondarily
//! by id (descending id loses ties), which gives the structure a total order
//! and makes results deterministic.

/// A fixed-capacity collection retaining the `k` largest `(score, id)` pairs.
///
/// Scores are `f64` and must not be NaN (checked in debug builds). Ties on
/// the score are broken towards the smaller id, matching the deterministic
/// brute-force reference used in tests.
#[derive(Debug, Clone)]
pub struct BoundedTopK {
    /// Min-heap on (score, Reverse(id)): the *worst* retained entry is at
    /// index 0.
    heap: Vec<(f64, u32)>,
    capacity: usize,
}

/// `a` is strictly better than `b` when its score is higher, or equal with a
/// smaller id.
#[inline]
fn better(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl BoundedTopK {
    /// Creates an empty selector retaining at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "top-k capacity must be positive");
        Self {
            heap: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of retained entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently retained.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The worst retained entry, if any. When the selector is full, an
    /// incoming entry must beat this to be admitted.
    #[inline]
    pub fn worst(&self) -> Option<(f64, u32)> {
        self.heap.first().copied()
    }

    /// Offers `(score, id)`; returns `true` iff the entry was admitted
    /// (displacing the previous worst when full).
    ///
    /// Duplicate ids are *not* detected here — callers that may offer the
    /// same id twice must deduplicate (see `kiff-graph`'s `KnnHeap`).
    pub fn offer(&mut self, score: f64, id: u32) -> bool {
        debug_assert!(!score.is_nan(), "NaN scores are not orderable");
        if self.heap.len() < self.capacity {
            self.heap.push((score, id));
            self.sift_up(self.heap.len() - 1);
            true
        } else if better((score, id), self.heap[0]) {
            self.heap[0] = (score, id);
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// Returns the retained entries sorted best-first.
    pub fn into_sorted_vec(mut self) -> Vec<(f64, u32)> {
        self.heap.sort_unstable_by(|a, b| {
            if better(*a, *b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        self.heap
    }

    /// Iterates over retained entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u32)> + '_ {
        self.heap.iter().copied()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if better(self.heap[parent], self.heap[i]) {
                self.heap.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && better(self.heap[smallest], self.heap[l]) {
                smallest = l;
            }
            if r < n && better(self.heap[smallest], self.heap[r]) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

/// Reference top-k by full sort; used by tests and as a readable spec.
pub fn top_k_by_sort(entries: &[(f64, u32)], k: usize) -> Vec<(f64, u32)> {
    let mut sorted = entries.to_vec();
    sorted.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("NaN score")
            .then_with(|| a.1.cmp(&b.1))
    });
    sorted.truncate(k);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_best_k() {
        let mut topk = BoundedTopK::new(3);
        for (s, id) in [(0.1, 1), (0.9, 2), (0.5, 3), (0.7, 4), (0.2, 5)] {
            topk.offer(s, id);
        }
        let got = topk.into_sorted_vec();
        assert_eq!(got, vec![(0.9, 2), (0.7, 4), (0.5, 3)]);
    }

    #[test]
    fn rejects_worse_than_worst_when_full() {
        let mut topk = BoundedTopK::new(2);
        assert!(topk.offer(0.5, 1));
        assert!(topk.offer(0.6, 2));
        assert!(!topk.offer(0.4, 3));
        assert_eq!(topk.len(), 2);
        assert_eq!(topk.worst(), Some((0.5, 1)));
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        let mut topk = BoundedTopK::new(1);
        topk.offer(0.5, 10);
        // Same score, smaller id: admitted.
        assert!(topk.offer(0.5, 3));
        // Same score, larger id: rejected.
        assert!(!topk.offer(0.5, 7));
        assert_eq!(topk.into_sorted_vec(), vec![(0.5, 3)]);
    }

    #[test]
    fn underfull_returns_all_sorted() {
        let mut topk = BoundedTopK::new(10);
        topk.offer(0.3, 1);
        topk.offer(0.1, 2);
        topk.offer(0.2, 0);
        assert_eq!(topk.into_sorted_vec(), vec![(0.3, 1), (0.2, 0), (0.1, 2)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = BoundedTopK::new(0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The heap-based selector agrees with the sort-based spec for
            /// any input stream and capacity.
            #[test]
            fn matches_sort_reference(
                entries in proptest::collection::vec((0u32..1000, 0u32..200), 0..300),
                k in 1usize..40,
            ) {
                // Map scores to a small grid so ties actually occur.
                let entries: Vec<(f64, u32)> = entries
                    .into_iter()
                    .map(|(s, id)| (f64::from(s) / 64.0, id))
                    .collect();
                let mut topk = BoundedTopK::new(k);
                for &(s, id) in &entries {
                    topk.offer(s, id);
                }
                prop_assert_eq!(topk.into_sorted_vec(), top_k_by_sort(&entries, k));
            }

            /// `offer` returns true exactly when the retained set changes.
            #[test]
            fn offer_reports_admission(
                entries in proptest::collection::vec((0u32..100, 0u32..50), 1..100),
            ) {
                let mut topk = BoundedTopK::new(5);
                for (s, id) in entries {
                    let before: Vec<_> = {
                        let mut v: Vec<_> = topk.iter().collect();
                        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        v
                    };
                    let admitted = topk.offer(f64::from(s), id);
                    let after: Vec<_> = {
                        let mut v: Vec<_> = topk.iter().collect();
                        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        v
                    };
                    prop_assert_eq!(admitted, before != after);
                }
            }
        }
    }
}
