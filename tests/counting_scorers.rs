//! Cross-crate properties of the counting-phase strategies and the
//! prepared-scorer layer (the two hot paths rewritten for the flat-CSR /
//! prepared-scorer PR):
//!
//! * every [`CountStrategy`] — and the retained pre-rewrite reference
//!   pipeline — produces *identical* [`RankedCandidates`] (ids and
//!   counts) across pivot / rating-threshold / max-RCS combinations;
//! * every metric's prepared [`Scorer`] reproduces its pairwise
//!   [`Similarity::sim`] within [`SIM_EPSILON`], on both the dense and
//!   the low-degree fallback paths;
//! * every *algorithm* of the comparison suite — NN-Descent, HyRec, LSH,
//!   the random initialisation and both exact constructions — builds the
//!   identical graph under [`ScoringMode::Prepared`] and
//!   [`ScoringMode::Pairwise`], across metric families.

use proptest::prelude::*;

use kiff::prelude::*;
use kiff::{Algorithm, KnnGraphBuilder, Metric};
use kiff_baselines::random_graph_with;
use kiff_core::{build_rcs, build_rcs_reference, CountStrategy, CountingConfig};
use kiff_graph::{exact_knn_brute_with, exact_knn_with};
use kiff_similarity::{ScorerWorkspace, ScoringMode, SIM_EPSILON};

/// A small random dataset strategy: up to 40 users, 30 items, star
/// ratings so the rating threshold has something to prune.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        2usize..40,
        2usize..30,
        proptest::collection::vec((0u32..40, 0u32..30, 1u32..6), 1..300),
    )
        .prop_map(|(nu, ni, triples)| {
            let mut b = DatasetBuilder::new("prop", nu, ni);
            for (u, i, r) in triples {
                b.add_rating(u % nu as u32, i % ni as u32, r as f32);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense, sort-based and hash-based counting — and the reference
    /// per-user-Vec pipeline — agree entry for entry on ids *and* counts
    /// under every pivot/threshold/cap combination.
    #[test]
    fn all_count_strategies_agree(
        ds in arb_dataset(),
        pivot in any::<bool>(),
        threshold in 0u32..5,   // 0 = no rating threshold
        cap in 0usize..12,      // 0 = uncapped RCSs
    ) {
        let config = |strategy| CountingConfig {
            pivot,
            keep_counts: true,
            threads: Some(2),
            strategy,
            rating_threshold: (threshold > 0).then_some(threshold as f32),
            max_rcs: (cap > 0).then_some(cap),
        };
        let reference = build_rcs_reference(&ds, &config(CountStrategy::SortBased));
        for strategy in [
            CountStrategy::Dense,
            CountStrategy::SortBased,
            CountStrategy::HashBased,
            CountStrategy::Auto,
        ] {
            let rcs = build_rcs(&ds, &config(strategy));
            prop_assert_eq!(rcs.num_users(), reference.num_users());
            for u in 0..ds.num_users() as u32 {
                prop_assert_eq!(
                    rcs.rcs(u), reference.rcs(u),
                    "{:?} ids diverge for user {}", strategy, u
                );
                prop_assert_eq!(
                    rcs.counts(u), reference.counts(u),
                    "{:?} counts diverge for user {}", strategy, u
                );
            }
        }
    }

    /// Prepared scorers equal pairwise `sim.sim` within `SIM_EPSILON` for
    /// every metric, over every user pair of a random dataset (covering
    /// both the dense-stamp and the small-profile fallback paths).
    #[test]
    fn prepared_scorers_match_pairwise(ds in arb_dataset()) {
        let fitted = WeightedCosine::fit(&ds);
        let unfitted = WeightedCosine::new();
        let aa = AdamicAdar::fit(&ds);
        let metrics: Vec<&dyn Similarity> = vec![
            &fitted,
            &unfitted,
            &BinaryCosine,
            &Jaccard,
            &WeightedJaccard,
            &Dice,
            &CommonItems,
            &aa,
        ];
        let n = ds.num_users() as u32;
        let mut ws = ScorerWorkspace::new();
        for m in metrics {
            for u in 0..n {
                let mut scorer = m.scorer(&ds, u, &mut ws);
                for v in 0..n {
                    let prepared = scorer.score(v);
                    let pairwise = m.sim(&ds, u, v);
                    prop_assert!(
                        (prepared - pairwise).abs() <= SIM_EPSILON,
                        "{}: ({}, {}) prepared {} vs pairwise {}",
                        m.name(), u, v, prepared, pairwise
                    );
                }
            }
        }
    }

    /// Every baseline algorithm builds the identical graph under
    /// prepared and pairwise scoring, for every metric family. Runs
    /// multi-threaded: the greedy baselines count changes and retag NN
    /// flags by post-join membership diffs, so a parallel run is the same
    /// deterministic sweep as a serial one and the comparison stays bit
    /// for bit (the ROADMAP's tie-break follow-up).
    #[test]
    fn baselines_invariant_under_scoring(ds in arb_dataset(), k in 1usize..6, seed in 0u64..1000) {
        for metric in [Metric::Cosine, Metric::Jaccard, Metric::AdamicAdar] {
            for algorithm in [
                Algorithm::NnDescent,
                Algorithm::HyRec,
                Algorithm::Lsh,
                Algorithm::Exact,
            ] {
                let build = |scoring| KnnGraphBuilder::new(k)
                    .algorithm(algorithm)
                    .metric(metric)
                    .scoring(scoring)
                    .seed(seed)
                    .threads(2)
                    .build(&ds);
                let prepared = build(ScoringMode::Prepared);
                let pairwise = build(ScoringMode::Pairwise);
                for u in 0..ds.num_users() as u32 {
                    prop_assert_eq!(
                        prepared.neighbors(u), pairwise.neighbors(u),
                        "{:?}/{:?} user {}", algorithm, metric, u
                    );
                }
            }
        }
        // The pieces the builder facade does not reach: the standalone
        // random graph and the brute-force exact construction.
        let sim = WeightedCosine::fit(&ds);
        let rg_p = random_graph_with(&ds, &sim, k, seed, ScoringMode::Prepared);
        let rg_w = random_graph_with(&ds, &sim, k, seed, ScoringMode::Pairwise);
        prop_assert_eq!(rg_p, rg_w, "random init diverged");
        let br_p = exact_knn_brute_with(&ds, &sim, k, Some(2), ScoringMode::Prepared);
        let br_w = exact_knn_brute_with(&ds, &sim, k, Some(2), ScoringMode::Pairwise);
        prop_assert_eq!(&br_p, &br_w, "brute exact diverged");
        // And the brute path must agree with the shared-kernel inverted
        // index (the Eq. 5-6 equivalence the kernel refactor preserves).
        let inv = exact_knn_with(&ds, &sim, k, Some(2), ScoringMode::Prepared);
        prop_assert_eq!(&br_p, &inv, "brute vs inverted diverged");
    }

    /// End to end: KIFF graphs are invariant under counting strategy and
    /// scoring mode (exact mode, so the comparison is deterministic).
    #[test]
    fn kiff_invariant_under_strategy_and_scoring(ds in arb_dataset(), k in 1usize..6) {
        use kiff_core::{KiffConfig, ScoringMode};
        let sim = WeightedCosine::fit(&ds);
        let reference = Kiff::new(KiffConfig::exact(k).with_threads(1)).run(&ds, &sim).graph;
        for strategy in [CountStrategy::Dense, CountStrategy::HashBased] {
            for scoring in [ScoringMode::Prepared, ScoringMode::Pairwise] {
                let config = KiffConfig::exact(k)
                    .with_threads(1)
                    .with_count_strategy(strategy)
                    .with_scoring(scoring);
                let graph = Kiff::new(config).run(&ds, &sim).graph;
                for u in 0..ds.num_users() as u32 {
                    prop_assert_eq!(
                        graph.neighbors(u), reference.neighbors(u),
                        "{:?}/{:?} user {}", strategy, scoring, u
                    );
                }
            }
        }
    }
}
