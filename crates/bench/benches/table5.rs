//! Bench for Table V: Ranked Candidate Set construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_core::{build_rcs, CountingConfig};

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(5);
    let _ = ds.item_profiles();
    let mut group = c.benchmark_group("table5");
    group.sample_size(20);
    group.bench_function("build_rcs_stripped", |b| {
        b.iter(|| black_box(build_rcs(&ds, &CountingConfig::default())))
    });
    group.bench_function("build_rcs_counted", |b| {
        b.iter(|| {
            black_box(build_rcs(
                &ds,
                &CountingConfig {
                    keep_counts: true,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
