//! Beyond-paper extensions: the §VI related-work baselines measured under
//! the paper's protocol (`ext1`), the §VII rating-threshold heuristic
//! (`ext2`), thread scaling (`ext3`), graph-structure comparison (`ext4`)
//! and the recall→application-utility chain (`ext5`). These have no
//! table/figure number in the paper — EXPERIMENTS.md records them as
//! extensions.

use std::time::Instant;

use serde::Serialize;

use kiff_core::{Kiff, KiffConfig};
use kiff_dataset::{paper_k, PaperDataset};
use kiff_eval::table::{fmt_percent, fmt_secs, Table};
use kiff_graph::recall;
use kiff_similarity::WeightedCosine;

use super::Ctx;
use crate::runner::{run_hyrec, run_kiff, run_l2knng, run_lsh, run_nndescent};

/// ext1 — all five algorithms (NN-Descent, HyRec, LSH, L2Knng, KIFF) under
/// the Table II protocol on the two small datasets. §VI argues LSH suits
/// dense data and that L2Knng's pruning is inherently sequential; this
/// extension quantifies both claims on sparse inputs.
pub fn ext1(ctx: &mut Ctx) -> String {
    let mut table = Table::new(&["Approach", "recall", "wall-time", "scan rate"]);
    let mut records = Vec::new();
    for d in [PaperDataset::Wikipedia, PaperDataset::Arxiv] {
        let k = paper_k(d);
        let ds = ctx.dataset(d);
        let exact = ctx.ground_truth(d, k);
        eprintln!("  ext1: {} (|U|={}, k={k})", d.name(), ds.num_users());
        let opts = ctx.opts(k);
        let outcomes = vec![
            run_nndescent(&ds, opts).with_recall(&exact),
            run_hyrec(&ds, opts).with_recall(&exact),
            run_lsh(&ds, opts).with_recall(&exact),
            run_l2knng(&ds, opts).with_recall(&exact),
            run_kiff(&ds, opts).with_recall(&exact),
        ];
        table.push_row(&[format!("[{} | k={k}]", d.name()), String::new()]);
        for o in &outcomes {
            table.push_row(&[
                format!("  {}", o.record.algorithm),
                format!("{:.2}", o.record.recall),
                fmt_secs(o.record.wall_time_s),
                fmt_percent(o.record.scan_rate),
            ]);
            records.push(o.record.clone());
        }
    }
    let text = format!(
        "ext1: extended baseline comparison (adds LSH and L2Knng to Table II's protocol)\n\
         L2Knng is exact under cosine (recall 1.00 by construction) but pays a\n\
         sequential verification pass; LSH trades recall for a small scan rate.\n\n{}",
        table.render()
    );
    ctx.finish(
        "ext1",
        "Extended baselines: +LSH, +L2Knng (beyond paper)",
        text,
        &records,
    )
}

#[derive(Debug, Serialize)]
struct ThresholdRow {
    threshold: Option<f32>,
    avg_rcs: f64,
    wall_time_s: f64,
    scan_rate: f64,
    recall: f64,
}

/// ext2 — the §VII heuristic: inserting only candidates that share
/// *positively rated* items ("a naive threshold on multiple-ratings …
/// reduces the RCSs' size and improves the performance of KIFF"). Run on
/// the count-valued Gowalla-like dataset with increasing thresholds.
pub fn ext2(ctx: &mut Ctx) -> String {
    let d = PaperDataset::Gowalla;
    let k = paper_k(d);
    let ds = ctx.dataset(d);
    let exact = ctx.ground_truth(d, k);
    let sim = WeightedCosine::fit(&ds);

    let mut table = Table::new(&["threshold", "avg |RCS|", "wall-time", "scan rate", "recall"]);
    let mut rows = Vec::new();
    for threshold in [None, Some(2.0f32), Some(3.0), Some(5.0)] {
        let mut config = KiffConfig::new(k);
        config.threads = ctx.threads;
        config.rating_threshold = threshold;
        let kiff = Kiff::new(config);
        let rcs = kiff.counting_phase(&ds);
        let avg_rcs = rcs.avg_len();
        let result = kiff.run(&ds, &sim);
        let r = recall(&exact, &result.graph);
        table.push_row(&[
            threshold.map_or("off".to_string(), |t| format!("≥ {t}")),
            format!("{avg_rcs:.1}"),
            fmt_secs(result.stats.total_time.as_secs_f64()),
            fmt_percent(result.stats.scan_rate),
            format!("{r:.3}"),
        ]);
        rows.push(ThresholdRow {
            threshold,
            avg_rcs,
            wall_time_s: result.stats.total_time.as_secs_f64(),
            scan_rate: result.stats.scan_rate,
            recall: r,
        });
    }
    let text = format!(
        "ext2: §VII rating-threshold heuristic on {} (k={k}, count-valued ratings)\n\
         Only items rated at or above the threshold contribute RCS candidates:\n\
         RCSs shrink and the scan rate falls, at a measured recall cost.\n\n{}",
        d.name(),
        table.render()
    );
    ctx.finish(
        "ext2",
        "§VII rating-threshold heuristic (beyond paper)",
        text,
        &rows,
    )
}

#[derive(Debug, Serialize)]
struct StructureRow {
    algorithm: String,
    recall: f64,
    symmetry: f64,
    max_in_degree: usize,
    components: usize,
    largest_component: usize,
    mean_similarity: f64,
}

/// ext4 — structural comparison of the graphs each algorithm produces on
/// the Wikipedia-like dataset. Greedy convergence is governed by these
/// properties (§IV-B joins over bidirectional neighbourhoods; §II-A
/// transitive exploration cannot cross components), yet the paper never
/// reports them. Exact graphs anchor the comparison; approximate graphs
/// show *how* they deviate, not just by how much recall.
pub fn ext4(ctx: &mut Ctx) -> String {
    use kiff_graph::summarize;

    let d = PaperDataset::Wikipedia;
    let k = paper_k(d);
    let ds = ctx.dataset(d);
    let exact = ctx.ground_truth(d, k);
    let opts = ctx.opts(k);
    eprintln!("  ext4: {} (|U|={}, k={k})", d.name(), ds.num_users());

    let outcomes = vec![
        run_nndescent(&ds, opts).with_recall(&exact),
        run_hyrec(&ds, opts).with_recall(&exact),
        run_lsh(&ds, opts).with_recall(&exact),
        run_l2knng(&ds, opts).with_recall(&exact),
        run_kiff(&ds, opts).with_recall(&exact),
    ];

    let mut table = Table::new(&[
        "Approach", "recall", "symmetry", "max in°", "comps", "largest", "mean sim",
    ]);
    let mut rows = Vec::new();
    let mut push = |name: &str, recall: f64, graph: &kiff_graph::KnnGraph| {
        let s = summarize(graph);
        table.push_row(&[
            format!("  {name}"),
            format!("{recall:.2}"),
            fmt_percent(s.symmetry),
            s.max_in_degree.to_string(),
            s.components.to_string(),
            s.largest_component.to_string(),
            format!("{:.3}", graph.mean_similarity()),
        ]);
        rows.push(StructureRow {
            algorithm: name.to_string(),
            recall,
            symmetry: s.symmetry,
            max_in_degree: s.max_in_degree,
            components: s.components,
            largest_component: s.largest_component,
            mean_similarity: graph.mean_similarity(),
        });
    };
    push("exact", 1.0, &exact);
    for o in &outcomes {
        push(&o.record.algorithm, o.record.recall, &o.graph);
    }

    let text = format!(
        "ext4: structure of the constructed graphs on {} (k={k})\n\
         Symmetry = reciprocated edge fraction; comps = weakly connected\n\
         components. Low-recall graphs betray themselves structurally:\n\
         depressed mean similarity and symmetry relative to the exact graph.\n\n{}",
        d.name(),
        table.render()
    );
    ctx.finish(
        "ext4",
        "Structural comparison of constructed graphs (beyond paper)",
        text,
        &rows,
    )
}

#[derive(Debug, Serialize)]
struct ThreadRow {
    threads: usize,
    wall_time_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct UtilityRow {
    algorithm: String,
    graph_recall: f64,
    hit_rate_at_10: f64,
    mrr_at_10: f64,
    wall_time_s: f64,
}

/// ext5 — from graph recall to application utility. The paper's headline
/// includes "improving the quality of the KNN approximation by 18%", with
/// recommendation as the lead motivation (§I) — but never measures what
/// recall buys downstream. Protocol: hold out one rating per user on a
/// MovieLens-like dataset, build the KNN graph on the remainder with each
/// algorithm, recommend top-10, and score hit rate / MRR of the hidden
/// items.
pub fn ext5(ctx: &mut Ctx) -> String {
    use kiff_apps::{hit_rate, holdout_random, mean_reciprocal_rank};
    use kiff_dataset::generators::{generate_planted, PlantedConfig, RatingModel};
    use kiff_graph::exact_knn;

    let k = 20;
    // A movielens-like *scale* but with planted taste communities: a
    // popularity-only synthetic (our ML stand-in) recommends identically
    // under any graph, so it cannot separate the algorithms. Planted
    // 120-item taste blocks give the neighbourhoods real signal.
    let (full, _) = generate_planted(&PlantedConfig {
        name: "planted-taste".to_string(),
        num_users: 3_000,
        num_items: 1_200,
        communities: 10,
        ratings_per_user: 20,
        affinity: 0.8,
        rating_model: RatingModel::Stars { half_steps: true },
        seed: ctx.seed,
    });
    let split = holdout_random(&full, 5, ctx.seed);
    let train = &split.train;
    eprintln!(
        "  ext5: planted-taste (|U|={}, held out {}, k={k})",
        train.num_users(),
        split.held_out.len()
    );
    let sim = WeightedCosine::fit(train);
    let exact = exact_knn(train, &sim, k, ctx.threads);
    let opts = crate::runner::RunOptions {
        k,
        threads: ctx.threads,
        seed: ctx.seed,
    };

    let mut outcomes = vec![
        run_lsh(train, opts).with_recall(&exact),
        run_hyrec(train, opts).with_recall(&exact),
        run_nndescent(train, opts).with_recall(&exact),
        run_kiff(train, opts).with_recall(&exact),
    ];
    // The exact graph anchors the utility ceiling.
    outcomes.push(crate::runner::RunOutcome {
        record: kiff_eval::AlgoRunRecord {
            algorithm: "exact".into(),
            dataset: train.name().into(),
            k,
            recall: 1.0,
            wall_time_s: 0.0,
            scan_rate: 1.0,
            iterations: 1,
            preprocessing_s: 0.0,
            candidate_selection_s: 0.0,
            similarity_s: 0.0,
        },
        per_iteration: Vec::new(),
        graph: exact.clone(),
    });

    let mut table = Table::new(&["Approach", "graph recall", "hit rate@10", "MRR@10"]);
    let mut rows = Vec::new();
    for o in &outcomes {
        let hr = hit_rate(train, &o.graph, &split.held_out, 10);
        let mrr = mean_reciprocal_rank(train, &o.graph, &split.held_out, 10);
        table.push_row(&[
            format!("  {}", o.record.algorithm),
            format!("{:.2}", o.record.recall),
            format!("{hr:.3}"),
            format!("{mrr:.3}"),
        ]);
        rows.push(UtilityRow {
            algorithm: o.record.algorithm.clone(),
            graph_recall: o.record.recall,
            hit_rate_at_10: hr,
            mrr_at_10: mrr,
            wall_time_s: o.record.wall_time_s,
        });
    }
    let text = format!(
        "ext5: graph recall vs recommendation utility (planted-taste data, k={k},\n\
         leave-one-out, top-10). Utility saturates once the graph is good\n\
         enough — the marginal value of exactness is measurable here.\n\n{}",
        table.render()
    );
    ctx.finish(
        "ext5",
        "Graph recall vs recommendation utility (beyond paper)",
        text,
        &rows,
    )
}

/// ext3 — thread scaling of KIFF on the Arxiv-like dataset ("all
/// implementations are multi-threaded to parallelize the treatment of
/// individual users", §IV). Reports wall time and speed-up vs one thread.
pub fn ext3(ctx: &mut Ctx) -> String {
    let d = PaperDataset::Arxiv;
    let k = paper_k(d);
    let ds = ctx.dataset(d);
    let sim = WeightedCosine::fit(&ds);
    let available = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut table = Table::new(&["threads", "wall-time", "speed-up"]);
    let mut rows = Vec::new();
    let mut base = 0.0f64;
    let mut t = 1usize;
    while t <= available {
        let config = KiffConfig::new(k).with_threads(t);
        let start = Instant::now();
        let _ = Kiff::new(config).run(&ds, &sim);
        let secs = start.elapsed().as_secs_f64();
        if t == 1 {
            base = secs;
        }
        let speedup = base / secs;
        table.push_row(&[t.to_string(), fmt_secs(secs), format!("x{speedup:.2}")]);
        rows.push(ThreadRow {
            threads: t,
            wall_time_s: secs,
            speedup,
        });
        t *= 2;
    }
    let text = format!(
        "ext3: KIFF thread scaling on {} (k={k}, {available} hardware threads)\n\n{}",
        d.name(),
        table.render()
    );
    ctx.finish("ext3", "KIFF thread scaling (beyond paper)", text, &rows)
}
