//! [`KnnEngine`]: the unified façade over both live engines.
//!
//! PRs 1–5 grew two engines with the same surface — [`OnlineKnn`] and
//! [`ShardedOnlineKnn`] — and every consumer (the CLI `update` replay,
//! the bench harness, now the serving daemon) duplicated a two-armed
//! enum to dispatch between them. This trait is that surface, made
//! object-safe so a daemon can own a `Box<dyn KnnEngine + Send>` chosen
//! at startup.
//!
//! Two deliberate deviations from the inherent methods:
//!
//! - [`KnnEngine::neighbors`] returns `Result` instead of panicking on
//!   an out-of-range user: a daemon must answer a bad request with an
//!   error frame, not die. The inherent panicking methods remain for
//!   in-process callers that already hold the invariant.
//! - [`KnnEngine::apply_batch`] takes a `Vec` (not `impl IntoIterator`)
//!   because generic methods are not object-safe.

use std::sync::Arc;

use kiff_core::KiffError;
use kiff_dataset::{Dataset, DeltaDataset, UserId};
use kiff_graph::{KnnGraph, Neighbor};

use crate::engine::OnlineKnn;
use crate::sharded::ShardedOnlineKnn;
use crate::update::{Update, UpdateStats};

/// An immutable, batch-consistent snapshot of everything a query needs:
/// the KNN graph, the materialized dataset, `k`, and the lifetime work
/// counters at capture time.
///
/// A serving layer captures one of these after each `apply_batch` (both
/// `Arc`s come from the engine's internal caches, so capture is two
/// pointer clones in the steady state) and publishes it through an
/// epoch cell; readers then answer `neighbors`/`recommend`/`search`
/// from the view without ever touching the writer's engine lock. The
/// graph and dataset are captured together between mutations, so a view
/// can never pair a fresh graph with a stale dataset or vice versa.
#[derive(Debug, Clone)]
pub struct ReadView {
    /// The KNN graph snapshot at capture time.
    pub graph: Arc<KnnGraph>,
    /// The materialized dataset the graph was computed against.
    pub dataset: Arc<Dataset>,
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Lifetime work counters at capture time (what `stats` queries
    /// report without locking the engine).
    pub stats: UpdateStats,
}

impl ReadView {
    /// Current number of users in the view.
    pub fn num_users(&self) -> usize {
        self.graph.num_users()
    }

    /// `u`'s neighbours in the view, best first, or
    /// [`KiffError::UnknownUser`] when `u` is out of range.
    pub fn neighbors(&self, u: UserId) -> Result<Vec<Neighbor>, KiffError> {
        check_user(u, self.num_users())?;
        Ok(self.graph.neighbors(u).to_vec())
    }
}

/// A live KNN engine: queryable, updatable, snapshottable.
///
/// Implemented by [`OnlineKnn`] and [`ShardedOnlineKnn`]; consumers that
/// work with either take `&mut dyn KnnEngine` (or a generic bound) and
/// stop caring which one they were handed.
pub trait KnnEngine: Send {
    /// Neighbourhood size `k`.
    fn k(&self) -> usize;

    /// Current number of users.
    fn len(&self) -> usize;

    /// Whether the engine tracks no users yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `u`'s current neighbours, best first, or
    /// [`KiffError::UnknownUser`] when `u` is out of range.
    fn neighbors(&self, u: UserId) -> Result<Vec<Neighbor>, KiffError>;

    /// Snapshots the live graph (cached between mutations).
    fn graph(&self) -> Arc<KnnGraph>;

    /// Materializes the live dataset (cached between mutations).
    fn dataset(&self) -> Arc<Dataset>;

    /// Captures a batch-consistent [`ReadView`] of the engine: graph +
    /// dataset + `k` + lifetime stats, all observed between mutations.
    /// In the steady state this is two `Arc` clones and a `Copy`.
    fn read_view(&self) -> ReadView {
        ReadView {
            graph: self.graph(),
            dataset: self.dataset(),
            k: self.k(),
            stats: *self.stats(),
        }
    }

    /// The live dataset view.
    fn data(&self) -> &DeltaDataset;

    /// Applies one mutation and repairs the graph around it.
    fn apply(&mut self, update: Update) -> UpdateStats;

    /// Applies a batch of mutations with a single amortised repair pass.
    fn apply_batch(&mut self, updates: Vec<Update>) -> UpdateStats;

    /// Work accumulated over the engine's lifetime.
    fn stats(&self) -> &UpdateStats;

    /// The engine's shared-item counters, exported for snapshot
    /// persistence, or `None` when the engine cannot export them (a
    /// restore then falls back to recounting from the dataset, which
    /// yields the same values — counting is exact — just slower).
    fn counters_snapshot(&self) -> Option<Vec<Vec<(UserId, u32)>>> {
        None
    }
}

/// Bounds-checks a user id against the engine size.
fn check_user(u: UserId, num_users: usize) -> Result<(), KiffError> {
    if (u as usize) < num_users {
        Ok(())
    } else {
        Err(KiffError::UnknownUser { user: u, num_users })
    }
}

impl KnnEngine for OnlineKnn {
    fn k(&self) -> usize {
        OnlineKnn::k(self)
    }

    fn len(&self) -> usize {
        self.num_users()
    }

    fn neighbors(&self, u: UserId) -> Result<Vec<Neighbor>, KiffError> {
        check_user(u, self.num_users())?;
        Ok(OnlineKnn::neighbors(self, u))
    }

    fn graph(&self) -> Arc<KnnGraph> {
        OnlineKnn::graph(self)
    }

    fn dataset(&self) -> Arc<Dataset> {
        OnlineKnn::dataset(self)
    }

    fn data(&self) -> &DeltaDataset {
        OnlineKnn::data(self)
    }

    fn apply(&mut self, update: Update) -> UpdateStats {
        OnlineKnn::apply(self, update)
    }

    fn apply_batch(&mut self, updates: Vec<Update>) -> UpdateStats {
        OnlineKnn::apply_batch(self, updates)
    }

    fn stats(&self) -> &UpdateStats {
        self.lifetime_stats()
    }

    fn counters_snapshot(&self) -> Option<Vec<Vec<(UserId, u32)>>> {
        Some(OnlineKnn::counters_snapshot(self))
    }
}

impl KnnEngine for ShardedOnlineKnn {
    fn k(&self) -> usize {
        ShardedOnlineKnn::k(self)
    }

    fn len(&self) -> usize {
        self.num_users()
    }

    fn neighbors(&self, u: UserId) -> Result<Vec<Neighbor>, KiffError> {
        check_user(u, self.num_users())?;
        Ok(ShardedOnlineKnn::neighbors(self, u))
    }

    fn graph(&self) -> Arc<KnnGraph> {
        ShardedOnlineKnn::graph(self)
    }

    fn dataset(&self) -> Arc<Dataset> {
        ShardedOnlineKnn::dataset(self)
    }

    fn data(&self) -> &DeltaDataset {
        ShardedOnlineKnn::data(self)
    }

    fn apply(&mut self, update: Update) -> UpdateStats {
        ShardedOnlineKnn::apply(self, update)
    }

    fn apply_batch(&mut self, updates: Vec<Update>) -> UpdateStats {
        ShardedOnlineKnn::apply_batch(self, updates)
    }

    fn stats(&self) -> &UpdateStats {
        self.lifetime_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OnlineConfig;
    use crate::sharded::ShardConfig;
    use kiff_dataset::dataset::figure2_toy;

    fn engines() -> Vec<Box<dyn KnnEngine>> {
        let ds = figure2_toy();
        vec![
            Box::new(OnlineKnn::new(&ds, OnlineConfig::new(2))),
            Box::new(ShardedOnlineKnn::new(
                &ds,
                OnlineConfig::new(2),
                ShardConfig::new(2),
            )),
        ]
    }

    #[test]
    fn both_engines_serve_the_same_trait() {
        for mut engine in engines() {
            assert_eq!(engine.k(), 2);
            assert_eq!(engine.len(), 4);
            assert!(!engine.is_empty());
            let nbrs = engine.neighbors(0).expect("user 0 exists");
            assert_eq!(nbrs[0].id, 1, "Alice's nearest is Bob");
            let stats = engine.apply(Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            });
            assert_eq!(stats.updates, 1);
            assert_eq!(engine.stats().updates, 1);
            let stats = engine.apply_batch(vec![
                Update::AddUser,
                Update::AddRating {
                    user: 4,
                    item: 0,
                    rating: 2.0,
                },
            ]);
            assert_eq!(stats.updates, 2);
            assert_eq!(engine.len(), 5);
            assert_eq!(engine.graph().num_users(), 5);
            assert_eq!(engine.data().num_users(), 5);
        }
    }

    #[test]
    fn read_view_is_batch_consistent_and_cheap_to_recapture() {
        for mut engine in engines() {
            let view = engine.read_view();
            assert_eq!(view.num_users(), 4);
            assert_eq!(view.k, 2);
            assert_eq!(view.stats.updates, 0);
            assert_eq!(view.neighbors(0).unwrap()[0].id, 1);
            assert!(view.neighbors(99).is_err());
            // Steady state: recapture reuses the cached Arcs.
            let again = engine.read_view();
            assert!(Arc::ptr_eq(&view.graph, &again.graph));
            assert!(Arc::ptr_eq(&view.dataset, &again.dataset));
            // The old view survives a mutation untouched (snapshot
            // isolation); a fresh capture sees the new state.
            engine.apply(Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            });
            assert_eq!(view.num_users(), 4);
            assert_eq!(view.dataset.user_profile(2).rating(1), None);
            let fresh = engine.read_view();
            assert_eq!(fresh.stats.updates, 1);
            assert_eq!(fresh.dataset.user_profile(2).rating(1), Some(1.0));
            assert!(!Arc::ptr_eq(&view.dataset, &fresh.dataset));
        }
    }

    #[test]
    fn unknown_user_is_an_error_not_a_panic() {
        for engine in engines() {
            let err = engine.neighbors(99).unwrap_err();
            match err {
                kiff_core::KiffError::UnknownUser { user, num_users } => {
                    assert_eq!(user, 99);
                    assert_eq!(num_users, 4);
                }
                other => panic!("expected UnknownUser, got {other}"),
            }
        }
    }
}
