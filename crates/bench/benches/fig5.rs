//! Bench for Fig. 5: instrumented KIFF run (phase timers enabled), to
//! verify instrumentation overhead stays negligible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::small_bench_dataset;
use kiff_core::{Kiff, KiffConfig};
use kiff_similarity::WeightedCosine;

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(12);
    let sim = WeightedCosine::fit(&ds);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(20);
    group.bench_function("kiff_instrumented", |b| {
        b.iter(|| {
            let result = Kiff::new(KiffConfig::new(10).with_threads(2)).run(&ds, &sim);
            black_box((
                result.stats.preprocessing_time(),
                result.stats.similarity_time,
                result.stats.candidate_selection_time,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
