//! Argument parsing for the `kiff` binary.

use std::fmt;
use std::path::PathBuf;

use kiff::core::{CountStrategy, ScoringMode};
use kiff::telemetry::MetricsFormat;
use kiff::{Algorithm, Metric};
use kiff_dataset::PaperDataset;

/// Dataset file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// SNAP-style `user<TAB>item[<TAB>rating]` edge list.
    SnapTsv,
    /// MovieLens `user::item::rating::timestamp`.
    MovieLens,
    /// JSON dump written by `kiff_dataset::io::save_json`.
    Json,
}

impl Format {
    /// Infers the format from a file extension; `None` if unknown.
    pub fn from_path(path: &std::path::Path) -> Option<Self> {
        match path.extension()?.to_str()? {
            "tsv" | "txt" | "edges" => Some(Format::SnapTsv),
            "dat" => Some(Format::MovieLens),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// Common options of dataset-consuming subcommands.
#[derive(Debug, Clone)]
pub struct InputOptions {
    /// Dataset file.
    pub input: PathBuf,
    /// Explicit format (otherwise inferred from the extension).
    pub format: Option<Format>,
}

/// Options of `kiff build`.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Dataset to load.
    pub input: InputOptions,
    /// Neighbourhood size.
    pub k: usize,
    /// Construction algorithm.
    pub algorithm: Algorithm,
    /// Similarity metric.
    pub metric: Metric,
    /// KIFF's γ (default 2k).
    pub gamma: Option<usize>,
    /// KIFF's β / the greedy baselines' termination threshold.
    pub beta: Option<f64>,
    /// KIFF's shared-item counting strategy (default: adaptive).
    pub count_strategy: CountStrategy,
    /// How KIFF's refinement evaluates similarities (default: prepared
    /// scorers).
    pub scoring: ScoringMode,
    /// Worker threads.
    pub threads: Option<usize>,
    /// RNG seed for randomised algorithms.
    pub seed: u64,
    /// Where the graph edge list goes (`-` or absent = stdout).
    pub output: Option<PathBuf>,
    /// When set, capture a telemetry snapshot of the build into this
    /// file (never interleaved with the human-readable output).
    pub metrics_out: Option<PathBuf>,
    /// Exporter rendering `--metrics-out` (default json).
    pub metrics_format: MetricsFormat,
}

/// Options of `kiff generate`.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Which calibrated preset to generate.
    pub preset: PaperDataset,
    /// Scale multiplier on the preset's defaults.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Output file (TSV).
    pub output: PathBuf,
}

/// Options of `kiff exact` (exact ground-truth construction).
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Dataset to load.
    pub input: InputOptions,
    /// Neighbourhood size.
    pub k: usize,
    /// Similarity metric.
    pub metric: Metric,
    /// How rows are scored (prepared scorers by default).
    pub scoring: ScoringMode,
    /// Exhaustive `O(|U|²)` scan instead of the inverted index.
    pub brute: bool,
    /// Worker threads.
    pub threads: Option<usize>,
    /// Where the graph edge list goes (`-` or absent = stdout).
    pub output: Option<PathBuf>,
}

/// Options of `kiff compare` (run the algorithm suite against exact
/// ground truth).
#[derive(Debug, Clone)]
pub struct CompareOptions {
    /// Dataset to load.
    pub input: InputOptions,
    /// Neighbourhood size.
    pub k: usize,
    /// Similarity metric.
    pub metric: Metric,
    /// Algorithms to run (default: kiff, nndescent, hyrec, lsh).
    pub algorithms: Vec<Algorithm>,
    /// How every algorithm's candidate loops are scored.
    pub scoring: ScoringMode,
    /// Worker threads.
    pub threads: Option<usize>,
    /// RNG seed for randomised algorithms.
    pub seed: u64,
    /// When set, capture one telemetry snapshot spanning every
    /// algorithm of the suite into this file.
    pub metrics_out: Option<PathBuf>,
    /// Exporter rendering `--metrics-out` (default json).
    pub metrics_format: MetricsFormat,
}

/// Options of `kiff recommend`.
#[derive(Debug, Clone)]
pub struct RecommendOptions {
    /// Dataset to load.
    pub input: InputOptions,
    /// User to recommend for (internal dense id).
    pub user: u32,
    /// Neighbourhood size for the underlying graph.
    pub k: usize,
    /// How many recommendations to print.
    pub top: usize,
}

/// Options of `kiff search`.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Dataset to load.
    pub input: InputOptions,
    /// Query items (internal dense ids).
    pub items: Vec<u32>,
    /// Neighbourhood size for the underlying graph.
    pub k: usize,
    /// How many hits to print.
    pub top: usize,
}

/// Options of `kiff update`.
#[derive(Debug, Clone)]
pub struct UpdateOptions {
    /// Base dataset to load and build the initial graph from.
    pub input: InputOptions,
    /// TSV of streamed rating updates
    /// (`user<TAB>item[<TAB>rating[<TAB>timestamp]]`, external ids).
    pub updates: PathBuf,
    /// Neighbourhood size.
    pub k: usize,
    /// Apply updates in batches of this size (1 = one repair per update).
    pub batch: usize,
    /// Online repair width (default 8k).
    pub repair_width: Option<usize>,
    /// Shard the engine across this many user partitions (1 = the
    /// single-threaded engine).
    pub shards: usize,
    /// User-to-shard placement policy of the sharded engine.
    pub partitioner: PartitionerChoice,
    /// When set, enable live shard rebalancing with this max/min
    /// shard-size ratio bound.
    pub rebalance: Option<f64>,
    /// Worker threads for the sharded engine and rebuild comparison.
    pub threads: Option<usize>,
    /// When set, capture the replay's telemetry (per-shard counters,
    /// repair latency histograms) into this file.
    pub metrics_out: Option<PathBuf>,
    /// Exporter rendering `--metrics-out` (default json).
    pub metrics_format: MetricsFormat,
}

/// Options of `kiff serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Base dataset to load and build the initial graph from (the
    /// recovery *seed* — keep it stable across restarts of the same
    /// data directory).
    pub input: InputOptions,
    /// Neighbourhood size.
    pub k: usize,
    /// Similarity metric of the initial build.
    pub metric: Metric,
    /// Address to listen on (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// Directory for the WAL and snapshots. Absent = volatile daemon
    /// (queries and updates work, nothing survives a restart).
    pub data_dir: Option<PathBuf>,
    /// Snapshot after this many persisted updates (0 = only on
    /// explicit `snapshot` requests and graceful shutdown).
    pub snapshot_every: Option<u64>,
    /// Shard the engine across this many user partitions.
    pub shards: usize,
    /// Worker threads for the initial build and the sharded engine.
    pub threads: Option<usize>,
    /// When set, write the bound address (`host:port`) to this file
    /// once the listener is up — for scripts that pass port 0.
    pub addr_file: Option<PathBuf>,
    /// Maximum concurrently processed requests before the daemon sheds
    /// load with a typed `overloaded` error (0 = unbounded).
    pub max_inflight: usize,
    /// When the data directory cannot be opened or recovered, serve
    /// queries read-only instead of exiting.
    pub degraded_ok: bool,
    /// Failpoint spec (`name=trigger[%scope],...`) armed at startup on
    /// top of `KIFF_FAILPOINTS` — chaos drills against a live daemon.
    pub failpoints: Option<String>,
    /// Replication channel to listen on (`host:port`; port 0 =
    /// ephemeral). Enables replication; absent = standalone daemon.
    pub repl_listen: Option<String>,
    /// Start as a replica of this primary (its *client* address).
    /// Absent with `--repl-listen` = start as the primary.
    pub replica_of: Option<String>,
    /// Client addresses of every group member, polled during elections.
    pub peers: Vec<String>,
    /// Replication heartbeat interval in milliseconds (default 500);
    /// a primary silent for four intervals triggers an election.
    pub heartbeat_ms: Option<u64>,
    /// Minimum replicas that must ack a write within the ack timeout
    /// for the client to see success (default 0 = best-effort
    /// semi-sync); below it the write is refused as retryable
    /// `Unavailable`.
    pub min_sync_replicas: Option<usize>,
}

/// `--partitioner` values of `kiff update`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionerChoice {
    /// Fibonacci-hash spread (the default).
    #[default]
    Hash,
    /// Round-robin `user % shards`.
    Modulo,
    /// Community-aware: co-raters share a shard (seeded from the base
    /// dataset's co-rating structure).
    Community,
}

/// A parsed subcommand.
#[derive(Debug, Clone)]
pub enum Command {
    /// Build a KNN graph.
    Build(BuildOptions),
    /// Build the exact ground-truth graph.
    Exact(ExactOptions),
    /// Run the algorithm suite against exact ground truth.
    Compare(CompareOptions),
    /// Print Table-I style dataset statistics.
    Stats(InputOptions),
    /// Generate a synthetic dataset.
    Generate(GenerateOptions),
    /// Print top-N recommendations for a user.
    Recommend(RecommendOptions),
    /// Search the graph for a free-standing item-set query.
    Search(SearchOptions),
    /// Replay streamed rating updates through the online engine.
    Update(UpdateOptions),
    /// Run the query daemon.
    Serve(ServeOptions),
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text printed by `kiff help`.
pub const USAGE: &str = "kiff — KNN graph construction for sparse datasets (ICDE'16 reproduction)

usage: kiff <command> [options]

commands:
  build      build a KNN graph from a ratings file
             --input FILE [--format tsv|movielens|json] --k N
             [--algorithm kiff|nndescent|hyrec|l2knng|lsh|exact]
             [--metric cosine|binary-cosine|jaccard|weighted-jaccard|dice|adamic-adar]
             [--gamma N] [--beta F] [--threads N] [--seed N] [--output FILE]
             [--count-strategy auto|dense|sort|hash] [--scoring prepared|pairwise]
             [--metrics-out FILE [--metrics-format json|prom]]
  exact      build the exact ground-truth graph (inverted index, or
             --brute for the exhaustive O(|U|^2) scan)
             --input FILE --k N [--metric ...] [--scoring prepared|pairwise]
             [--threads N] [--output FILE]
  compare    run the algorithm suite and report recall against exact
             ground truth, wall time and edges per algorithm
             --input FILE --k N [--metric ...] [--algorithms kiff,nndescent,...]
             [--scoring prepared|pairwise] [--threads N] [--seed N]
             [--metrics-out FILE [--metrics-format json|prom]]
  stats      print dataset statistics (Table I columns)
             --input FILE [--format ...]
  generate   write a synthetic dataset calibrated to a paper dataset
             --preset wikipedia|arxiv|gowalla|dblp [--scale F] [--seed N] --output FILE
  recommend  top-N items for a user via a KIFF graph
             --input FILE --user ID [--k N] [--top N]
  search     top users for an ad-hoc set of items via a KIFF graph
             --input FILE --items 1,2,3 [--k N] [--top N]
  update     build a graph, then replay a stream of timestamped ratings
             through the online engine and report repair cost vs rebuild
             --input BASE --updates STREAM [--k N] [--batch N]
             [--repair-width N] [--shards N] [--threads N]
             [--partitioner hash|modulo|community] [--rebalance RATIO]
             [--metrics-out FILE [--metrics-format json|prom]]
  serve      build a graph, then answer queries and accept updates over
             a TCP socket; with --data-dir, persist updates to a WAL and
             periodic snapshots and recover from them on restart
             --input SEED [--k N] [--metric ...] [--addr HOST:PORT]
             [--data-dir DIR] [--snapshot-every N] [--shards N]
             [--threads N] [--addr-file FILE] [--max-inflight N]
             [--degraded-ok] [--failpoints SPEC]
             [--repl-listen HOST:PORT [--replica-of HOST:PORT]
              [--peers HOST:PORT,...] [--heartbeat-ms N]
              [--min-sync-replicas N]]
  help       this text

The graph edge list is written as `user<TAB>neighbor<TAB>similarity`.";

fn value(flag: &str, iter: &mut impl Iterator<Item = String>) -> Result<String, ParseError> {
    iter.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, ParseError>
where
    T::Err: fmt::Display,
{
    raw.parse()
        .map_err(|e| ParseError(format!("bad {flag} '{raw}': {e}")))
}

fn parse_partitioner(raw: &str) -> Result<PartitionerChoice, ParseError> {
    match raw {
        "hash" => Ok(PartitionerChoice::Hash),
        "modulo" => Ok(PartitionerChoice::Modulo),
        "community" => Ok(PartitionerChoice::Community),
        other => Err(ParseError(format!(
            "unknown partitioner '{other}' (expected hash, modulo or community)"
        ))),
    }
}

fn parse_metrics_format(raw: &str) -> Result<MetricsFormat, ParseError> {
    MetricsFormat::parse(raw).ok_or_else(|| {
        ParseError(format!(
            "unknown metrics format '{raw}' (expected json or prom)"
        ))
    })
}

fn parse_format(raw: &str) -> Result<Format, ParseError> {
    match raw {
        "tsv" | "snap" => Ok(Format::SnapTsv),
        "movielens" | "ml" | "dat" => Ok(Format::MovieLens),
        "json" => Ok(Format::Json),
        other => Err(ParseError(format!("unknown format '{other}'"))),
    }
}

fn parse_algorithm(raw: &str) -> Result<Algorithm, ParseError> {
    match raw {
        "kiff" => Ok(Algorithm::Kiff),
        "nndescent" | "nn-descent" => Ok(Algorithm::NnDescent),
        "hyrec" => Ok(Algorithm::HyRec),
        "l2knng" => Ok(Algorithm::L2Knng),
        "lsh" => Ok(Algorithm::Lsh),
        "exact" | "brute" => Ok(Algorithm::Exact),
        other => Err(ParseError(format!("unknown algorithm '{other}'"))),
    }
}

fn parse_metric(raw: &str) -> Result<Metric, ParseError> {
    match raw {
        "cosine" => Ok(Metric::Cosine),
        "binary-cosine" => Ok(Metric::BinaryCosine),
        "jaccard" => Ok(Metric::Jaccard),
        "weighted-jaccard" => Ok(Metric::WeightedJaccard),
        "dice" => Ok(Metric::Dice),
        "adamic-adar" => Ok(Metric::AdamicAdar),
        other => Err(ParseError(format!("unknown metric '{other}'"))),
    }
}

fn parse_count_strategy(raw: &str) -> Result<CountStrategy, ParseError> {
    match raw {
        "auto" => Ok(CountStrategy::Auto),
        "dense" => Ok(CountStrategy::Dense),
        "sort" | "sort-based" => Ok(CountStrategy::SortBased),
        "hash" | "hash-based" => Ok(CountStrategy::HashBased),
        other => Err(ParseError(format!("unknown count strategy '{other}'"))),
    }
}

fn parse_scoring(raw: &str) -> Result<ScoringMode, ParseError> {
    match raw {
        "prepared" => Ok(ScoringMode::Prepared),
        "pairwise" => Ok(ScoringMode::Pairwise),
        other => Err(ParseError(format!("unknown scoring mode '{other}'"))),
    }
}

fn parse_preset(raw: &str) -> Result<PaperDataset, ParseError> {
    match raw {
        "wikipedia" => Ok(PaperDataset::Wikipedia),
        "arxiv" => Ok(PaperDataset::Arxiv),
        "gowalla" => Ok(PaperDataset::Gowalla),
        "dblp" => Ok(PaperDataset::Dblp),
        other => Err(ParseError(format!("unknown preset '{other}'"))),
    }
}

fn parse_peers(raw: &str) -> Result<Vec<String>, ParseError> {
    let list: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if list.is_empty() {
        return Err(ParseError("--peers must list at least one address".into()));
    }
    Ok(list)
}

fn parse_items(raw: &str) -> Result<Vec<u32>, ParseError> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse_num("--items", s.trim()))
        .collect()
}

fn parse_algorithms(raw: &str) -> Result<Vec<Algorithm>, ParseError> {
    let list: Vec<Algorithm> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse_algorithm(s.trim()))
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err(ParseError("--algorithms must list at least one".into()));
    }
    Ok(list)
}

/// Parses `argv` (excluding the program name) into a [`Command`].
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let mut iter = argv.iter().cloned();
    let sub = iter
        .next()
        .ok_or_else(|| ParseError(format!("missing command\n\n{USAGE}")))?;

    // Collected flags, validated per subcommand afterwards.
    let mut input: Option<PathBuf> = None;
    let mut format: Option<Format> = None;
    let mut output: Option<PathBuf> = None;
    let mut k: Option<usize> = None;
    let mut algorithm = Algorithm::Kiff;
    let mut metric = Metric::Cosine;
    let mut gamma: Option<usize> = None;
    let mut beta: Option<f64> = None;
    let mut count_strategy = CountStrategy::default();
    let mut scoring = ScoringMode::default();
    let mut threads: Option<usize> = None;
    let mut seed = 42u64;
    let mut scale = 1.0f64;
    let mut preset: Option<PaperDataset> = None;
    let mut user: Option<u32> = None;
    let mut top: Option<usize> = None;
    let mut items: Option<Vec<u32>> = None;
    let mut updates: Option<PathBuf> = None;
    let mut batch: Option<usize> = None;
    let mut repair_width: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut partitioner = PartitionerChoice::default();
    let mut rebalance: Option<f64> = None;
    let mut algorithms: Option<Vec<Algorithm>> = None;
    let mut brute = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut metrics_format: Option<MetricsFormat> = None;
    let mut addr: Option<String> = None;
    let mut data_dir: Option<PathBuf> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut addr_file: Option<PathBuf> = None;
    let mut max_inflight: Option<usize> = None;
    let mut degraded_ok = false;
    let mut failpoints: Option<String> = None;
    let mut repl_listen: Option<String> = None;
    let mut replica_of: Option<String> = None;
    let mut peers: Option<Vec<String>> = None;
    let mut heartbeat_ms: Option<u64> = None;
    let mut min_sync_replicas: Option<usize> = None;

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--input" | "-i" => input = Some(PathBuf::from(value("--input", &mut iter)?)),
            "--format" | "-f" => format = Some(parse_format(&value("--format", &mut iter)?)?),
            "--output" | "-o" => output = Some(PathBuf::from(value("--output", &mut iter)?)),
            "--k" | "-k" => k = Some(parse_num("--k", &value("--k", &mut iter)?)?),
            "--algorithm" | "-a" => algorithm = parse_algorithm(&value("--algorithm", &mut iter)?)?,
            "--metric" | "-m" => metric = parse_metric(&value("--metric", &mut iter)?)?,
            "--gamma" => gamma = Some(parse_num("--gamma", &value("--gamma", &mut iter)?)?),
            "--beta" => beta = Some(parse_num("--beta", &value("--beta", &mut iter)?)?),
            "--count-strategy" => {
                count_strategy = parse_count_strategy(&value("--count-strategy", &mut iter)?)?
            }
            "--scoring" => scoring = parse_scoring(&value("--scoring", &mut iter)?)?,
            "--threads" => threads = Some(parse_num("--threads", &value("--threads", &mut iter)?)?),
            "--seed" => seed = parse_num("--seed", &value("--seed", &mut iter)?)?,
            "--scale" => scale = parse_num("--scale", &value("--scale", &mut iter)?)?,
            "--preset" => preset = Some(parse_preset(&value("--preset", &mut iter)?)?),
            "--user" | "-u" => user = Some(parse_num("--user", &value("--user", &mut iter)?)?),
            "--top" | "-n" => top = Some(parse_num("--top", &value("--top", &mut iter)?)?),
            "--items" => items = Some(parse_items(&value("--items", &mut iter)?)?),
            "--updates" => updates = Some(PathBuf::from(value("--updates", &mut iter)?)),
            "--batch" => batch = Some(parse_num("--batch", &value("--batch", &mut iter)?)?),
            "--repair-width" => {
                repair_width = Some(parse_num(
                    "--repair-width",
                    &value("--repair-width", &mut iter)?,
                )?)
            }
            "--shards" => shards = Some(parse_num("--shards", &value("--shards", &mut iter)?)?),
            "--partitioner" => {
                partitioner = parse_partitioner(&value("--partitioner", &mut iter)?)?
            }
            "--rebalance" => {
                rebalance = Some(parse_num("--rebalance", &value("--rebalance", &mut iter)?)?)
            }
            "--algorithms" => {
                algorithms = Some(parse_algorithms(&value("--algorithms", &mut iter)?)?)
            }
            "--brute" => brute = true,
            "--addr" => addr = Some(value("--addr", &mut iter)?),
            "--data-dir" => data_dir = Some(PathBuf::from(value("--data-dir", &mut iter)?)),
            "--snapshot-every" => {
                snapshot_every = Some(parse_num(
                    "--snapshot-every",
                    &value("--snapshot-every", &mut iter)?,
                )?)
            }
            "--addr-file" => addr_file = Some(PathBuf::from(value("--addr-file", &mut iter)?)),
            "--max-inflight" => {
                max_inflight = Some(parse_num(
                    "--max-inflight",
                    &value("--max-inflight", &mut iter)?,
                )?)
            }
            "--degraded-ok" => degraded_ok = true,
            "--failpoints" => failpoints = Some(value("--failpoints", &mut iter)?),
            "--repl-listen" => repl_listen = Some(value("--repl-listen", &mut iter)?),
            "--replica-of" => replica_of = Some(value("--replica-of", &mut iter)?),
            "--peers" => peers = Some(parse_peers(&value("--peers", &mut iter)?)?),
            "--heartbeat-ms" => {
                heartbeat_ms = Some(parse_num(
                    "--heartbeat-ms",
                    &value("--heartbeat-ms", &mut iter)?,
                )?)
            }
            "--min-sync-replicas" => {
                min_sync_replicas = Some(parse_num(
                    "--min-sync-replicas",
                    &value("--min-sync-replicas", &mut iter)?,
                )?)
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(value("--metrics-out", &mut iter)?))
            }
            "--metrics-format" => {
                metrics_format = Some(parse_metrics_format(&value(
                    "--metrics-format",
                    &mut iter,
                )?)?)
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(ParseError(format!("unknown option '{other}'\n\n{USAGE}"))),
        }
    }

    if metrics_format.is_some() && metrics_out.is_none() {
        return Err(ParseError("--metrics-format requires --metrics-out".into()));
    }

    let need_input = |input: Option<PathBuf>| -> Result<InputOptions, ParseError> {
        let input = input.ok_or_else(|| ParseError("--input is required".into()))?;
        Ok(InputOptions { input, format })
    };

    // Telemetry capture is wired through build/compare/update only;
    // reject rather than silently ignore the flag elsewhere.
    fn no_metrics(sub: &str, metrics_out: &Option<PathBuf>) -> Result<(), ParseError> {
        if metrics_out.is_some() {
            return Err(ParseError(format!(
                "--metrics-out is not supported by '{sub}'"
            )));
        }
        Ok(())
    }

    match sub.as_str() {
        "build" => Ok(Command::Build(BuildOptions {
            input: need_input(input)?,
            k: k.ok_or_else(|| ParseError("--k is required".into()))?,
            algorithm,
            metric,
            gamma,
            beta,
            count_strategy,
            scoring,
            threads,
            seed,
            output,
            metrics_out,
            metrics_format: metrics_format.unwrap_or_default(),
        })),
        "exact" => {
            no_metrics("exact", &metrics_out)?;
            Ok(Command::Exact(ExactOptions {
                input: need_input(input)?,
                k: k.ok_or_else(|| ParseError("--k is required".into()))?,
                metric,
                scoring,
                brute,
                threads,
                output,
            }))
        }
        "compare" => Ok(Command::Compare(CompareOptions {
            input: need_input(input)?,
            k: k.ok_or_else(|| ParseError("--k is required".into()))?,
            metric,
            algorithms: algorithms.unwrap_or_else(|| {
                vec![
                    Algorithm::Kiff,
                    Algorithm::NnDescent,
                    Algorithm::HyRec,
                    Algorithm::Lsh,
                ]
            }),
            scoring,
            threads,
            seed,
            metrics_out,
            metrics_format: metrics_format.unwrap_or_default(),
        })),
        "stats" => {
            no_metrics("stats", &metrics_out)?;
            Ok(Command::Stats(need_input(input)?))
        }
        "generate" => {
            no_metrics("generate", &metrics_out)?;
            Ok(Command::Generate(GenerateOptions {
                preset: preset.ok_or_else(|| ParseError("--preset is required".into()))?,
                scale,
                seed,
                output: output.ok_or_else(|| ParseError("--output is required".into()))?,
            }))
        }
        "recommend" => {
            no_metrics("recommend", &metrics_out)?;
            Ok(Command::Recommend(RecommendOptions {
                input: need_input(input)?,
                user: user.ok_or_else(|| ParseError("--user is required".into()))?,
                k: k.unwrap_or(20),
                top: top.unwrap_or(10),
            }))
        }
        "search" => {
            no_metrics("search", &metrics_out)?;
            Ok(Command::Search(SearchOptions {
                input: need_input(input)?,
                items: items.ok_or_else(|| ParseError("--items is required".into()))?,
                k: k.unwrap_or(20),
                top: top.unwrap_or(10),
            }))
        }
        "update" => {
            let batch = batch.unwrap_or(1);
            if batch == 0 {
                return Err(ParseError("--batch must be positive".into()));
            }
            let shards = shards.unwrap_or(1);
            if shards == 0 {
                return Err(ParseError("--shards must be positive".into()));
            }
            if let Some(r) = rebalance {
                if r.is_nan() || r <= 1.0 {
                    return Err(ParseError("--rebalance ratio must exceed 1.0".into()));
                }
            }
            // The single-engine path (shards = 1) has no placement or
            // rebalancing; reject rather than silently ignore the flags.
            if shards == 1 && (partitioner != PartitionerChoice::Hash || rebalance.is_some()) {
                return Err(ParseError(
                    "--partitioner/--rebalance require --shards > 1".into(),
                ));
            }
            Ok(Command::Update(UpdateOptions {
                input: need_input(input)?,
                updates: updates.ok_or_else(|| ParseError("--updates is required".into()))?,
                k: k.unwrap_or(20),
                batch,
                repair_width,
                shards,
                partitioner,
                rebalance,
                threads,
                metrics_out,
                metrics_format: metrics_format.unwrap_or_default(),
            }))
        }
        "serve" => {
            no_metrics("serve", &metrics_out)?;
            let shards = shards.unwrap_or(1);
            if shards == 0 {
                return Err(ParseError("--shards must be positive".into()));
            }
            if data_dir.is_none() && snapshot_every.is_some() {
                return Err(ParseError("--snapshot-every requires --data-dir".into()));
            }
            if degraded_ok && data_dir.is_none() {
                return Err(ParseError("--degraded-ok requires --data-dir".into()));
            }
            if let Some(spec) = &failpoints {
                // Surface a malformed spec as a usage error now, not a
                // startup crash after the graph build.
                kiff::core::fault::parse_spec(spec)
                    .map_err(|e| ParseError(format!("bad --failpoints: {e}")))?;
            }
            if repl_listen.is_none() && (replica_of.is_some() || peers.is_some()) {
                return Err(ParseError(
                    "--replica-of/--peers require --repl-listen".into(),
                ));
            }
            if heartbeat_ms.is_some() && repl_listen.is_none() {
                return Err(ParseError("--heartbeat-ms requires --repl-listen".into()));
            }
            if min_sync_replicas.is_some() && repl_listen.is_none() {
                return Err(ParseError(
                    "--min-sync-replicas requires --repl-listen".into(),
                ));
            }
            if heartbeat_ms == Some(0) {
                return Err(ParseError("--heartbeat-ms must be positive".into()));
            }
            if repl_listen.is_some() && data_dir.is_none() {
                // The replica stream is WAL-backed; a volatile daemon
                // has nothing to ship.
                return Err(ParseError("--repl-listen requires --data-dir".into()));
            }
            Ok(Command::Serve(ServeOptions {
                input: need_input(input)?,
                k: k.unwrap_or(20),
                metric,
                addr: addr.unwrap_or_else(|| "127.0.0.1:7407".into()),
                data_dir,
                snapshot_every,
                shards,
                threads,
                addr_file,
                max_inflight: max_inflight.unwrap_or(0),
                degraded_ok,
                failpoints,
                repl_listen,
                replica_of,
                peers: peers.unwrap_or_default(),
                heartbeat_ms,
                min_sync_replicas,
            }))
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_build() {
        let cmd = parse(&argv(
            "build --input r.tsv --k 20 --algorithm nndescent --metric jaccard \
             --gamma 40 --beta 0.01 --threads 4 --seed 7 --output g.tsv",
        ))
        .unwrap();
        match cmd {
            Command::Build(b) => {
                assert_eq!(b.input.input, PathBuf::from("r.tsv"));
                assert_eq!(b.k, 20);
                assert_eq!(b.algorithm, Algorithm::NnDescent);
                assert_eq!(b.metric, Metric::Jaccard);
                assert_eq!(b.gamma, Some(40));
                assert_eq!(b.beta, Some(0.01));
                assert_eq!(b.threads, Some(4));
                assert_eq!(b.seed, 7);
                assert_eq!(b.output, Some(PathBuf::from("g.tsv")));
            }
            other => panic!("expected Build, got {other:?}"),
        }
    }

    #[test]
    fn build_requires_input_and_k() {
        assert!(parse(&argv("build --k 5")).is_err());
        assert!(parse(&argv("build --input r.tsv")).is_err());
    }

    #[test]
    fn parses_count_strategy_and_scoring() {
        let cmd = parse(&argv(
            "build --input r.tsv --k 5 --count-strategy dense --scoring pairwise",
        ))
        .unwrap();
        match cmd {
            Command::Build(b) => {
                assert_eq!(b.count_strategy, CountStrategy::Dense);
                assert_eq!(b.scoring, ScoringMode::Pairwise);
            }
            other => panic!("expected Build, got {other:?}"),
        }
        // Defaults: adaptive counting, prepared scorers.
        match parse(&argv("build --input r.tsv --k 5")).unwrap() {
            Command::Build(b) => {
                assert_eq!(b.count_strategy, CountStrategy::Auto);
                assert_eq!(b.scoring, ScoringMode::Prepared);
            }
            other => panic!("expected Build, got {other:?}"),
        }
        assert!(parse(&argv("build --input r.tsv --k 5 --count-strategy magic")).is_err());
        assert!(parse(&argv("build --input r.tsv --k 5 --scoring magic")).is_err());
    }

    #[test]
    fn parses_exact() {
        let cmd = parse(&argv(
            "exact --input r.tsv --k 10 --metric jaccard --scoring pairwise --brute --threads 2",
        ))
        .unwrap();
        match cmd {
            Command::Exact(e) => {
                assert_eq!(e.k, 10);
                assert_eq!(e.metric, Metric::Jaccard);
                assert_eq!(e.scoring, ScoringMode::Pairwise);
                assert!(e.brute);
                assert_eq!(e.threads, Some(2));
            }
            other => panic!("expected Exact, got {other:?}"),
        }
        // Defaults: prepared scoring, inverted index.
        match parse(&argv("exact --input r.tsv --k 5")).unwrap() {
            Command::Exact(e) => {
                assert_eq!(e.scoring, ScoringMode::Prepared);
                assert!(!e.brute);
            }
            other => panic!("expected Exact, got {other:?}"),
        }
        assert!(parse(&argv("exact --input r.tsv")).is_err(), "needs --k");
    }

    #[test]
    fn parses_compare() {
        let cmd = parse(&argv(
            "compare --input r.tsv --k 5 --algorithms nndescent,hyrec --scoring pairwise",
        ))
        .unwrap();
        match cmd {
            Command::Compare(c) => {
                assert_eq!(c.algorithms, vec![Algorithm::NnDescent, Algorithm::HyRec]);
                assert_eq!(c.scoring, ScoringMode::Pairwise);
            }
            other => panic!("expected Compare, got {other:?}"),
        }
        // Default suite: kiff + the approximate baselines.
        match parse(&argv("compare --input r.tsv --k 5")).unwrap() {
            Command::Compare(c) => {
                assert_eq!(c.algorithms.len(), 4);
                assert_eq!(c.scoring, ScoringMode::Prepared);
            }
            other => panic!("expected Compare, got {other:?}"),
        }
        assert!(parse(&argv("compare --input r.tsv --k 5 --algorithms magic")).is_err());
        assert!(parse(&argv("compare --input r.tsv --k 5 --algorithms ,")).is_err());
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&argv(
            "generate --preset gowalla --scale 0.25 --seed 3 --output g.tsv",
        ))
        .unwrap();
        match cmd {
            Command::Generate(g) => {
                assert_eq!(g.preset, PaperDataset::Gowalla);
                assert_eq!(g.scale, 0.25);
                assert_eq!(g.seed, 3);
            }
            other => panic!("expected Generate, got {other:?}"),
        }
    }

    #[test]
    fn parses_items_list() {
        let cmd = parse(&argv("search --input r.tsv --items 1,2,3 --top 5")).unwrap();
        match cmd {
            Command::Search(s) => {
                assert_eq!(s.items, vec![1, 2, 3]);
                assert_eq!(s.top, 5);
                assert_eq!(s.k, 20, "default k");
            }
            other => panic!("expected Search, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_things() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("build --input r.tsv --k 5 --metric euclid")).is_err());
        assert!(parse(&argv("build --input r.tsv --k 5 --algorithm magic")).is_err());
        assert!(parse(&argv("generate --preset netflix --output x.tsv")).is_err());
        assert!(parse(&argv("build --wat")).is_err());
    }

    #[test]
    fn parses_update() {
        let cmd = parse(&argv(
            "update --input base.tsv --updates stream.tsv --k 5 --batch 20 --repair-width 64 \
             --shards 4 --partitioner community --rebalance 2.0",
        ))
        .unwrap();
        match cmd {
            Command::Update(u) => {
                assert_eq!(u.input.input, PathBuf::from("base.tsv"));
                assert_eq!(u.updates, PathBuf::from("stream.tsv"));
                assert_eq!(u.k, 5);
                assert_eq!(u.batch, 20);
                assert_eq!(u.repair_width, Some(64));
                assert_eq!(u.shards, 4);
                assert_eq!(u.partitioner, PartitionerChoice::Community);
                assert_eq!(u.rebalance, Some(2.0));
            }
            other => panic!("expected Update, got {other:?}"),
        }
    }

    #[test]
    fn update_defaults_to_one_shard() {
        match parse(&argv("update --input b.tsv --updates s.tsv")).unwrap() {
            Command::Update(u) => {
                assert_eq!(u.shards, 1);
                assert_eq!(u.partitioner, PartitionerChoice::Hash);
                assert_eq!(u.rebalance, None);
            }
            other => panic!("expected Update, got {other:?}"),
        }
    }

    #[test]
    fn update_requires_both_files() {
        assert!(parse(&argv("update --updates s.tsv")).is_err());
        assert!(parse(&argv("update --input b.tsv")).is_err());
        assert!(parse(&argv("update --input b.tsv --updates s.tsv --batch 0")).is_err());
        assert!(parse(&argv("update --input b.tsv --updates s.tsv --shards 0")).is_err());
        assert!(
            parse(&argv(
                "update --input b.tsv --updates s.tsv --partitioner nope"
            ))
            .is_err(),
            "unknown partitioner rejected"
        );
        assert!(
            parse(&argv(
                "update --input b.tsv --updates s.tsv --shards 2 --rebalance 1.0"
            ))
            .is_err(),
            "degenerate rebalance ratio rejected"
        );
        assert!(
            parse(&argv(
                "update --input b.tsv --updates s.tsv --partitioner community"
            ))
            .is_err(),
            "placement flags without shards rejected, not ignored"
        );
        assert!(
            parse(&argv(
                "update --input b.tsv --updates s.tsv --rebalance 2.0"
            ))
            .is_err(),
            "rebalance without shards rejected, not ignored"
        );
    }

    #[test]
    fn parses_metrics_flags() {
        match parse(&argv(
            "build --input r.tsv --k 5 --metrics-out m.prom --metrics-format prom",
        ))
        .unwrap()
        {
            Command::Build(b) => {
                assert_eq!(b.metrics_out, Some(PathBuf::from("m.prom")));
                assert_eq!(b.metrics_format, MetricsFormat::Prometheus);
            }
            other => panic!("expected Build, got {other:?}"),
        }
        // Default format is json; the flags ride on compare and update too.
        match parse(&argv("compare --input r.tsv --k 5 --metrics-out m.json")).unwrap() {
            Command::Compare(c) => {
                assert_eq!(c.metrics_out, Some(PathBuf::from("m.json")));
                assert_eq!(c.metrics_format, MetricsFormat::Json);
            }
            other => panic!("expected Compare, got {other:?}"),
        }
        match parse(&argv(
            "update --input b.tsv --updates s.tsv --metrics-out m.json",
        ))
        .unwrap()
        {
            Command::Update(u) => {
                assert_eq!(u.metrics_out, Some(PathBuf::from("m.json")));
                assert_eq!(u.metrics_format, MetricsFormat::Json);
            }
            other => panic!("expected Update, got {other:?}"),
        }
        match parse(&argv("build --input r.tsv --k 5")).unwrap() {
            Command::Build(b) => assert_eq!(b.metrics_out, None),
            other => panic!("expected Build, got {other:?}"),
        }
    }

    #[test]
    fn metrics_flags_are_validated() {
        assert!(
            parse(&argv("build --input r.tsv --k 5 --metrics-format prom")).is_err(),
            "format without a destination rejected"
        );
        assert!(
            parse(&argv(
                "build --input r.tsv --k 5 --metrics-out m --metrics-format yaml"
            ))
            .is_err(),
            "unknown exporter rejected"
        );
        for sub in [
            "stats --input r.tsv",
            "exact --input r.tsv --k 5",
            "generate --preset dblp --output g.tsv",
            "recommend --input r.tsv --user 0",
            "search --input r.tsv --items 1",
        ] {
            let e = parse(&argv(&format!("{sub} --metrics-out m.json")));
            assert!(e.is_err(), "{sub} must reject --metrics-out");
            assert!(
                e.unwrap_err().to_string().contains("not supported"),
                "{sub}"
            );
        }
    }

    #[test]
    fn parses_serve() {
        let cmd = parse(&argv(
            "serve --input base.tsv --k 10 --metric jaccard --addr 0.0.0.0:9000 \
             --data-dir /tmp/kiff --snapshot-every 500 --shards 2 --threads 4 \
             --addr-file /tmp/addr.txt --max-inflight 64 --degraded-ok \
             --failpoints wal.fsync=prob:0.01@7,net.write=nth:3%127.0.0.1",
        ))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.input.input, PathBuf::from("base.tsv"));
                assert_eq!(s.k, 10);
                assert_eq!(s.metric, Metric::Jaccard);
                assert_eq!(s.addr, "0.0.0.0:9000");
                assert_eq!(s.data_dir, Some(PathBuf::from("/tmp/kiff")));
                assert_eq!(s.snapshot_every, Some(500));
                assert_eq!(s.shards, 2);
                assert_eq!(s.threads, Some(4));
                assert_eq!(s.addr_file, Some(PathBuf::from("/tmp/addr.txt")));
                assert_eq!(s.max_inflight, 64);
                assert!(s.degraded_ok);
                assert_eq!(
                    s.failpoints.as_deref(),
                    Some("wal.fsync=prob:0.01@7,net.write=nth:3%127.0.0.1")
                );
            }
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn serve_defaults_and_validation() {
        match parse(&argv("serve --input base.tsv")).unwrap() {
            Command::Serve(s) => {
                assert_eq!(s.k, 20, "default k");
                assert_eq!(s.addr, "127.0.0.1:7407", "default address");
                assert_eq!(s.data_dir, None, "volatile by default");
                assert_eq!(s.shards, 1);
                assert_eq!(s.max_inflight, 0, "unbounded by default");
                assert!(!s.degraded_ok);
                assert_eq!(s.failpoints, None);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        assert!(parse(&argv("serve")).is_err(), "needs --input");
        assert!(parse(&argv("serve --input b.tsv --shards 0")).is_err());
        assert!(
            parse(&argv("serve --input b.tsv --snapshot-every 10")).is_err(),
            "snapshot cadence without a data dir rejected, not ignored"
        );
        assert!(
            parse(&argv("serve --input b.tsv --metrics-out m.json")).is_err(),
            "metrics travel over the wire, not to a file"
        );
        assert!(
            parse(&argv("serve --input b.tsv --degraded-ok")).is_err(),
            "read-only fallback is about persistence; it needs --data-dir"
        );
        assert!(
            parse(&argv("serve --input b.tsv --failpoints wal.fsync=banana")).is_err(),
            "a malformed failpoint spec is a usage error, not a late crash"
        );
    }

    #[test]
    fn parses_serve_replication() {
        let cmd = parse(&argv(
            "serve --input base.tsv --data-dir /tmp/kiff --repl-listen 0.0.0.0:9001 \
             --replica-of 10.0.0.1:7407 --peers 10.0.0.1:7407,10.0.0.2:7407 \
             --heartbeat-ms 250 --min-sync-replicas 1",
        ))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.repl_listen.as_deref(), Some("0.0.0.0:9001"));
                assert_eq!(s.replica_of.as_deref(), Some("10.0.0.1:7407"));
                assert_eq!(s.peers, vec!["10.0.0.1:7407", "10.0.0.2:7407"]);
                assert_eq!(s.heartbeat_ms, Some(250));
                assert_eq!(s.min_sync_replicas, Some(1));
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // Standalone default: no replication at all.
        match parse(&argv("serve --input base.tsv")).unwrap() {
            Command::Serve(s) => {
                assert_eq!(s.repl_listen, None);
                assert_eq!(s.replica_of, None);
                assert!(s.peers.is_empty());
                assert_eq!(s.heartbeat_ms, None);
                assert_eq!(s.min_sync_replicas, None);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn serve_replication_flags_are_validated() {
        assert!(
            parse(&argv(
                "serve --input b.tsv --data-dir /tmp/k --replica-of 10.0.0.1:7407"
            ))
            .is_err(),
            "--replica-of without --repl-listen rejected, not ignored"
        );
        assert!(
            parse(&argv(
                "serve --input b.tsv --data-dir /tmp/k --peers 10.0.0.1:7407"
            ))
            .is_err(),
            "--peers without --repl-listen rejected"
        );
        assert!(
            parse(&argv(
                "serve --input b.tsv --data-dir /tmp/k --heartbeat-ms 100"
            ))
            .is_err(),
            "--heartbeat-ms without --repl-listen rejected"
        );
        assert!(
            parse(&argv(
                "serve --input b.tsv --data-dir /tmp/k --min-sync-replicas 1"
            ))
            .is_err(),
            "--min-sync-replicas without --repl-listen rejected"
        );
        assert!(
            parse(&argv(
                "serve --input b.tsv --data-dir /tmp/k --repl-listen :0 --heartbeat-ms 0"
            ))
            .is_err(),
            "a zero heartbeat would mean instant elections"
        );
        assert!(
            parse(&argv("serve --input b.tsv --repl-listen 127.0.0.1:0")).is_err(),
            "replication ships the WAL; it needs --data-dir"
        );
        assert!(
            parse(&argv(
                "serve --input b.tsv --data-dir /tmp/k --repl-listen :0 --peers ,"
            ))
            .is_err(),
            "empty peer list rejected"
        );
    }

    #[test]
    fn help_short_circuits() {
        assert!(matches!(parse(&argv("help")).unwrap(), Command::Help));
        assert!(matches!(
            parse(&argv("build --help")).unwrap(),
            Command::Help
        ));
    }

    #[test]
    fn format_inference() {
        use std::path::Path;
        assert_eq!(Format::from_path(Path::new("x.tsv")), Some(Format::SnapTsv));
        assert_eq!(
            Format::from_path(Path::new("x.dat")),
            Some(Format::MovieLens)
        );
        assert_eq!(Format::from_path(Path::new("x.json")), Some(Format::Json));
        assert_eq!(Format::from_path(Path::new("x.csv")), None);
        assert_eq!(Format::from_path(Path::new("noext")), None);
    }
}
