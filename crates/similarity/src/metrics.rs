//! The [`Similarity`] trait and its implementations.
//!
//! Graph-construction algorithms are generic over `S: Similarity` and call
//! [`Similarity::sim`] with user ids; implementations fetch the profiles
//! and may consult state fitted on the dataset (precomputed norms, item
//! degree weights).

use kiff_dataset::{Dataset, UserId};

use crate::functions;
use crate::scorer::{PairwiseScorer, ProfileKindScorer, ScoreKind, Scorer, ScorerWorkspace};

/// An item-based similarity over users of a dataset.
///
/// Implementations must be non-negative. When [`Similarity::sparse_axioms`]
/// returns `true`, the metric additionally guarantees Eq. (5)–(6) of the
/// paper — `sim = 0` exactly when the profiles share no item — which is the
/// precondition for KIFF's candidate pruning to be lossless (§III-D).
pub trait Similarity: Sync {
    /// `sim(u, v)` over `dataset`.
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64;

    /// Metric name for reports.
    fn name(&self) -> &'static str;

    /// Whether Eq. (5)–(6) hold (true for everything in this module).
    fn sparse_axioms(&self) -> bool {
        true
    }

    /// Prepares a reusable scorer for reference user `u`: preprocessing
    /// (norms, dense profile stamps) happens once here, and every
    /// subsequent [`Scorer::score`] call runs in `O(|UP_v|)` for the
    /// metrics of this crate. Results equal [`Similarity::sim`] within
    /// [`crate::SIM_EPSILON`] (exactly, for the provided metrics).
    ///
    /// `ws` is the per-worker preparation arena; the returned scorer
    /// borrows it until dropped. The default implementation is a plain
    /// pairwise fallback, so custom metrics keep working without a
    /// prepared path.
    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        let _ = ws;
        Box::new(PairwiseScorer {
            sim: self,
            dataset,
            u,
        })
    }
}

/// Shared tail of the stateless-metric `scorer` implementations.
fn kind_scorer<'a>(
    kind: ScoreKind,
    dataset: &'a Dataset,
    u: UserId,
    ws: &'a mut ScorerWorkspace,
) -> Box<dyn Scorer + 'a> {
    Box::new(ProfileKindScorer {
        inner: ws.prepare(kind, dataset.user_profile(u)),
        dataset,
    })
}

/// Cosine over presence (binary) vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCosine;

impl Similarity for BinaryCosine {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::binary_cosine(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "binary-cosine"
    }

    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        kind_scorer(ScoreKind::BinaryCosine, dataset, u, ws)
    }
}

/// Cosine over rating vectors — the paper's evaluation metric.
///
/// `WeightedCosine::new()` computes norms on the fly; [`WeightedCosine::fit`]
/// precomputes one norm per user, halving the per-pair work. The fitted
/// instance must only be used with the dataset it was fitted on (checked by
/// length in debug builds).
#[derive(Debug, Clone, Default)]
pub struct WeightedCosine {
    norms: Option<Box<[f64]>>,
}

impl WeightedCosine {
    /// Norm-on-the-fly variant.
    pub fn new() -> Self {
        Self { norms: None }
    }

    /// Precomputes per-user norms for `dataset`.
    pub fn fit(dataset: &Dataset) -> Self {
        let norms = (0..dataset.num_users() as u32)
            .map(|u| dataset.user_profile(u).norm())
            .collect();
        Self { norms: Some(norms) }
    }
}

impl Similarity for WeightedCosine {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        let a = dataset.user_profile(u);
        let b = dataset.user_profile(v);
        match &self.norms {
            Some(norms) => {
                debug_assert_eq!(
                    norms.len(),
                    dataset.num_users(),
                    "fitted on another dataset"
                );
                functions::weighted_cosine_with_norms(a, b, norms[u as usize], norms[v as usize])
            }
            None => functions::weighted_cosine(a, b),
        }
    }

    fn name(&self) -> &'static str {
        "cosine"
    }

    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        let norms = self.norms.as_deref();
        let profile = dataset.user_profile(u);
        let (inner, norm_u) = match norms {
            Some(norms) => {
                debug_assert_eq!(
                    norms.len(),
                    dataset.num_users(),
                    "fitted on another dataset"
                );
                let norm_u = norms[u as usize];
                // The fitted table supplies the reference norm: skip the
                // norm pass `prepare` would otherwise run.
                (
                    ws.prepare_with_norm(ScoreKind::Cosine, profile, norm_u),
                    Some(norm_u),
                )
            }
            None => (ws.prepare(ScoreKind::Cosine, profile), None),
        };
        Box::new(CosineScorer {
            inner,
            dataset,
            norm_u,
            norms,
        })
    }
}

/// Prepared scorer of [`WeightedCosine`]: dense dot products plus either
/// the fitted norm table or per-candidate norms, exactly mirroring
/// [`WeightedCosine::sim`]'s two paths.
struct CosineScorer<'a> {
    inner: crate::scorer::ProfileScorer<'a>,
    dataset: &'a Dataset,
    /// Fitted norm of the reference user, when fitted.
    norm_u: Option<f64>,
    norms: Option<&'a [f64]>,
}

impl Scorer for CosineScorer<'_> {
    fn score(&mut self, v: UserId) -> f64 {
        let b = self.dataset.user_profile(v);
        match (self.norm_u, self.norms) {
            (Some(norm_u), Some(norms)) => {
                self.inner
                    .score_cosine_with_norms(b, norm_u, norms[v as usize])
            }
            _ => self.inner.score(b),
        }
    }
}

/// Jaccard's coefficient over item sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaccard;

impl Similarity for Jaccard {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::jaccard(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }

    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        kind_scorer(ScoreKind::Jaccard, dataset, u, ws)
    }
}

/// Ruzicka (weighted Jaccard) over rating vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedJaccard;

impl Similarity for WeightedJaccard {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::weighted_jaccard(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "weighted-jaccard"
    }

    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        kind_scorer(ScoreKind::WeightedJaccard, dataset, u, ws)
    }
}

/// Dice coefficient over item sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dice;

impl Similarity for Dice {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::dice(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "dice"
    }

    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        kind_scorer(ScoreKind::Dice, dataset, u, ws)
    }
}

/// Raw common-item count — KIFF's coarse counting-phase approximation
/// exposed as a metric (unnormalized; useful for Fig. 7-style rank
/// comparisons and ablations).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommonItems;

impl Similarity for CommonItems {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::common_items(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "common-items"
    }

    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        kind_scorer(ScoreKind::CommonItems, dataset, u, ws)
    }
}

/// Adamic–Adar: shared items weighted by `1 / ln |IP_i|`, down-weighting
/// blockbuster items. Items rated by fewer than two users get the `ln 2`
/// weight (they cannot be shared more cheaply).
#[derive(Debug, Clone)]
pub struct AdamicAdar {
    item_weights: Box<[f64]>,
}

impl AdamicAdar {
    /// Precomputes item weights from the dataset's item profiles.
    pub fn fit(dataset: &Dataset) -> Self {
        let items = dataset.item_profiles();
        let item_weights = (0..dataset.num_items() as u32)
            .map(|i| 1.0 / f64::from(items.degree(i).max(2) as u32).ln())
            .collect();
        Self { item_weights }
    }

    /// The fitted per-item weights.
    pub fn item_weights(&self) -> &[f64] {
        &self.item_weights
    }
}

impl Similarity for AdamicAdar {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        debug_assert_eq!(
            self.item_weights.len(),
            dataset.num_items(),
            "fitted on another dataset"
        );
        functions::adamic_adar_with(
            dataset.user_profile(u),
            dataset.user_profile(v),
            &self.item_weights,
        )
    }

    fn name(&self) -> &'static str {
        "adamic-adar"
    }

    fn scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
        u: UserId,
        ws: &'a mut ScorerWorkspace,
    ) -> Box<dyn Scorer + 'a> {
        debug_assert_eq!(
            self.item_weights.len(),
            dataset.num_items(),
            "fitted on another dataset"
        );
        Box::new(AdamicAdarScorer {
            // CommonItems preparation: Adamic–Adar needs only the stamped
            // reference items, no norms or totals.
            inner: ws.prepare(ScoreKind::CommonItems, dataset.user_profile(u)),
            dataset,
            weights: &self.item_weights,
        })
    }
}

/// Prepared scorer of [`AdamicAdar`]: stamped reference items summed
/// through the fitted per-item weights.
struct AdamicAdarScorer<'a> {
    inner: crate::scorer::ProfileScorer<'a>,
    dataset: &'a Dataset,
    weights: &'a [f64],
}

impl Scorer for AdamicAdarScorer<'_> {
    fn score(&mut self, v: UserId) -> f64 {
        self.inner
            .weighted_shared(self.dataset.user_profile(v), self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::DatasetBuilder;

    #[test]
    fn toy_cosine_values() {
        let ds = figure2_toy();
        let cos = WeightedCosine::new();
        // Alice–Bob share coffee: 1/√(2·2) = 0.5.
        assert!((cos.sim(&ds, 0, 1) - 0.5).abs() < 1e-12);
        // Alice–Carl share nothing.
        assert_eq!(cos.sim(&ds, 0, 2), 0.0);
        // Carl–Dave both like only shopping: 1.0.
        assert!((cos.sim(&ds, 2, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fitted_cosine_matches_unfitted() {
        let ds = figure2_toy();
        let plain = WeightedCosine::new();
        let fitted = WeightedCosine::fit(&ds);
        for u in 0..4 {
            for v in 0..4 {
                assert!((plain.sim(&ds, u, v) - fitted.sim(&ds, u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_cosine_reflects_ratings() {
        let mut b = DatasetBuilder::new("w", 3, 3);
        // u0 loves item0, mildly likes item1; u1 mirrors; u2 only item0.
        b.add_rating(0, 0, 5.0);
        b.add_rating(0, 1, 1.0);
        b.add_rating(1, 0, 1.0);
        b.add_rating(1, 1, 5.0);
        b.add_rating(2, 0, 5.0);
        let ds = b.build();
        let cos = WeightedCosine::new();
        // u0 is closer to u2 (aligned heavy rating) than to u1.
        assert!(cos.sim(&ds, 0, 2) > cos.sim(&ds, 0, 1));
    }

    #[test]
    fn adamic_adar_downweights_popular_items() {
        let mut b = DatasetBuilder::new("aa", 4, 2);
        // item0 is rated by everyone (popular); item1 only by users 0 and 1.
        for u in 0..4 {
            b.add_rating(u, 0, 1.0);
        }
        b.add_rating(0, 1, 1.0);
        b.add_rating(1, 1, 1.0);
        let ds = b.build();
        let aa = AdamicAdar::fit(&ds);
        // Sharing the rare item contributes more than sharing the popular
        // one.
        let via_both = aa.sim(&ds, 0, 1); // shares item0 and item1
        let via_popular = aa.sim(&ds, 2, 3); // shares only item0
        assert!(via_both > via_popular);
        let w = aa.item_weights();
        assert!(w[1] > w[0], "rare item must weigh more");
    }

    #[test]
    fn all_metrics_report_sparse_axioms() {
        let ds = figure2_toy();
        let aa = AdamicAdar::fit(&ds);
        let metrics: Vec<&dyn Similarity> = vec![
            &BinaryCosine,
            &Jaccard,
            &WeightedJaccard,
            &Dice,
            &CommonItems,
            &aa,
        ];
        for m in metrics {
            assert!(m.sparse_axioms(), "{}", m.name());
            // Disjoint pair Alice–Carl must be zero under every metric.
            assert_eq!(m.sim(&ds, 0, 2), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn prepared_scorers_match_pairwise_sim() {
        use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
        let ds = generate_bipartite(&BipartiteConfig::tiny("scorer", 71));
        let aa = AdamicAdar::fit(&ds);
        let fitted = WeightedCosine::fit(&ds);
        let unfitted = WeightedCosine::new();
        let metrics: Vec<&dyn Similarity> = vec![
            &BinaryCosine,
            &fitted,
            &unfitted,
            &Jaccard,
            &WeightedJaccard,
            &Dice,
            &CommonItems,
            &aa,
        ];
        let n = ds.num_users() as UserId;
        let mut ws = ScorerWorkspace::new();
        for m in metrics {
            for u in 0..n.min(40) {
                let mut scorer = m.scorer(&ds, u, &mut ws);
                for v in 0..n.min(40) {
                    let prepared = scorer.score(v);
                    let pairwise = m.sim(&ds, u, v);
                    assert!(
                        (prepared - pairwise).abs() <= crate::SIM_EPSILON,
                        "{}: ({u},{v}) prepared {prepared} vs pairwise {pairwise}",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn default_scorer_falls_back_to_sim() {
        /// A custom metric without a prepared path.
        struct Constant;
        impl Similarity for Constant {
            fn sim(&self, _: &Dataset, u: UserId, v: UserId) -> f64 {
                f64::from(u + v)
            }
            fn name(&self) -> &'static str {
                "constant"
            }
        }
        let ds = figure2_toy();
        let mut ws = ScorerWorkspace::new();
        let mut scorer = Constant.scorer(&ds, 1, &mut ws);
        assert_eq!(scorer.score(2), 3.0);
    }

    #[test]
    fn names_are_distinct() {
        let ds = figure2_toy();
        let aa = AdamicAdar::fit(&ds);
        let cos = WeightedCosine::new();
        let metrics: Vec<&dyn Similarity> = vec![
            &BinaryCosine,
            &cos,
            &Jaccard,
            &WeightedJaccard,
            &Dice,
            &CommonItems,
            &aa,
        ];
        let mut names: Vec<&str> = metrics.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
