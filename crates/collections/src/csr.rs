//! Compressed sparse row (CSR) adjacency with weights.
//!
//! Both sides of the bipartite user–item graph — user profiles `UP_u` and
//! item profiles `IP_i` — are stored as CSR: one `offsets` array and two
//! parallel `targets`/`weights` arrays. Within each row, targets are sorted
//! ascending so intersections reduce to linear merges.

/// A weighted CSR adjacency structure.
///
/// Row `r` spans `targets[offsets[r]..offsets[r+1]]`; `weights` is parallel
/// to `targets`. Construct through [`CsrBuilder`], which sorts each row by
/// target id.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Box<[usize]>,
    targets: Box<[u32]>,
    weights: Box<[f32]>,
}

impl Csr {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.targets.len()
    }

    /// Degree (row length) of `row`.
    #[inline]
    pub fn degree(&self, row: u32) -> usize {
        let r = row as usize;
        self.offsets[r + 1] - self.offsets[r]
    }

    /// Sorted target ids of `row`.
    #[inline]
    pub fn row(&self, row: u32) -> &[u32] {
        let r = row as usize;
        &self.targets[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Weights parallel to [`Csr::row`].
    #[inline]
    pub fn row_weights(&self, row: u32) -> &[f32] {
        let r = row as usize;
        &self.weights[self.offsets[r]..self.offsets[r + 1]]
    }

    /// `(targets, weights)` of `row` in one call.
    #[inline]
    pub fn row_entries(&self, row: u32) -> (&[u32], &[f32]) {
        let r = row as usize;
        let span = self.offsets[r]..self.offsets[r + 1];
        (&self.targets[span.clone()], &self.weights[span])
    }

    /// Iterates `(row, target, weight)` over all edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.rows() as u32).flat_map(move |r| {
            let (ts, ws) = self.row_entries(r);
            ts.iter().zip(ws.iter()).map(move |(&t, &w)| (r, t, w))
        })
    }

    /// Transposes the structure: row `r` containing target `t` becomes row
    /// `t` containing target `r`. `num_cols` is the row count of the result.
    ///
    /// This is exactly the paper's item-profile construction: `IP_i = {u : i
    /// ∈ UP_u}` (Algorithm 1, lines 1–2).
    pub fn transpose(&self, num_cols: usize) -> Csr {
        let mut builder = CsrBuilder::new(num_cols);
        // Counting pass then placement pass — no per-row Vec churn.
        builder.reserve_edges(self.nnz());
        for (r, t, w) in self.iter_edges() {
            builder.push(t, r, w);
        }
        builder.build()
    }
}

/// Accumulates `(row, target, weight)` triples and assembles a [`Csr`] whose
/// rows are sorted by target id.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    num_rows: usize,
    triples: Vec<(u32, u32, f32)>,
}

impl CsrBuilder {
    /// Builder for `num_rows` rows.
    pub fn new(num_rows: usize) -> Self {
        Self {
            num_rows,
            triples: Vec::new(),
        }
    }

    /// Pre-allocates space for `n` edges.
    pub fn reserve_edges(&mut self, n: usize) {
        self.triples.reserve(n);
    }

    /// Adds one edge.
    ///
    /// # Panics
    /// Panics if `row >= num_rows`.
    #[inline]
    pub fn push(&mut self, row: u32, target: u32, weight: f32) {
        assert!(
            (row as usize) < self.num_rows,
            "row {row} out of bounds ({} rows)",
            self.num_rows
        );
        self.triples.push((row, target, weight));
    }

    /// Number of edges accumulated so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no edge has been pushed.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Assembles the CSR. Duplicate `(row, target)` pairs are merged by
    /// *summing* weights (a repeated rating is treated as reinforcement,
    /// matching e.g. Gowalla visit counts).
    pub fn build(mut self) -> Csr {
        // Counting sort on rows keeps construction O(E + R).
        let mut counts = vec![0usize; self.num_rows + 1];
        for &(r, _, _) in &self.triples {
            counts[r as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut placed: Vec<(u32, f32)> = vec![(0, 0.0); self.triples.len()];
        {
            let mut cursors = counts.clone();
            for &(r, t, w) in &self.triples {
                let slot = cursors[r as usize];
                placed[slot] = (t, w);
                cursors[r as usize] += 1;
            }
        }
        self.triples.clear();
        self.triples.shrink_to_fit();

        // Sort each row by target and merge duplicates.
        let mut offsets = Vec::with_capacity(self.num_rows + 1);
        let mut targets = Vec::with_capacity(placed.len());
        let mut weights = Vec::with_capacity(placed.len());
        offsets.push(0);
        for r in 0..self.num_rows {
            let row = &mut placed[counts[r]..counts[r + 1]];
            row.sort_unstable_by_key(|&(t, _)| t);
            let mut i = 0;
            while i < row.len() {
                let t = row[i].0;
                let mut w = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == t {
                    w += row[j].1;
                    j += 1;
                }
                targets.push(t);
                weights.push(w);
                i = j;
            }
            offsets.push(targets.len());
        }
        Csr {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            weights: weights.into_boxed_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Csr {
        // The paper's Figure 2 toy dataset:
        // Alice(0): book(0), coffee(1); Bob(1): coffee(1), cheese(2);
        // Carl(2): shopping(3); Dave(3): shopping(3).
        let mut b = CsrBuilder::new(4);
        b.push(0, 0, 1.0);
        b.push(0, 1, 1.0);
        b.push(1, 1, 1.0);
        b.push(1, 2, 1.0);
        b.push(2, 3, 1.0);
        b.push(3, 3, 1.0);
        b.build()
    }

    #[test]
    fn rows_are_sorted_and_sized() {
        let csr = toy();
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.nnz(), 6);
        assert_eq!(csr.row(0), &[0, 1]);
        assert_eq!(csr.row(1), &[1, 2]);
        assert_eq!(csr.degree(2), 1);
    }

    #[test]
    fn unsorted_input_is_sorted_per_row() {
        let mut b = CsrBuilder::new(1);
        b.push(0, 9, 1.0);
        b.push(0, 2, 2.0);
        b.push(0, 5, 3.0);
        let csr = b.build();
        assert_eq!(csr.row(0), &[2, 5, 9]);
        assert_eq!(csr.row_weights(0), &[2.0, 3.0, 1.0]);
    }

    #[test]
    fn duplicate_edges_merge_by_weight_sum() {
        let mut b = CsrBuilder::new(1);
        b.push(0, 4, 1.0);
        b.push(0, 4, 1.0);
        b.push(0, 4, 3.0);
        let csr = b.build();
        assert_eq!(csr.row(0), &[4]);
        assert_eq!(csr.row_weights(0), &[5.0]);
    }

    #[test]
    fn transpose_builds_item_profiles() {
        // IP_book={Alice}, IP_coffee={Alice,Bob}, IP_cheese={Bob},
        // IP_shopping={Carl,Dave} — the dashed arrows of Figure 2.
        let items = toy().transpose(4);
        assert_eq!(items.row(0), &[0]);
        assert_eq!(items.row(1), &[0, 1]);
        assert_eq!(items.row(2), &[1]);
        assert_eq!(items.row(3), &[2, 3]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let csr = toy();
        let back = csr.transpose(4).transpose(4);
        assert_eq!(csr, back);
    }

    #[test]
    fn empty_rows_are_representable() {
        let mut b = CsrBuilder::new(3);
        b.push(2, 0, 1.0);
        let csr = b.build();
        assert_eq!(csr.row(0), &[] as &[u32]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[0]);
    }

    #[test]
    fn iter_edges_round_trips() {
        let csr = toy();
        let edges: Vec<_> = csr.iter_edges().collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1, 1.0)));
        assert!(edges.contains(&(3, 3, 1.0)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_row_panics() {
        let mut b = CsrBuilder::new(2);
        b.push(2, 0, 1.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        proptest! {
            /// CSR construction preserves the edge multiset (with duplicate
            /// merging) regardless of insertion order.
            #[test]
            fn build_matches_btreemap_model(
                edges in proptest::collection::vec((0u32..20, 0u32..30, 1u32..5), 0..200)
            ) {
                let mut b = CsrBuilder::new(20);
                let mut model: BTreeMap<(u32, u32), f32> = BTreeMap::new();
                for (r, t, w) in edges {
                    let w = w as f32;
                    b.push(r, t, w);
                    *model.entry((r, t)).or_insert(0.0) += w;
                }
                let csr = b.build();
                let got: BTreeMap<(u32, u32), f32> =
                    csr.iter_edges().map(|(r, t, w)| ((r, t), w)).collect();
                prop_assert_eq!(got, model);
                // Rows sorted.
                for r in 0..csr.rows() as u32 {
                    prop_assert!(csr.row(r).windows(2).all(|w| w[0] < w[1]));
                }
            }

            /// Transposition is an involution on the edge set.
            #[test]
            fn transpose_involution(
                edges in proptest::collection::vec((0u32..15, 0u32..25, 1u32..3), 0..150)
            ) {
                let mut b = CsrBuilder::new(15);
                for &(r, t, w) in &edges {
                    b.push(r, t, w as f32);
                }
                let csr = b.build();
                let tt = csr.transpose(25).transpose(15);
                prop_assert_eq!(csr, tt);
            }
        }
    }
}
