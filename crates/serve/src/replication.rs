//! Primary/replica WAL shipping with automatic failover.
//!
//! One daemon is the **primary**: it accepts writes, appends them to
//! its WAL, applies them to its engine, and streams every committed
//! batch to each configured replica over a dedicated replication
//! channel before acknowledging the client (semi-synchronous
//! replication with a bounded ack wait). **Replicas** apply the stream
//! through the same [`crate::server::EngineHost`] path as local
//! recovery, serve every read op, and refuse writes with a typed
//! [`KiffError::NotPrimary`] carrying a leader hint.
//!
//! # Wire format
//!
//! The replication channel reuses the WAL's frame header — `u32 len LE
//! · u32 crc32 LE · payload` (decoded by the same helper as WAL replay
//! and recovery) — with a JSON payload per frame:
//!
//! | `t`         | direction         | fields                                          |
//! |-------------|-------------------|-------------------------------------------------|
//! | `hello`     | primary → replica | `epoch`, `seq` (primary applied), `advertise`   |
//! | `hello_ack` | replica → primary | `epoch`, `seq` (replica applied)                |
//! | `not_leader`| replica → primary | `epoch`, optional `leader` hint                 |
//! | `batch`     | primary → replica | `epoch`, `first_seq`, `batch`, `lag`, `updates` |
//! | `heartbeat` | primary → replica | `epoch`, `seq`, `lag`                           |
//! | `ack`       | replica → primary | `epoch`, `seq`                                  |
//!
//! The exchange is strict request/response: every `batch` and
//! `heartbeat` gets exactly one `ack` (or `not_leader`, which closes
//! the stream).
//!
//! # Epoch fencing
//!
//! Leadership is guarded by a monotonic **epoch** persisted in
//! snapshots (format v3). A replica accepts an inbound stream iff the
//! sender's epoch is newer than its own, or equal while it is still a
//! replica; anything staler is answered with `not_leader` and closed.
//! Promotion bumps the epoch and snapshots it *before* the new primary
//! acknowledges any write, so a partitioned old primary's late frames
//! are rejected even across a replica restart. A primary that sees a
//! higher epoch anywhere — an inbound hello, a `not_leader` answer, a
//! peer's health — demotes itself back to replica.
//!
//! # Failover
//!
//! Replicas detect a dead primary by silence: no frame for four
//! heartbeat intervals triggers an election. The candidate polls every
//! peer's `health` over the normal client port; it promotes only if
//! the round **resolved a majority of the group** — itself plus peers
//! that answered or are provably down (an active connection refusal;
//! timeouts prove nothing) — no live primary with a current epoch
//! answered, and no other replica is further ahead (ties break toward
//! the lexicographically smallest advertised address). A replica cut
//! off from every peer keeps retrying inconclusive rounds
//! (`serve.elections_inconclusive`) instead of splitting the brain.
//! Because acknowledged writes were replicated
//! semi-synchronously, the winner owns every acked batch, and
//! [`crate::client::FailoverClient`] replays un-acked batch ids
//! against the new leader where the applied-batch high-water mark
//! dedups them — exactly-once across a primary kill.
//!
//! A known limit, shared with every semi-sync design: an old primary
//! that crashed with *un-replicated, un-acked* suffix batches diverges
//! from the new timeline and must be re-seeded from a fresh data dir
//! before rejoining; `serve.repl_diverged` counts the refusal. By
//! default replication is best-effort beyond the bounded ack wait —
//! with every replica down the primary still acks writes
//! (`serve.repl_ack_timeouts` ticks). Setting
//! [`ReplicationConfig::min_sync_replicas`] hardens this: a write that
//! fewer replicas confirmed is refused with a retryable
//! [`KiffError::Unavailable`] (`serve.repl_underreplicated`), so every
//! *acked* write really does survive losing the primary.
//!
//! The `repl.stream`, `repl.ack`, and `repl.heartbeat` failpoints
//! ([`kiff_core::fault`]) cut batch frames, replica acks, and
//! heartbeats respectively — the chaos tests drive every failover path
//! through them.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kiff_core::fault::{self, points};
use kiff_core::KiffError;
use kiff_online::Update;
use kiff_telemetry::Registry;
use serde_json::{json, Value};

use crate::client::Client;
use crate::server::Shared;
use crate::wal::{crc32, decode_frame_header, Wal};
use crate::wire::{self, MAX_FRAME};

/// How often blocked reads wake up to poll the shutdown flag.
const POLL: Duration = Duration::from_millis(25);
/// Bound on handshake and per-frame ack waits.
const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(5);
/// Bound on the graceful-shutdown final drain: how long a dying
/// primary keeps retrying to land WAL batches its replicas are still
/// missing before giving up on them.
const FINAL_DRAIN_TIMEOUT: Duration = Duration::from_secs(2);
/// Heartbeat intervals of silence before a replica suspects the
/// primary is dead and starts an election.
const SUSPECT_AFTER: u32 = 4;

/// Replication tuning for one daemon.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Address the replication channel listens on (`host:port`,
    /// `:0` for ephemeral).
    pub repl_listen: String,
    /// Client address of the initial primary (`None` = start as the
    /// primary).
    pub replica_of: Option<String>,
    /// Client addresses of every daemon in the group (self included or
    /// not — self is skipped), used for streaming targets, failure
    /// detection, and elections.
    pub peers: Vec<String>,
    /// Heartbeat interval; a replica suspects the primary after four
    /// silent intervals.
    pub heartbeat: Duration,
    /// How long a write waits for each live replica's ack before
    /// giving up on it for this batch.
    pub ack_timeout: Duration,
    /// Minimum replicas that must ack a batch within `ack_timeout` for
    /// the client write to succeed. Below the bar the write is refused
    /// with a retryable [`KiffError::Unavailable`] (it stays in the
    /// WAL, so the client's retry dedups once enough replicas are
    /// back). `0` (the default) keeps best-effort semi-sync: timeouts
    /// are counted but never fail the write.
    pub min_sync_replicas: usize,
}

impl ReplicationConfig {
    /// Replication listening on `repl_listen`, primary role, no peers,
    /// 500 ms heartbeat, 1 s ack wait.
    pub fn new(repl_listen: impl Into<String>) -> Self {
        Self {
            repl_listen: repl_listen.into(),
            replica_of: None,
            peers: Vec::new(),
            heartbeat: Duration::from_millis(500),
            ack_timeout: Duration::from_secs(1),
            min_sync_replicas: 0,
        }
    }

    /// Starts as a replica of the primary at `addr` (client address).
    pub fn replica_of(mut self, addr: impl Into<String>) -> Self {
        self.replica_of = Some(addr.into());
        self
    }

    /// Sets the peer list (client addresses).
    pub fn with_peers(mut self, peers: Vec<String>) -> Self {
        self.peers = peers;
        self
    }

    /// Sets the heartbeat interval.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Sets the per-replica ack wait.
    pub fn with_ack_timeout(mut self, ack_timeout: Duration) -> Self {
        self.ack_timeout = ack_timeout;
        self
    }

    /// Sets the minimum in-sync replica count a write needs to ack.
    pub fn with_min_sync_replicas(mut self, min: usize) -> Self {
        self.min_sync_replicas = min;
        self
    }
}

/// A daemon's current replication role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes and streams them to replicas.
    Primary,
    /// Applies the primary's stream; refuses writes with
    /// [`KiffError::NotPrimary`].
    Replica,
}

impl Role {
    /// The string the `health` op reports (`primary` | `replica`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Replica => "replica",
        }
    }
}

/// One committed batch queued for a replica connection.
pub(crate) struct ReplBatch {
    epoch: u64,
    first_seq: u64,
    batch_id: u64,
    updates: Arc<Vec<Update>>,
    ack: SyncSender<()>,
}

struct Subscriber {
    tx: mpsc::Sender<ReplBatch>,
    depth: Arc<AtomicU64>,
    closed: Arc<AtomicBool>,
}

/// One streaming connection's side of the publish hub. Closing it (on
/// any outbound exit) zeroes the depth slot so queued-but-undeliverable
/// batches stop counting toward primary-side lag, and marks the
/// subscriber for pruning.
struct Subscription {
    rx: Receiver<ReplBatch>,
    depth: Arc<AtomicU64>,
    closed: Arc<AtomicBool>,
}

impl Subscription {
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.depth.store(0, Ordering::SeqCst);
    }
}

/// Shared replication state: role, epoch, leader hint, lag, and the
/// publish hub feeding per-replica streaming threads.
pub struct ReplState {
    config: ReplicationConfig,
    repl_addr: String,
    advertise: String,
    role: Mutex<Role>,
    epoch: AtomicU64,
    leader_hint: Mutex<Option<String>>,
    lag: AtomicU64,
    last_frame: Mutex<Instant>,
    subscribers: Mutex<Vec<Subscriber>>,
    telemetry: Registry,
}

fn relock<'a, T>(
    guard: Result<std::sync::MutexGuard<'a, T>, PoisonError<std::sync::MutexGuard<'a, T>>>,
) -> std::sync::MutexGuard<'a, T> {
    guard.unwrap_or_else(PoisonError::into_inner)
}

impl ReplState {
    pub(crate) fn new(
        config: ReplicationConfig,
        repl_addr: String,
        advertise: String,
        epoch: u64,
        telemetry: Registry,
    ) -> Self {
        let role = if config.replica_of.is_some() {
            Role::Replica
        } else {
            Role::Primary
        };
        telemetry
            .gauge("serve.role")
            .set(matches!(role, Role::Primary) as i64);
        let leader_hint = match role {
            Role::Primary => Some(advertise.clone()),
            Role::Replica => config.replica_of.clone(),
        };
        Self {
            config,
            repl_addr,
            advertise,
            role: Mutex::new(role),
            epoch: AtomicU64::new(epoch),
            leader_hint: Mutex::new(leader_hint),
            lag: AtomicU64::new(0),
            last_frame: Mutex::new(Instant::now()),
            subscribers: Mutex::new(Vec::new()),
            telemetry,
        }
    }

    /// The daemon's current role.
    pub fn role(&self) -> Role {
        *relock(self.role.lock())
    }

    /// The current leadership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Where this daemon believes writes should go: its own client
    /// address while primary, the last primary that streamed to it (or
    /// that an election discovered) while replica.
    pub fn leader_hint(&self) -> Option<String> {
        relock(self.leader_hint.lock()).clone()
    }

    /// The replication channel's actually-bound address.
    pub fn repl_addr(&self) -> &str {
        &self.repl_addr
    }

    /// The client address this daemon advertises as a leader hint.
    pub fn advertise(&self) -> &str {
        &self.advertise
    }

    /// Replication lag in batches: on the primary the deepest
    /// per-replica queue, on a replica the primary's last reported
    /// queue depth toward it.
    pub fn lag(&self) -> u64 {
        match self.role() {
            Role::Primary => {
                let mut subs = relock(self.subscribers.lock());
                // A dead streaming thread never drains its queue; drop
                // it here so an idle primary's lag reflects only live
                // connections.
                subs.retain(|s| !s.closed.load(Ordering::SeqCst));
                subs.iter()
                    .map(|s| s.depth.load(Ordering::SeqCst))
                    .max()
                    .unwrap_or(0)
            }
            Role::Replica => self.lag.load(Ordering::SeqCst),
        }
    }

    fn heartbeat(&self) -> Duration {
        self.config.heartbeat
    }

    fn set_role(&self, role: Role) {
        *relock(self.role.lock()) = role;
        self.telemetry
            .gauge("serve.role")
            .set(matches!(role, Role::Primary) as i64);
    }

    fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
    }

    fn set_leader_hint(&self, hint: Option<String>) {
        *relock(self.leader_hint.lock()) = hint;
    }

    fn set_lag(&self, lag: u64) {
        self.lag.store(lag, Ordering::SeqCst);
        self.telemetry
            .gauge("serve.replication_lag_batches")
            .set(lag as i64);
    }

    fn touch(&self) {
        *relock(self.last_frame.lock()) = Instant::now();
    }

    fn silent_for(&self) -> Duration {
        relock(self.last_frame.lock()).elapsed()
    }

    /// Peers to stream to / poll in an election: the configured peer
    /// list plus the initial primary, minus ourselves.
    fn other_peers(&self) -> Vec<String> {
        let mut peers = self.config.peers.clone();
        if let Some(primary) = &self.config.replica_of {
            if !peers.contains(primary) {
                peers.push(primary.clone());
            }
        }
        peers.retain(|p| p != &self.advertise);
        peers
    }

    /// Registers a new streaming connection with the publish hub.
    fn subscribe(&self) -> Subscription {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicU64::new(0));
        let closed = Arc::new(AtomicBool::new(false));
        relock(self.subscribers.lock()).push(Subscriber {
            tx,
            depth: Arc::clone(&depth),
            closed: Arc::clone(&closed),
        });
        Subscription { rx, depth, closed }
    }

    /// Builds the under-replication refusal for a write that `acked`
    /// replicas confirmed, short of the configured minimum.
    fn under_replicated(&self, acked: usize) -> KiffError {
        self.telemetry.counter("serve.repl_underreplicated").incr();
        KiffError::Unavailable {
            op: "update".into(),
            detail: format!(
                "{acked} in-sync replica(s) acknowledged, {} required; \
                 the batch is in the WAL and a retry dedups once replicas return",
                self.config.min_sync_replicas
            ),
        }
    }

    /// Fails fast when fewer live streaming connections exist than the
    /// configured minimum in-sync replica count — the gate the dedup
    /// path uses, since a retried batch already sits in the WAL and
    /// ships over any attached stream.
    pub(crate) fn require_min_sync(&self) -> Result<(), KiffError> {
        if self.config.min_sync_replicas == 0 {
            return Ok(());
        }
        let live = {
            let mut subs = relock(self.subscribers.lock());
            subs.retain(|s| !s.closed.load(Ordering::SeqCst));
            subs.len()
        };
        if live < self.config.min_sync_replicas {
            return Err(self.under_replicated(live));
        }
        Ok(())
    }

    /// Publishes a committed batch to every live streaming connection
    /// and waits (bounded by `ack_timeout`) for each to confirm the
    /// replica applied it — the semi-synchronous half of the
    /// durability story. Called with the host mutex held, so batches
    /// reach every replica in commit order.
    ///
    /// With `min_sync_replicas` > 0 the ack count is enforced: fewer
    /// confirmed copies than the minimum fails the write with a
    /// retryable [`KiffError::Unavailable`] instead of silently
    /// degrading to zero-replication durability.
    pub(crate) fn publish_and_wait(
        &self,
        first_seq: u64,
        batch_id: u64,
        updates: &[Update],
    ) -> Result<(), KiffError> {
        let epoch = self.epoch();
        let shared = Arc::new(updates.to_vec());
        let mut acks: Vec<Receiver<()>> = Vec::new();
        {
            let mut subs = relock(self.subscribers.lock());
            subs.retain_mut(|s| {
                if s.closed.load(Ordering::SeqCst) {
                    return false;
                }
                let (ack_tx, ack_rx) = mpsc::sync_channel(1);
                let batch = ReplBatch {
                    epoch,
                    first_seq,
                    batch_id,
                    updates: Arc::clone(&shared),
                    ack: ack_tx,
                };
                match s.tx.send(batch) {
                    Ok(()) => {
                        s.depth.fetch_add(1, Ordering::SeqCst);
                        acks.push(ack_rx);
                        true
                    }
                    // The streaming thread exited; drop the dead
                    // subscription — the supervisor will redial.
                    Err(_) => false,
                }
            });
        }
        let deadline = Instant::now() + self.config.ack_timeout;
        let mut acked = 0usize;
        for rx in acks {
            let left = deadline.saturating_duration_since(Instant::now());
            if rx.recv_timeout(left).is_ok() {
                acked += 1;
            } else {
                self.telemetry.counter("serve.repl_ack_timeouts").incr();
            }
        }
        self.telemetry
            .gauge("serve.replication_lag_batches")
            .set(self.lag() as i64);
        if acked < self.config.min_sync_replicas {
            return Err(self.under_replicated(acked));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- framing

/// Writes one replication frame: `u32 len LE · u32 crc32 LE · JSON`.
pub fn write_frame(stream: &mut TcpStream, frame: &Value) -> Result<(), KiffError> {
    let text = serde_json::to_string(frame)
        .map_err(|e| KiffError::Protocol(format!("replication frame encode: {e}")))?;
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME)
        .ok_or_else(|| KiffError::Protocol("replication frame too large".into()))?;
    let mut buf = Vec::with_capacity(8 + bytes.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&crc32(bytes).to_le_bytes());
    buf.extend_from_slice(bytes);
    stream.write_all(&buf).map_err(KiffError::Io)?;
    stream.flush().map_err(KiffError::Io)
}

/// Reads one replication frame, blocking until it arrives (a stream
/// read timeout surfaces as an `Io` error). The checksum is verified
/// before the JSON is parsed.
pub fn read_frame(stream: &mut TcpStream) -> Result<Value, KiffError> {
    let mut header = [0u8; 8];
    stream.read_exact(&mut header).map_err(KiffError::Io)?;
    decode_and_read(&header, |buf| stream.read_exact(buf).map_err(KiffError::Io))
}

fn decode_and_read(
    header: &[u8; 8],
    mut read_body: impl FnMut(&mut [u8]) -> Result<(), KiffError>,
) -> Result<Value, KiffError> {
    let (len, crc) = decode_frame_header(header, MAX_FRAME)
        .ok_or_else(|| KiffError::corrupt("replication stream", "oversized or short frame"))?;
    let mut bytes = vec![0u8; len as usize];
    read_body(&mut bytes)?;
    if crc32(&bytes) != crc {
        return Err(KiffError::corrupt(
            "replication stream",
            "frame checksum mismatch",
        ));
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| KiffError::corrupt("replication stream", "frame is not UTF-8"))?;
    serde_json::from_str(&text).map_err(|e| KiffError::Protocol(format!("replication frame: {e}")))
}

enum ReplRead {
    Frame(Value),
    /// The peer closed the stream cleanly (EOF before a header byte).
    Eof,
    /// The daemon is shutting down.
    Stop,
    /// The deadline passed with no complete frame.
    Deadline,
}

/// Reads one frame, polling `shutdown` (and `deadline`, if any) while
/// the stream is idle. The stream must carry a short read timeout.
fn read_frame_poll(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<ReplRead, KiffError> {
    let mut header = [0u8; 8];
    match fill_poll(stream, &mut header, shutdown, deadline, true)? {
        Fill::Done => {}
        Fill::Eof => return Ok(ReplRead::Eof),
        Fill::Stop => return Ok(ReplRead::Stop),
        Fill::Deadline => return Ok(ReplRead::Deadline),
    }
    let value = decode_and_read(&header, |buf| {
        match fill_poll(stream, buf, shutdown, deadline, false)? {
            Fill::Done => Ok(()),
            Fill::Eof | Fill::Stop | Fill::Deadline => Err(KiffError::Protocol(
                "replication stream closed mid-frame".into(),
            )),
        }
    })?;
    Ok(ReplRead::Frame(value))
}

enum Fill {
    Done,
    Eof,
    Stop,
    Deadline,
}

fn fill_poll(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    deadline: Option<Instant>,
    allow_eof: bool,
) -> Result<Fill, KiffError> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(Fill::Stop);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(Fill::Deadline);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_eof {
                    return Ok(Fill::Eof);
                }
                return Err(KiffError::Protocol(
                    "replication stream closed mid-frame".into(),
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(KiffError::Io(e)),
        }
    }
    Ok(Fill::Done)
}

fn frame_type(frame: &Value) -> &str {
    frame.get("t").and_then(Value::as_str).unwrap_or("")
}

fn field_u64(frame: &Value, key: &str) -> u64 {
    frame.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn field_str(frame: &Value, key: &str) -> Option<String> {
    frame.get(key).and_then(Value::as_str).map(String::from)
}

fn not_leader_frame(repl: &ReplState) -> Value {
    let leader = match repl.leader_hint() {
        Some(addr) => Value::String(addr),
        None => Value::Null,
    };
    json!({"t": "not_leader", "epoch": repl.epoch(), "leader": leader})
}

// ------------------------------------------------------------ thread entry

/// Spawns the replication threads for a configured daemon: the
/// replication-channel acceptor (every role), the primary-side
/// streaming supervisor, and the replica-side failure monitor. All
/// three poll the shutdown flag; `Server::run` joins them.
pub(crate) fn spawn_replication(
    shared: &Arc<Shared>,
    listener: TcpListener,
) -> Vec<JoinHandle<()>> {
    let repl = shared.repl.clone().expect("replication state installed");
    let mut handles = Vec::new();
    {
        let shared = Arc::clone(shared);
        let repl = Arc::clone(&repl);
        handles.push(std::thread::spawn(move || {
            run_acceptor(&shared, &repl, listener);
        }));
    }
    {
        let shared = Arc::clone(shared);
        let repl = Arc::clone(&repl);
        handles.push(std::thread::spawn(move || {
            run_supervisor(&shared, &repl);
        }));
    }
    {
        let shared = Arc::clone(shared);
        handles.push(std::thread::spawn(move || {
            run_monitor(&shared, &repl);
        }));
    }
    handles
}

/// Sleeps up to `total`, waking early when `shutdown` flips.
fn sleep_poll(shutdown: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !shutdown.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(POLL));
    }
}

// -------------------------------------------------------- inbound (replica)

fn run_acceptor(shared: &Arc<Shared>, repl: &Arc<ReplState>, listener: TcpListener) {
    let _ = listener.set_nonblocking(true);
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let repl = Arc::clone(repl);
                conns.push(std::thread::spawn(move || {
                    if run_inbound(&shared, &repl, stream).is_err() {
                        shared.telemetry.counter("serve.repl_conn_drops").incr();
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        conns.retain(|c| !c.is_finished());
    }
    for conn in conns {
        let _ = conn.join();
    }
}

/// Steps down to `epoch`, persisting the fence. Takes the host lock.
fn adopt(shared: &Shared, repl: &ReplState, epoch: u64, hint: Option<String>) {
    let mut host = shared.lock_host();
    if epoch <= repl.epoch() {
        return;
    }
    if host.adopt_epoch(epoch).is_err() {
        // The fence could not be persisted (disk trouble); stay on the
        // old epoch — the stream will be refused and retried.
        return;
    }
    let was_primary = repl.role() == Role::Primary;
    repl.set_epoch(epoch);
    repl.set_role(Role::Replica);
    repl.set_leader_hint(hint);
    repl.touch();
    if was_primary {
        shared.telemetry.counter("serve.demotions").incr();
    }
}

/// Serves one inbound replication stream: handshake with epoch
/// fencing, then apply `batch`/`heartbeat` frames until EOF, shutdown,
/// or a stale epoch.
fn run_inbound(
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    mut stream: TcpStream,
) -> Result<(), KiffError> {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(POLL)).map_err(KiffError::Io)?;
    stream
        .set_write_timeout(Some(EXCHANGE_TIMEOUT))
        .map_err(KiffError::Io)?;
    let hello = match read_frame_poll(
        &mut stream,
        &shared.shutdown,
        Some(Instant::now() + EXCHANGE_TIMEOUT),
    )? {
        ReplRead::Frame(v) => v,
        _ => return Ok(()),
    };
    if frame_type(&hello) != "hello" {
        return Err(KiffError::Protocol(format!(
            "replication stream opened with {:?}, expected hello",
            frame_type(&hello)
        )));
    }
    let h_epoch = field_u64(&hello, "epoch");
    let accept =
        h_epoch > repl.epoch() || (h_epoch == repl.epoch() && repl.role() == Role::Replica);
    if !accept {
        shared.telemetry.counter("serve.repl_fenced").incr();
        let _ = write_frame(&mut stream, &not_leader_frame(repl));
        return Ok(());
    }
    if h_epoch > repl.epoch() {
        adopt(shared, repl, h_epoch, field_str(&hello, "advertise"));
        if repl.epoch() < h_epoch {
            // adopt failed; refuse the stream rather than apply frames
            // from an epoch we could not fence.
            let _ = write_frame(&mut stream, &not_leader_frame(repl));
            return Ok(());
        }
    } else if let Some(advertise) = field_str(&hello, "advertise") {
        repl.set_leader_hint(Some(advertise));
    }
    repl.touch();
    let applied = shared.lock_host().store_seq();
    write_frame(
        &mut stream,
        &json!({"t": "hello_ack", "epoch": repl.epoch(), "seq": applied}),
    )?;
    loop {
        let frame = match read_frame_poll(&mut stream, &shared.shutdown, None)? {
            ReplRead::Frame(v) => v,
            ReplRead::Eof | ReplRead::Stop | ReplRead::Deadline => return Ok(()),
        };
        let f_epoch = field_u64(&frame, "epoch");
        if f_epoch < repl.epoch() {
            // A stale primary kept streaming across our promotion (or a
            // newer epoch we adopted elsewhere): fence it off.
            shared.telemetry.counter("serve.repl_fenced").incr();
            let _ = write_frame(&mut stream, &not_leader_frame(repl));
            return Ok(());
        }
        if f_epoch > repl.epoch() {
            adopt(shared, repl, f_epoch, repl.leader_hint());
            if repl.epoch() < f_epoch {
                // Persisting the fence failed (disk trouble); refuse
                // the stream like the handshake does rather than apply
                // frames from an epoch we could not adopt.
                let _ = write_frame(&mut stream, &not_leader_frame(repl));
                return Ok(());
            }
        }
        let seq = match frame_type(&frame) {
            "batch" => {
                repl.touch();
                repl.set_lag(field_u64(&frame, "lag"));
                let first_seq = field_u64(&frame, "first_seq");
                let batch_id = field_u64(&frame, "batch");
                let updates: Vec<Update> = frame
                    .get("updates")
                    .and_then(Value::as_array)
                    .ok_or_else(|| KiffError::Protocol("batch frame missing updates".into()))?
                    .iter()
                    .map(wire::update_from_value)
                    .collect::<Result<_, _>>()?;
                let mut host = shared.lock_host();
                // Promotion bumps the epoch under this same host lock,
                // so re-checking here closes the gap between the
                // loop-top epoch check and the apply: a deposed
                // primary's last in-flight batch must not land on the
                // new timeline.
                if f_epoch < repl.epoch() {
                    drop(host);
                    shared.telemetry.counter("serve.repl_fenced").incr();
                    let _ = write_frame(&mut stream, &not_leader_frame(repl));
                    return Ok(());
                }
                host.apply_replicated(first_seq, batch_id, &updates)?
            }
            "heartbeat" => {
                repl.touch();
                repl.set_lag(field_u64(&frame, "lag"));
                shared.lock_host().store_seq()
            }
            other => {
                return Err(KiffError::Protocol(format!(
                    "unexpected replication frame {other:?}"
                )));
            }
        };
        // An armed repl.ack failpoint kills the connection before the
        // ack leaves — the primary re-sends after redialling and the
        // seq check deduplicates, exactly like a real torn ack.
        fault::check_ctx(points::REPL_ACK, repl.repl_addr())?;
        write_frame(
            &mut stream,
            &json!({"t": "ack", "epoch": repl.epoch(), "seq": seq}),
        )?;
    }
}

// ------------------------------------------------------- outbound (primary)

/// What a peer's `health` told us, trimmed to election needs.
struct PeerHealth {
    role: Option<String>,
    epoch: u64,
    seq: u64,
    repl_addr: Option<String>,
}

fn poll_health(addr: &str) -> Result<PeerHealth, KiffError> {
    let mut client = Client::connect(addr)?;
    let health = client.health()?;
    Ok(PeerHealth {
        role: health.role,
        epoch: health.epoch,
        seq: health.seq.unwrap_or(0),
        repl_addr: health.repl_addr,
    })
}

/// Primary-side supervisor: keeps one streaming connection per peer
/// alive while this daemon leads, discovering each peer's replication
/// address through its client-port `health`.
fn run_supervisor(shared: &Arc<Shared>, repl: &Arc<ReplState>) {
    let mut conns: HashMap<String, (Arc<AtomicBool>, JoinHandle<()>)> = HashMap::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        if repl.role() == Role::Primary {
            for peer in repl.other_peers() {
                if conns
                    .get(&peer)
                    .is_some_and(|(alive, _)| alive.load(Ordering::SeqCst))
                {
                    continue;
                }
                if let Some((_, handle)) = conns.remove(&peer) {
                    let _ = handle.join();
                }
                let Ok(health) = poll_health(&peer) else {
                    continue;
                };
                if health.epoch > repl.epoch() {
                    // The group moved on without us; step down.
                    adopt(shared, repl, health.epoch, Some(peer.clone()));
                    break;
                }
                let Some(peer_repl) = health.repl_addr else {
                    continue;
                };
                let alive = Arc::new(AtomicBool::new(true));
                let handle = {
                    let shared = Arc::clone(shared);
                    let repl = Arc::clone(repl);
                    let alive = Arc::clone(&alive);
                    std::thread::spawn(move || {
                        if run_outbound(&shared, &repl, &peer_repl).is_err() {
                            shared.telemetry.counter("serve.repl_conn_drops").incr();
                        }
                        alive.store(false, Ordering::SeqCst);
                    })
                };
                conns.insert(peer, (alive, handle));
            }
        }
        sleep_poll(&shared.shutdown, repl.heartbeat());
    }
    for (_, (_, handle)) in conns {
        let _ = handle.join();
    }
}

/// Streams the WAL to one replica: hello/ack handshake, catch-up from
/// disk, then live batches from the publish hub with heartbeats while
/// idle. Returns when the connection drops, the daemon stops leading,
/// or shutdown begins.
fn run_outbound(
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    peer_repl: &str,
) -> Result<(), KiffError> {
    // Subscribe *before* reading the WAL so no batch committed during
    // catch-up can fall between the replay and the live stream; the
    // seq check below drops the overlap.
    let sub = repl.subscribe();
    let result = stream_to_replica(shared, repl, peer_repl, &sub);
    // Whatever ended the stream, this queue will never drain again:
    // zero its depth slot so `lag()` stops counting it and mark the
    // subscriber for pruning.
    sub.close();
    result
}

fn stream_to_replica(
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    peer_repl: &str,
    sub: &Subscription,
) -> Result<(), KiffError> {
    let (rx, depth) = (&sub.rx, &sub.depth);
    let mut stream = TcpStream::connect(peer_repl).map_err(KiffError::Io)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(POLL)).map_err(KiffError::Io)?;
    stream
        .set_write_timeout(Some(EXCHANGE_TIMEOUT))
        .map_err(KiffError::Io)?;
    let my_seq = shared.lock_host().store_seq();
    write_frame(
        &mut stream,
        &json!({
            "t": "hello",
            "epoch": repl.epoch(),
            "seq": my_seq,
            "advertise": repl.advertise().to_string()
        }),
    )?;
    let ack = match read_frame_poll(
        &mut stream,
        &shared.shutdown,
        Some(Instant::now() + EXCHANGE_TIMEOUT),
    )? {
        ReplRead::Frame(v) => v,
        _ => return Ok(()),
    };
    match frame_type(&ack) {
        "hello_ack" => {}
        "not_leader" => {
            handle_not_leader(shared, repl, &ack);
            return Ok(());
        }
        other => {
            return Err(KiffError::Protocol(format!(
                "expected hello_ack, got {other:?}"
            )));
        }
    }
    let replica_seq = field_u64(&ack, "seq");
    if replica_seq > my_seq {
        // The replica holds a diverged suffix (it outlived an older
        // timeline); refuse to stream rather than corrupt it.
        shared.telemetry.counter("serve.repl_diverged").incr();
        return Err(KiffError::Protocol(format!(
            "replica at {peer_repl} applied seq {replica_seq} > primary seq {my_seq}; re-seed it"
        )));
    }
    let mut last_sent = replica_seq;
    if replica_seq < my_seq {
        let dir = shared
            .lock_host()
            .store_dir()
            .ok_or_else(|| KiffError::Protocol("replication requires a data dir".into()))?;
        // WAL segments are immutable once written, so catch-up reads
        // them without the host lock; writes continuing in parallel
        // land in the subscription instead.
        let replay = Wal::replay(&dir, replica_seq, &shared.telemetry)?;
        for (first_seq, batch_id, updates) in replay.batches_with_ids() {
            if first_seq <= last_sent {
                continue;
            }
            match send_batch(
                &mut stream,
                shared,
                repl,
                peer_repl,
                repl.epoch(),
                first_seq,
                batch_id,
                &updates,
                depth.load(Ordering::SeqCst),
                &shared.shutdown,
            )? {
                BatchOutcome::Acked => last_sent = first_seq + updates.len() as u64 - 1,
                BatchOutcome::NotLeader => return Ok(()),
            }
        }
        shared.telemetry.counter("serve.repl_catchups").incr();
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain batches already published so every acked write is
            // on the replica before a graceful exit. The ack reads poll
            // a never-set stop — the real flag is already up, and these
            // frames must still complete (bounded by EXCHANGE_TIMEOUT).
            let drain_stop = AtomicBool::new(false);
            while let Ok(batch) = rx.try_recv() {
                if forward_batch(
                    &mut stream,
                    shared,
                    repl,
                    peer_repl,
                    &batch,
                    depth,
                    &mut last_sent,
                    &drain_stop,
                )? == BatchOutcome::NotLeader
                {
                    return Ok(());
                }
            }
            return Ok(());
        }
        if repl.role() != Role::Primary {
            return Ok(());
        }
        match rx.recv_timeout(repl.heartbeat()) {
            Ok(batch) => {
                if forward_batch(
                    &mut stream,
                    shared,
                    repl,
                    peer_repl,
                    &batch,
                    depth,
                    &mut last_sent,
                    &shared.shutdown,
                )? == BatchOutcome::NotLeader
                {
                    return Ok(());
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // An armed repl.heartbeat failpoint suppresses the
                // heartbeat — the replica sees silence and, enough
                // intervals later, starts an election.
                if fault::check_ctx(points::REPL_HEARTBEAT, peer_repl).is_err() {
                    shared
                        .telemetry
                        .counter("serve.repl_heartbeats_suppressed")
                        .incr();
                    continue;
                }
                write_frame(
                    &mut stream,
                    &json!({
                        "t": "heartbeat",
                        "epoch": repl.epoch(),
                        "seq": last_sent,
                        "lag": depth.load(Ordering::SeqCst)
                    }),
                )?;
                match await_ack(&mut stream, &shared.shutdown)? {
                    AckOutcome::Ack => {}
                    AckOutcome::NotLeader(frame) => {
                        handle_not_leader(shared, repl, &frame);
                        return Ok(());
                    }
                    AckOutcome::Gone => return Ok(()),
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

#[derive(PartialEq, Eq)]
enum BatchOutcome {
    Acked,
    NotLeader,
}

/// Sends one hub batch, settling its depth slot and publisher ack.
#[allow(clippy::too_many_arguments)]
fn forward_batch(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    peer_repl: &str,
    batch: &ReplBatch,
    depth: &Arc<AtomicU64>,
    last_sent: &mut u64,
    stop: &AtomicBool,
) -> Result<BatchOutcome, KiffError> {
    let result = if batch.first_seq <= *last_sent {
        // Already shipped during catch-up.
        Ok(BatchOutcome::Acked)
    } else {
        send_batch(
            stream,
            shared,
            repl,
            peer_repl,
            batch.epoch,
            batch.first_seq,
            batch.batch_id,
            &batch.updates,
            depth.load(Ordering::SeqCst).saturating_sub(1),
            stop,
        )
    };
    depth.fetch_sub(1, Ordering::SeqCst);
    match &result {
        Ok(BatchOutcome::Acked) => {
            *last_sent = (*last_sent).max(batch.first_seq + batch.updates.len() as u64 - 1);
            let _ = batch.ack.send(());
        }
        Ok(BatchOutcome::NotLeader) | Err(_) => {}
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn send_batch(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    peer_repl: &str,
    epoch: u64,
    first_seq: u64,
    batch_id: u64,
    updates: &[Update],
    lag: u64,
    stop: &AtomicBool,
) -> Result<BatchOutcome, KiffError> {
    // An armed repl.stream failpoint tears the connection before the
    // frame leaves — the batch stays queued WAL-side and ships on the
    // next redial's catch-up.
    fault::check_ctx(points::REPL_STREAM, peer_repl)?;
    let updates_json: Vec<Value> = updates.iter().map(wire::update_to_value).collect();
    write_frame(
        stream,
        &json!({
            "t": "batch",
            "epoch": epoch,
            "first_seq": first_seq,
            "batch": batch_id,
            "lag": lag,
            "updates": updates_json
        }),
    )?;
    match await_ack(stream, stop)? {
        AckOutcome::Ack => Ok(BatchOutcome::Acked),
        AckOutcome::NotLeader(frame) => {
            handle_not_leader(shared, repl, &frame);
            Ok(BatchOutcome::NotLeader)
        }
        AckOutcome::Gone => Err(KiffError::Protocol(
            "replication stream closed awaiting ack".into(),
        )),
    }
}

enum AckOutcome {
    Ack,
    NotLeader(Value),
    Gone,
}

fn await_ack(stream: &mut TcpStream, stop: &AtomicBool) -> Result<AckOutcome, KiffError> {
    match read_frame_poll(stream, stop, Some(Instant::now() + EXCHANGE_TIMEOUT))? {
        ReplRead::Frame(frame) => match frame_type(&frame) {
            "ack" => Ok(AckOutcome::Ack),
            "not_leader" => Ok(AckOutcome::NotLeader(frame)),
            other => Err(KiffError::Protocol(format!("expected ack, got {other:?}"))),
        },
        ReplRead::Eof | ReplRead::Stop => Ok(AckOutcome::Gone),
        ReplRead::Deadline => Err(KiffError::Protocol("replication ack timed out".into())),
    }
}

fn handle_not_leader(shared: &Arc<Shared>, repl: &Arc<ReplState>, frame: &Value) {
    let epoch = field_u64(frame, "epoch");
    if epoch > repl.epoch() {
        adopt(shared, repl, epoch, field_str(frame, "leader"));
    }
}

/// Bounded last-chance drain on graceful shutdown, called by
/// `Server::run` after every worker and replication thread has joined
/// (so the WAL can no longer advance). A stream torn moments before
/// the flag flipped leaves acked batches only in this WAL — the
/// supervisor had no time to redial — so a leading daemon re-dials
/// each lagging peer and ships the missing tail from disk, retrying
/// torn attempts until [`FINAL_DRAIN_TIMEOUT`].
pub(crate) fn final_drain(shared: &Arc<Shared>, repl: &Arc<ReplState>) {
    if repl.role() != Role::Primary {
        return;
    }
    let my_seq = shared.lock_host().store_seq();
    let deadline = Instant::now() + FINAL_DRAIN_TIMEOUT;
    for peer in repl.other_peers() {
        while Instant::now() < deadline {
            // Unreachable peer, a peer that moved the group to a newer
            // epoch, or one already caught up: nothing left to ship.
            let Ok(health) = poll_health(&peer) else {
                break;
            };
            if health.epoch > repl.epoch() || health.seq >= my_seq {
                break;
            }
            let Some(peer_repl) = health.repl_addr else {
                break;
            };
            if final_catch_up(shared, repl, &peer_repl, my_seq).is_err() {
                // Torn mid-drain (a failpoint or a real reset); the
                // next round restarts from the peer's new ack point.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// One catch-up dial for [`final_drain`]: hello at our current seq,
/// then every WAL batch past the replica's ack point. Runs with the
/// shutdown flag already set, so frame reads poll a local never-set
/// stop and rely on the `EXCHANGE_TIMEOUT` deadlines instead.
fn final_catch_up(
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    peer_repl: &str,
    my_seq: u64,
) -> Result<(), KiffError> {
    let stop = AtomicBool::new(false);
    let mut stream = TcpStream::connect(peer_repl).map_err(KiffError::Io)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(POLL)).map_err(KiffError::Io)?;
    stream
        .set_write_timeout(Some(EXCHANGE_TIMEOUT))
        .map_err(KiffError::Io)?;
    write_frame(
        &mut stream,
        &json!({
            "t": "hello",
            "epoch": repl.epoch(),
            "seq": my_seq,
            "advertise": repl.advertise().to_string()
        }),
    )?;
    let ack = match read_frame_poll(&mut stream, &stop, Some(Instant::now() + EXCHANGE_TIMEOUT))? {
        ReplRead::Frame(v) => v,
        _ => return Ok(()),
    };
    match frame_type(&ack) {
        "hello_ack" => {}
        "not_leader" => {
            handle_not_leader(shared, repl, &ack);
            return Ok(());
        }
        other => {
            return Err(KiffError::Protocol(format!(
                "expected hello_ack, got {other:?}"
            )));
        }
    }
    let mut last_sent = field_u64(&ack, "seq");
    if last_sent >= my_seq {
        return Ok(());
    }
    let dir = shared
        .lock_host()
        .store_dir()
        .ok_or_else(|| KiffError::Protocol("replication requires a data dir".into()))?;
    let replay = Wal::replay(&dir, last_sent, &shared.telemetry)?;
    for (first_seq, batch_id, updates) in replay.batches_with_ids() {
        if first_seq <= last_sent {
            continue;
        }
        match send_batch(
            &mut stream,
            shared,
            repl,
            peer_repl,
            repl.epoch(),
            first_seq,
            batch_id,
            &updates,
            0,
            &stop,
        )? {
            BatchOutcome::Acked => last_sent = first_seq + updates.len() as u64 - 1,
            BatchOutcome::NotLeader => return Ok(()),
        }
    }
    shared.telemetry.counter("serve.repl_catchups").incr();
    Ok(())
}

// ------------------------------------------------------ failover (monitor)

/// Whether a failed election-round health poll *proves* the peer's
/// daemon is down. An active refusal (refused/reset/aborted) means
/// something on the peer's host answered and said nobody is listening;
/// a timeout or routing failure proves nothing — the peer may be alive
/// and serving on the far side of a partition.
fn peer_confirmed_down(err: &KiffError) -> bool {
    matches!(err, KiffError::Io(e) if matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    ))
}

/// Whether an election round resolved enough of the group to decide
/// safely: this daemon plus every peer that either answered `health`
/// or is provably down must form a strict majority, so two partitioned
/// minorities can never both promote.
fn election_quorum(resolved_peers: usize, group_size: usize) -> bool {
    (resolved_peers + 1) * 2 > group_size
}

/// Replica-side failure monitor: after four silent heartbeat intervals
/// it polls every peer's `health`; if the round resolves a majority of
/// the group, no live primary with a current epoch answers, and no
/// other replica is further ahead, it promotes — bumping the epoch and
/// snapshotting the fence before taking writes.
fn run_monitor(shared: &Arc<Shared>, repl: &Arc<ReplState>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        sleep_poll(&shared.shutdown, repl.heartbeat());
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if repl.role() != Role::Replica {
            continue;
        }
        if repl.silent_for() < repl.heartbeat() * SUSPECT_AFTER {
            continue;
        }
        shared.telemetry.counter("serve.elections").incr();
        let mut found_leader = false;
        let mut resolved = 0usize;
        let mut rivals: Vec<(u64, String)> = Vec::new();
        let peers = repl.other_peers();
        let group_size = peers.len() + 1;
        for peer in peers {
            let health = match poll_health(&peer) {
                Ok(health) => {
                    resolved += 1;
                    health
                }
                Err(e) => {
                    if peer_confirmed_down(&e) {
                        resolved += 1;
                    }
                    continue;
                }
            };
            if health.role.as_deref() == Some("primary") && health.epoch >= repl.epoch() {
                // The primary is alive (we just could not hear it) or a
                // rival already won; wait for its stream.
                if health.epoch > repl.epoch() {
                    adopt(shared, repl, health.epoch, Some(peer.clone()));
                } else {
                    repl.set_leader_hint(Some(peer.clone()));
                    repl.touch();
                }
                found_leader = true;
                break;
            }
            if health.role.as_deref() == Some("replica") {
                rivals.push((health.seq, peer));
            }
        }
        if found_leader {
            continue;
        }
        if !election_quorum(resolved, group_size) {
            // Cut off from too much of the group — the unreachable
            // peers (and possibly the real primary) may be alive across
            // a partition, so self-promoting here would split the
            // brain. The round is inconclusive; keep retrying.
            shared
                .telemetry
                .counter("serve.elections_inconclusive")
                .incr();
            continue;
        }
        let my_seq = shared.lock_host().store_seq();
        let me = repl.advertise().to_string();
        // Deterministic election: the reachable replica with the most
        // applied WAL wins; ties break to the smallest address. Both
        // sides compute the same winner from the same health polls.
        let wins = rivals
            .iter()
            .all(|(seq, addr)| *seq < my_seq || (*seq == my_seq && *addr > me));
        if !wins {
            continue;
        }
        let mut host = shared.lock_host();
        if repl.role() != Role::Replica {
            continue;
        }
        let new_epoch = repl.epoch() + 1;
        // Persist the fence before the first write of the new reign:
        // promote() snapshots the bumped epoch, so even if we crash and
        // recover, the old primary's frames stay fenced.
        if host.promote(new_epoch).is_err() {
            shared.telemetry.counter("serve.promote_failures").incr();
            continue;
        }
        repl.set_epoch(new_epoch);
        repl.set_role(Role::Primary);
        repl.set_leader_hint(Some(me));
        repl.set_lag(0);
        shared.telemetry.counter("serve.promotions").incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_covers_every_knob() {
        let config = ReplicationConfig::new("127.0.0.1:0")
            .replica_of("127.0.0.1:9001")
            .with_peers(vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()])
            .with_heartbeat(Duration::from_millis(50))
            .with_ack_timeout(Duration::from_millis(200));
        assert_eq!(config.replica_of.as_deref(), Some("127.0.0.1:9001"));
        assert_eq!(config.peers.len(), 2);
        assert_eq!(config.heartbeat, Duration::from_millis(50));
        assert_eq!(config.ack_timeout, Duration::from_millis(200));
    }

    #[test]
    fn repl_state_tracks_role_epoch_and_leader_hint() {
        let config = ReplicationConfig::new("127.0.0.1:0").replica_of("127.0.0.1:9001");
        let state = ReplState::new(
            config,
            "127.0.0.1:7000".into(),
            "127.0.0.1:9002".into(),
            3,
            Registry::new(),
        );
        assert_eq!(state.role(), Role::Replica);
        assert_eq!(state.epoch(), 3);
        assert_eq!(state.leader_hint().as_deref(), Some("127.0.0.1:9001"));
        state.set_epoch(4);
        state.set_role(Role::Primary);
        state.set_leader_hint(Some("127.0.0.1:9002".into()));
        assert_eq!(state.role(), Role::Primary);
        assert_eq!(state.epoch(), 4);
        assert_eq!(Role::Primary.as_str(), "primary");
        assert_eq!(Role::Replica.as_str(), "replica");
    }

    #[test]
    fn other_peers_includes_primary_and_skips_self() {
        let config = ReplicationConfig::new("127.0.0.1:0")
            .replica_of("127.0.0.1:9001")
            .with_peers(vec![
                "127.0.0.1:9001".into(),
                "127.0.0.1:9002".into(),
                "127.0.0.1:9003".into(),
            ]);
        let state = ReplState::new(
            config,
            "127.0.0.1:7000".into(),
            "127.0.0.1:9002".into(),
            0,
            Registry::new(),
        );
        let peers = state.other_peers();
        assert!(peers.contains(&"127.0.0.1:9001".to_string()));
        assert!(peers.contains(&"127.0.0.1:9003".to_string()));
        assert!(
            !peers.contains(&"127.0.0.1:9002".to_string()),
            "self skipped"
        );
    }

    #[test]
    fn frames_roundtrip_over_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write_frame(
                &mut stream,
                &json!({"t": "heartbeat", "epoch": 7u64, "seq": 42u64, "lag": 1u64}),
            )
            .unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert_eq!(frame_type(&frame), "heartbeat");
        assert_eq!(field_u64(&frame, "epoch"), 7);
        assert_eq!(field_u64(&frame, "seq"), 42);
        sender.join().unwrap();
    }

    #[test]
    fn corrupt_frames_are_rejected_by_checksum() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let body = br#"{"t":"ack","seq":1}"#;
            let mut buf = Vec::new();
            buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&(crc32(body) ^ 0xdead_beef).to_le_bytes());
            buf.extend_from_slice(body);
            stream.write_all(&buf).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        sender.join().unwrap();
    }

    #[test]
    fn publish_to_a_dead_subscriber_prunes_it_without_blocking() {
        let state = ReplState::new(
            ReplicationConfig::new("127.0.0.1:0").with_ack_timeout(Duration::from_millis(20)),
            "127.0.0.1:7000".into(),
            "127.0.0.1:9000".into(),
            0,
            Registry::new(),
        );
        let sub = state.subscribe();
        drop(sub);
        let started = Instant::now();
        state.publish_and_wait(1, 1, &[Update::AddUser]).unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "dead subscriber must not cost an ack timeout"
        );
        assert!(relock(state.subscribers.lock()).is_empty(), "pruned");
    }

    #[test]
    fn publish_waits_for_live_subscriber_acks() {
        let state = Arc::new(ReplState::new(
            ReplicationConfig::new("127.0.0.1:0").with_ack_timeout(Duration::from_secs(2)),
            "127.0.0.1:7000".into(),
            "127.0.0.1:9000".into(),
            0,
            Registry::new(),
        ));
        let sub = state.subscribe();
        let worker = std::thread::spawn(move || {
            let batch = sub.rx.recv().unwrap();
            assert_eq!(batch.first_seq, 5);
            assert_eq!(batch.batch_id, 9);
            sub.depth.fetch_sub(1, Ordering::SeqCst);
            batch.ack.send(()).unwrap();
        });
        state.publish_and_wait(5, 9, &[Update::AddUser]).unwrap();
        worker.join().unwrap();
        assert_eq!(state.lag(), 0, "acked batch leaves no lag");
    }

    #[test]
    fn min_sync_replicas_fails_an_unreplicated_write() {
        let state = ReplState::new(
            ReplicationConfig::new("127.0.0.1:0")
                .with_ack_timeout(Duration::from_millis(20))
                .with_min_sync_replicas(1),
            "127.0.0.1:7000".into(),
            "127.0.0.1:9000".into(),
            0,
            Registry::new(),
        );
        // No subscriber at all: zero acks < 1 required.
        let err = state
            .publish_and_wait(1, 1, &[Update::AddUser])
            .unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.is_retryable(), "the client must retry, not give up");
        // The dedup path's gate agrees while no stream is attached...
        assert!(state.require_min_sync().is_err());
        // ...and clears once one is.
        let sub = state.subscribe();
        assert!(state.require_min_sync().is_ok());
        // A subscriber that acks in time satisfies the minimum.
        let worker = std::thread::spawn(move || {
            let batch = sub.rx.recv().unwrap();
            sub.depth.fetch_sub(1, Ordering::SeqCst);
            batch.ack.send(()).unwrap();
        });
        state.publish_and_wait(2, 2, &[Update::AddUser]).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn min_sync_replicas_fails_when_the_ack_times_out() {
        let state = ReplState::new(
            ReplicationConfig::new("127.0.0.1:0")
                .with_ack_timeout(Duration::from_millis(20))
                .with_min_sync_replicas(1),
            "127.0.0.1:7000".into(),
            "127.0.0.1:9000".into(),
            0,
            Registry::new(),
        );
        // Subscriber attached but silent: the ack wait expires.
        let sub = state.subscribe();
        let err = state
            .publish_and_wait(1, 1, &[Update::AddUser])
            .unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        drop(sub);
    }

    #[test]
    fn closed_subscriptions_stop_counting_toward_lag() {
        let state = ReplState::new(
            ReplicationConfig::new("127.0.0.1:0"),
            "127.0.0.1:7000".into(),
            "127.0.0.1:9000".into(),
            0,
            Registry::new(),
        );
        let sub = state.subscribe();
        sub.depth.store(7, Ordering::SeqCst);
        assert_eq!(state.lag(), 7, "live queue depth counts");
        // The streaming thread dies with batches still queued: closing
        // zeroes the slot and lag() prunes the subscriber.
        sub.close();
        assert_eq!(state.lag(), 0, "dead queue depth does not");
        assert!(relock(state.subscribers.lock()).is_empty(), "pruned");
    }

    #[test]
    fn election_quorum_needs_a_resolved_majority() {
        // Two-node group: the lone replica decides alone only once the
        // primary is provably down (resolved), never on pure silence.
        assert!(election_quorum(1, 2));
        assert!(!election_quorum(0, 2));
        // Three-node group: one resolved peer plus self is a majority;
        // resolving nobody is not.
        assert!(election_quorum(1, 3));
        assert!(!election_quorum(0, 3));
        // Five-node group: two resolved peers plus self.
        assert!(election_quorum(2, 5));
        assert!(!election_quorum(1, 5));
        // Degenerate single-node group: always decisive.
        assert!(election_quorum(0, 1));
    }

    #[test]
    fn refusal_confirms_a_peer_down_but_a_timeout_does_not() {
        let refused = KiffError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionRefused));
        assert!(peer_confirmed_down(&refused));
        let reset = KiffError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionReset));
        assert!(peer_confirmed_down(&reset));
        let timed_out = KiffError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut));
        assert!(
            !peer_confirmed_down(&timed_out),
            "a partition looks like a timeout; the peer may be alive"
        );
        let unreachable = KiffError::Io(std::io::Error::from(std::io::ErrorKind::HostUnreachable));
        assert!(!peer_confirmed_down(&unreachable));
        let protocol = KiffError::Protocol("garbled health".into());
        assert!(!peer_confirmed_down(&protocol));
    }
}
