//! A fixed-capacity bitset over dense `u32` ids.
//!
//! Used for O(1) candidate deduplication in the refinement phases: greedy
//! algorithms repeatedly union small neighbour lists, and a reusable bitset
//! with explicit clearing of the touched bits is far cheaper than a hash set
//! when ids are dense (they are: users are numbered `0..|U|`).

/// Fixed-capacity bitset with O(words) construction and O(1) set/test.
#[derive(Debug, Clone)]
pub struct FixedBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl FixedBitSet {
    /// Creates a bitset able to hold ids `0..capacity`, all unset.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of ids the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets `id`, returning `true` if it was previously unset.
    ///
    /// # Panics
    /// Panics (in debug, via index) if `id >= capacity`.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let mask = 1u64 << b;
        let was_unset = self.words[w] & mask == 0;
        self.words[w] |= mask;
        was_unset
    }

    /// Tests whether `id` is set.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Unsets `id`.
    #[inline]
    pub fn remove(&mut self, id: u32) {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words[w] &= !(1u64 << b);
    }

    /// Clears every bit (O(words)).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Clears exactly the listed ids — O(|ids|), the idiom for reusing one
    /// bitset across many small batches without paying O(words) per batch.
    pub fn clear_ids(&mut self, ids: &[u32]) {
        for &id in ids {
            self.remove(id);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((wi * 64) as u32 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_novelty() {
        let mut bs = FixedBitSet::new(100);
        assert!(bs.insert(5));
        assert!(!bs.insert(5));
        assert!(bs.contains(5));
        assert!(!bs.contains(6));
    }

    #[test]
    fn boundary_ids() {
        let mut bs = FixedBitSet::new(128);
        assert!(bs.insert(0));
        assert!(bs.insert(63));
        assert!(bs.insert(64));
        assert!(bs.insert(127));
        assert_eq!(bs.count_ones(), 4);
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127]);
    }

    #[test]
    fn clear_ids_only_clears_listed() {
        let mut bs = FixedBitSet::new(200);
        for id in [1u32, 50, 100, 150] {
            bs.insert(id);
        }
        bs.clear_ids(&[50, 150]);
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![1, 100]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut bs = FixedBitSet::new(70);
        bs.insert(69);
        bs.clear();
        assert_eq!(bs.count_ones(), 0);
        assert!(!bs.contains(69));
    }

    #[test]
    fn non_multiple_of_64_capacity() {
        let mut bs = FixedBitSet::new(65);
        assert!(bs.insert(64));
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![64]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        proptest! {
            /// The bitset agrees with a BTreeSet model under inserts/removes.
            #[test]
            fn matches_btreeset_model(
                ops in proptest::collection::vec((any::<bool>(), 0u32..500), 0..400)
            ) {
                let mut bs = FixedBitSet::new(500);
                let mut model = BTreeSet::new();
                for (is_insert, id) in ops {
                    if is_insert {
                        prop_assert_eq!(bs.insert(id), model.insert(id));
                    } else {
                        bs.remove(id);
                        model.remove(&id);
                    }
                }
                prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
                prop_assert_eq!(bs.count_ones(), model.len());
            }
        }
    }
}
