//! Serving-layer benchmark: `BENCH_serve.json`.
//!
//! Two phases, both over a planted dataset the experiment generates
//! itself (like the `telemetry` experiment, and for the same reason:
//! the shared streaming scenario is too small at smoke scale for a
//! wall-clock gate — a millisecond rebuild drowns in timer noise):
//!
//! 1. **Query throughput under write load.** A durable daemon (WAL
//!    fsync-per-batch in a scratch directory) is recovered from a
//!    prebuilt seed graph and served over a real TCP socket. One
//!    client streams Zipf-skewed rating updates in batches while
//!    another hammers `neighbors` queries; the report is queries/s and
//!    updates/s over the contended window, plus the daemon's own
//!    `serve.request_ns.*` latency percentiles from telemetry.
//!
//! 2. **Recovery vs rebuild.** A second store replays the same stream,
//!    snapshots one batch before the end, and then stops *without* any
//!    shutdown handshake — the graceful path takes a final snapshot, so
//!    a crash has to be simulated at the store level to leave a WAL
//!    tail. Recovery (snapshot load + one-batch tail replay, the state
//!    after a crash shortly past a periodic snapshot) is timed best-of-3
//!    against cold construction of the serving engine on the final
//!    dataset — `OnlineKnn::new`, exactly what `kiff serve` without a
//!    populated `--data-dir` does: KIFF graph build plus counter
//!    seeding plus heap assembly. Restarting from persistence must be
//!    at least `MIN_RECOVERY_SPEEDUP`× faster than that cold start (a
//!    **hard gate** in bench-smoke), else the persistence layer is not
//!    paying for its fsyncs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use kiff_core::{Kiff, KiffConfig};
use kiff_dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff_dataset::zipf::Zipf;
use kiff_dataset::Dataset;
use kiff_graph::KnnGraph;
use kiff_online::{KnnEngine, OnlineConfig, OnlineKnn, Update};
use kiff_serve::{recover, Client, EngineHost, Server, StoreConfig};
use kiff_similarity::WeightedCosine;
use kiff_telemetry::Registry;

use super::{Ctx, STREAM_K};

const BATCH: usize = 32;
/// The gate: recovery must beat a from-scratch rebuild by this factor.
const MIN_RECOVERY_SPEEDUP: f64 = 5.0;

/// A planted population large enough that a full rebuild takes tens of
/// milliseconds even at smoke scale, so the speedup gate measures work
/// rather than timer noise.
fn serve_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    let users = ((20_000.0 * m) as usize).max(2_000);
    generate_planted(&PlantedConfig {
        name: "bench-serve".to_string(),
        num_users: users,
        num_items: (users * 4) / 5,
        communities: 8,
        ratings_per_user: 20,
        affinity: 0.8,
        ..PlantedConfig::tiny("bench-serve", seed)
    })
    .0
}

/// Zipf-skewed arrivals over the existing population — deterministic in
/// the seed, identical for both phases.
fn serve_stream(ds: &Dataset, seed: u64) -> Vec<Update> {
    let user_dist = Zipf::new(ds.num_users(), 1.1);
    let item_dist = Zipf::new(ds.num_items(), 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2 * ds.num_users())
        .map(|_| Update::AddRating {
            user: user_dist.sample(&mut rng) as u32,
            item: item_dist.sample(&mut rng) as u32,
            rating: 1.0,
        })
        .collect()
}

/// A fresh scratch directory for one phase's store.
fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kiff-bench-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn kiff_graph(ds: &Dataset, threads: Option<usize>) -> KnnGraph {
    let sim = WeightedCosine::fit(ds);
    let mut config = KiffConfig::new(STREAM_K);
    config.threads = threads;
    Kiff::new(config).run(ds, &sim).graph
}

/// Runs the serving benchmark and writes `BENCH_serve.json`.
pub fn serve(ctx: &mut Ctx) -> String {
    let base = serve_dataset(ctx.scale.multiplier, ctx.seed);
    let stream = serve_stream(&base, ctx.seed);
    let num_users = base.num_users() as u32;
    let seed_graph = kiff_graph(&base, ctx.threads);

    // Phase 1: a real daemon on an ephemeral port, one writer client
    // streaming the updates while a reader client counts `neighbors`
    // round trips. Automatic snapshots are disabled so the contended
    // window measures the steady state (append + apply + query), not a
    // snapshot stall.
    let dir = scratch("daemon");
    let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
    let registry = Registry::new();
    let config = OnlineConfig::new(STREAM_K).with_telemetry(registry.clone());
    let rec = recover(&cfg, &base, Some(&seed_graph), config, None)
        .expect("fresh scratch directory must recover");
    let host = EngineHost::new(rec.engine, Some(rec.store), registry.clone());
    let server = Server::bind("127.0.0.1:0", host).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let done = Arc::new(AtomicBool::new(false));
    let writer_done = Arc::clone(&done);
    let writer_addr = addr.clone();
    let writer_stream = stream.clone();
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(&writer_addr).expect("writer connects");
        let start = Instant::now();
        for chunk in writer_stream.chunks(BATCH) {
            client.update(chunk).expect("update batch acked");
        }
        writer_done.store(true, Ordering::SeqCst);
        start.elapsed().as_secs_f64()
    });

    let mut reader = Client::connect(&addr).expect("reader connects");
    let mut queries = 0u64;
    let query_start = Instant::now();
    while !done.load(Ordering::SeqCst) || queries == 0 {
        reader
            .neighbors(queries as u32 % num_users)
            .expect("neighbors over the wire");
        queries += 1;
    }
    let query_s = query_start.elapsed().as_secs_f64();
    let write_s = writer.join().expect("writer thread");
    reader.shutdown().expect("graceful shutdown");
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    std::fs::remove_dir_all(&dir).ok();

    let qps = queries as f64 / query_s.max(1e-9);
    let ups = stream.len() as f64 / write_s.max(1e-9);
    let snapshot = registry.snapshot();
    let served_p99_us = |op: &str| -> f64 {
        snapshot
            .histogram(&format!("serve.request_ns.{op}"))
            .map(|h| h.p99 as f64 / 1_000.0)
            .unwrap_or(0.0)
    };
    let neighbors_p99_us = served_p99_us("neighbors");
    let update_p99_us = served_p99_us("update");

    // Phase 2: the same stream into a second store, snapshot one batch
    // before the end, then a simulated `kill -9` (drop without shutdown
    // — the graceful path would snapshot and leave nothing to replay).
    // Time recovery against a cold engine build on the final dataset.
    let dir = scratch("recovery");
    let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
    let config = || OnlineConfig::new(STREAM_K);
    let rec = recover(&cfg, &base, Some(&seed_graph), config(), None)
        .expect("fresh scratch directory must recover");
    let (mut engine, mut store) = (rec.engine, rec.store);
    let snap_at = stream.len().saturating_sub(BATCH);
    let mut applied = 0usize;
    let mut snapped = false;
    for chunk in stream.chunks(BATCH) {
        store.append(chunk, 0).expect("append batch");
        engine.apply_batch(chunk.to_vec());
        applied += chunk.len();
        if !snapped && applied >= snap_at {
            store.snapshot(engine.as_ref()).expect("snapshot");
            snapped = true;
        }
    }
    let final_dataset = engine.data().to_dataset();
    drop((engine, store)); // crash: no final snapshot, WAL tail remains

    // Recovery is read-only and repeatable; best-of-3 discards a cold
    // page cache or a preempted run.
    let mut recover_s = f64::INFINITY;
    let mut replayed = 0u64;
    let mut recovered_users = 0usize;
    for _ in 0..3 {
        let start = Instant::now();
        let rec = recover(&cfg, &base, Some(&seed_graph), config(), None)
            .expect("recovery after simulated crash");
        recover_s = recover_s.min(start.elapsed().as_secs_f64());
        replayed = rec.replayed;
        recovered_users = rec.engine.len();
    }
    std::fs::remove_dir_all(&dir).ok();
    // The cold-start path a daemon without persistence pays: KIFF graph
    // build + co-rating counter seeding + heap assembly, same config as
    // the recovered engine.
    let start = Instant::now();
    let cold = OnlineKnn::new(&final_dataset, config());
    let rebuild_s = start.elapsed().as_secs_f64();
    assert_eq!(
        cold.len(),
        recovered_users,
        "cold build must match recovery"
    );
    let speedup = rebuild_s / recover_s.max(1e-9);

    let mut out = String::new();
    out.push_str(&format!(
        "Serving benchmark on {}: {} users, {} streamed updates \
         (k={STREAM_K}, batch {BATCH}, WAL fsync per batch)\n\n\
         phase 1: query throughput under write load\n\
         {:>24}: {:>10.0} queries/s ({} neighbors queries in {:.3} s)\n\
         {:>24}: {:>10.0} updates/s (p99 {update_p99_us:.0} us/batch request)\n\
         {:>24}: {neighbors_p99_us:>10.0} us\n\n",
        base.name(),
        base.num_users(),
        stream.len(),
        "concurrent qps",
        qps,
        queries,
        query_s,
        "durable write rate",
        ups,
        "neighbors p99",
    ));
    out.push_str(&format!(
        "phase 2: recovery vs rebuild\n\
         {:>24}: {recover_s:>10.4} s (snapshot at {snap_at}/{} + {replayed} WAL updates, \
         {recovered_users} users)\n\
         {:>24}: {rebuild_s:>10.4} s\n\
         {:>24}: {speedup:>10.1}x (gate >= {MIN_RECOVERY_SPEEDUP})\n",
        "recover",
        stream.len(),
        "cold engine build",
        "speedup",
    ));

    // Hard gate: restart-from-persistence must stay far cheaper than a
    // rebuild, else the WAL + snapshot machinery earns nothing.
    if speedup < MIN_RECOVERY_SPEEDUP {
        let msg = format!(
            "serve/recovery: recovery speedup {speedup:.1}x below {MIN_RECOVERY_SPEEDUP}x \
             (recover {recover_s:.4}s vs rebuild {rebuild_s:.4}s)"
        );
        eprintln!("SERVE RECOVERY VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }

    let dataset_v = serde_json::json!({
        "name": base.name(),
        "num_users": base.num_users(),
        "num_items": base.num_items(),
        "num_ratings": base.num_ratings(),
        "streamed_updates": stream.len()
    });
    let phase1_v = serde_json::json!({
        "queries": queries,
        "queries_per_sec": qps,
        "updates_per_sec": ups,
        "neighbors_p99_us": neighbors_p99_us,
        "update_p99_us": update_p99_us
    });
    let phase2_v = serde_json::json!({
        "snapshot_at": snap_at,
        "wal_replayed": replayed,
        "recover_s": recover_s,
        "rebuild_s": rebuild_s,
        "speedup": speedup,
        "min_speedup": MIN_RECOVERY_SPEEDUP
    });
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": STREAM_K,
        "batch": BATCH,
        "query_throughput": phase1_v,
        "recovery": phase2_v
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_serve.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_serve.json: {e}"));
    }
    ctx.finish(
        "serve",
        "Serving layer: TCP query throughput under write load; recovery vs rebuild",
        out,
        &payload,
    )
}
