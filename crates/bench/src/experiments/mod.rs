//! One module per paper artefact. Every experiment takes the shared
//! [`Ctx`] (dataset + ground-truth caches, output directory) and returns
//! the human-readable report it also writes to `results/<id>.txt` (with a
//! machine-readable twin at `results/<id>.json`).

pub mod baseline_scoring;
pub mod comparison;
pub mod convergence;
pub mod counting_exps;
pub mod counting_perf;
pub mod datasets_exps;
pub mod density_exps;
pub mod extensions;
pub mod failover;
pub mod faults;
pub mod online;
pub mod reads;
pub mod rebalance;
pub mod sensitivity;
pub mod serve;
pub mod sharded;
pub mod telemetry;

use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use serde::Serialize;

use kiff_core::{Kiff, KiffConfig};
use kiff_dataset::generators::movielens::movielens_like;
use kiff_dataset::{subsample_ratings, Dataset, DatasetBuilder, PaperDataset};
use kiff_eval::{AlgoRunRecord, ExperimentRecord};
use kiff_graph::{exact_knn, recall, KnnGraph};
use kiff_similarity::WeightedCosine;

use crate::datasets::SuiteScale;
use crate::runner::{self, RunOptions};

/// Neighbourhood size of the streaming experiments (`online`, `sharded`).
pub const STREAM_K: usize = 10;

/// Shared preparation of the streaming experiments: the ML-4-like
/// dataset (MovieLens preset subsampled into the sparse regime of Table
/// IX), its base/holdout split, the exact ground truth, the KIFF rebuild
/// yardstick on the final dataset, and the seed graph on the base —
/// computed once per suite invocation and cached on [`Ctx`], so running
/// `online sharded` together (the CI bench-smoke job) pays for the
/// expensive `exact_knn` and rebuild exactly once and the two reports
/// compare directly by construction.
pub struct StreamScenario {
    /// The final dataset (base plus every streamed rating).
    pub full: Dataset,
    /// The base dataset the engines build on.
    pub base: Dataset,
    /// The held-out stream (every 10th rating of `full`).
    pub held: Vec<(u32, u32, f32)>,
    /// Exact cosine ground truth on `full`.
    pub exact: KnnGraph,
    /// Similarity evaluations of the KIFF rebuild on `full`.
    pub rebuild_sim_evals: u64,
    /// Wall time of that rebuild.
    pub rebuild_s: f64,
    /// Its recall against `exact`.
    pub rebuild_recall: f64,
    /// KIFF graph of `base`, seeding every replayed engine identically.
    pub seed_graph: KnnGraph,
}

/// Shared state across experiments in one `experiments` invocation:
/// generated datasets and exact ground truths are cached because half the
/// experiments need them.
pub struct Ctx {
    /// Where reports land.
    pub out_dir: PathBuf,
    /// Dataset scale.
    pub scale: SuiteScale,
    /// Generation / initialisation seed.
    pub seed: u64,
    /// Worker threads for all runs.
    pub threads: Option<usize>,
    /// When set, the streaming experiments (`online`, `sharded`) record a
    /// violation whenever recall-vs-rebuild falls below this ratio — the
    /// CI bench-regression gate.
    pub recall_floor: Option<f64>,
    /// Recall-floor violations accumulated across experiments; the
    /// `experiments` binary fails when any exist.
    pub violations: Vec<String>,
    datasets: HashMap<PaperDataset, Rc<Dataset>>,
    truths: HashMap<(PaperDataset, usize), Rc<KnnGraph>>,
    table2_cache: Option<Rc<Vec<AlgoRunRecord>>>,
    stream_cache: Option<Rc<StreamScenario>>,
}

impl Ctx {
    /// Creates a context writing into `out_dir` (created if missing).
    pub fn new(out_dir: PathBuf, scale: SuiteScale, seed: u64, threads: Option<usize>) -> Self {
        std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
        Self {
            out_dir,
            scale,
            seed,
            threads,
            recall_floor: None,
            violations: Vec::new(),
            datasets: HashMap::new(),
            truths: HashMap::new(),
            table2_cache: None,
            stream_cache: None,
        }
    }

    /// The streaming experiments' shared scenario (cached; see
    /// [`StreamScenario`]).
    pub fn stream_scenario(&mut self) -> Rc<StreamScenario> {
        if self.stream_cache.is_none() {
            let ml_scale = (0.2 * self.scale.multiplier).clamp(0.02, 1.0);
            let ml1 = movielens_like(ml_scale, self.seed);
            let full = subsample_ratings(&ml1, ml1.num_ratings() * 13 / 100, self.seed)
                .with_name("ML-4-like");

            // Hold out every 10th rating as the stream.
            let mut builder = DatasetBuilder::new("ml4-base", full.num_users(), full.num_items());
            let mut held = Vec::new();
            for (pos, (u, i, r)) in full.iter_ratings().enumerate() {
                if pos % 10 == 0 {
                    held.push((u, i, r));
                } else {
                    builder.add_rating(u, i, r);
                }
            }
            let base = builder.build();

            let sim = WeightedCosine::fit(&full);
            let exact = exact_knn(&full, &sim, STREAM_K, self.threads);
            let mut rebuild_config = KiffConfig::new(STREAM_K);
            rebuild_config.threads = self.threads;
            let rebuild_start = Instant::now();
            let rebuild = Kiff::new(rebuild_config).run(&full, &sim);
            let rebuild_s = rebuild_start.elapsed().as_secs_f64();
            let rebuild_recall = recall(&exact, &rebuild.graph);

            let base_sim = WeightedCosine::fit(&base);
            let mut seed_config = KiffConfig::new(STREAM_K);
            seed_config.threads = self.threads;
            let seed_graph = Kiff::new(seed_config).run(&base, &base_sim).graph;

            self.stream_cache = Some(Rc::new(StreamScenario {
                full,
                base,
                held,
                exact,
                rebuild_sim_evals: rebuild.stats.sim_evals,
                rebuild_s,
                rebuild_recall,
                seed_graph,
            }));
        }
        Rc::clone(self.stream_cache.as_ref().expect("just inserted"))
    }

    /// Checks a recall-vs-rebuild ratio against the configured floor,
    /// recording a violation (and warning on stderr) when it is below.
    pub fn enforce_recall_floor(&mut self, experiment: &str, mode: &str, ratio: f64) {
        if let Some(floor) = self.recall_floor {
            if ratio < floor {
                let msg = format!(
                    "{experiment}/{mode}: recall-vs-rebuild {ratio:.4} below floor {floor:.2}"
                );
                eprintln!("RECALL FLOOR VIOLATION: {msg}");
                self.violations.push(msg);
            }
        }
    }

    /// The calibrated stand-in for `d` (cached).
    pub fn dataset(&mut self, d: PaperDataset) -> Rc<Dataset> {
        let scale = self.scale.scale_for(d);
        let seed = self.seed;
        Rc::clone(
            self.datasets
                .entry(d)
                .or_insert_with(|| Rc::new(d.generate(scale, seed))),
        )
    }

    /// Exact cosine ground truth for `(d, k)` (cached).
    pub fn ground_truth(&mut self, d: PaperDataset, k: usize) -> Rc<KnnGraph> {
        if !self.truths.contains_key(&(d, k)) {
            let ds = self.dataset(d);
            let gt = runner::ground_truth(&ds, k, self.threads);
            self.truths.insert((d, k), Rc::new(gt));
        }
        Rc::clone(&self.truths[&(d, k)])
    }

    /// Run options for neighbourhood size `k`.
    pub fn opts(&self, k: usize) -> RunOptions {
        RunOptions {
            k,
            threads: self.threads,
            seed: self.seed,
        }
    }

    /// Table II records, computed once and shared with Table III / Fig. 5.
    pub fn table2_records(&mut self) -> Rc<Vec<AlgoRunRecord>> {
        if self.table2_cache.is_none() {
            let records = comparison::collect_table2(self);
            self.table2_cache = Some(Rc::new(records));
        }
        Rc::clone(self.table2_cache.as_ref().expect("just inserted"))
    }

    /// Writes `<id>.txt` and `<id>.json`, returning the text.
    pub fn finish(
        &self,
        id: &str,
        description: &str,
        text: String,
        payload: &impl Serialize,
    ) -> String {
        std::fs::write(self.out_dir.join(format!("{id}.txt")), &text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write {id}.txt: {e}"));
        match ExperimentRecord::new(id, description, payload) {
            Ok(record) => {
                record
                    .save(self.out_dir.join(format!("{id}.json")))
                    .unwrap_or_else(|e| eprintln!("warning: cannot write {id}.json: {e}"));
            }
            Err(e) => eprintln!("warning: cannot serialise {id}: {e}"),
        }
        text
    }
}

/// Every experiment id, in the paper's presentation order.
pub const ALL: [&str; 31] = [
    "table1",
    "fig4",
    "fig1",
    "table2",
    "table3",
    "fig5",
    "table4",
    "table5",
    "table6",
    "fig6",
    "fig7",
    "table7",
    "fig8",
    "table8",
    "fig9",
    "table9_fig10",
    "ext1",
    "ext2",
    "ext3",
    "ext4",
    "ext5",
    "online",
    "sharded",
    "counting",
    "baselines",
    "rebalance",
    "telemetry",
    "serve",
    "reads",
    "faults",
    "failover",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, ctx: &mut Ctx) -> Result<String, String> {
    match id {
        "table1" => Ok(datasets_exps::table1(ctx)),
        "fig4" => Ok(datasets_exps::fig4(ctx)),
        "fig1" => Ok(comparison::fig1(ctx)),
        "table2" => Ok(comparison::table2(ctx)),
        "table3" => Ok(comparison::table3(ctx)),
        "fig5" => Ok(comparison::fig5(ctx)),
        "table4" => Ok(counting_exps::table4(ctx)),
        "table5" => Ok(counting_exps::table5(ctx)),
        "table6" => Ok(counting_exps::table6(ctx)),
        "fig6" => Ok(counting_exps::fig6(ctx)),
        "fig7" => Ok(counting_exps::fig7(ctx)),
        "table7" => Ok(counting_exps::table7(ctx)),
        "fig8" => Ok(convergence::fig8(ctx)),
        "table8" => Ok(sensitivity::table8(ctx)),
        "fig9" => Ok(sensitivity::fig9(ctx)),
        "table9" | "fig10" | "table9_fig10" => Ok(density_exps::table9_fig10(ctx)),
        "ext1" => Ok(extensions::ext1(ctx)),
        "ext2" => Ok(extensions::ext2(ctx)),
        "ext3" => Ok(extensions::ext3(ctx)),
        "ext4" => Ok(extensions::ext4(ctx)),
        "ext5" => Ok(extensions::ext5(ctx)),
        "online" => Ok(online::online(ctx)),
        "sharded" => Ok(sharded::sharded(ctx)),
        "counting" => Ok(counting_perf::counting(ctx)),
        "baselines" => Ok(baseline_scoring::baselines(ctx)),
        "rebalance" => Ok(rebalance::rebalance(ctx)),
        "telemetry" => Ok(telemetry::telemetry(ctx)),
        "serve" => Ok(serve::serve(ctx)),
        "reads" => Ok(reads::reads(ctx)),
        "faults" => Ok(faults::faults(ctx)),
        "failover" => Ok(failover::failover(ctx)),
        other => Err(format!(
            "unknown experiment '{other}'; available: {}",
            ALL.join(", ")
        )),
    }
}
