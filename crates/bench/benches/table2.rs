//! Bench for Table II: end-to-end construction by all three algorithms on
//! a small Wikipedia-like dataset (paper parameters, k = 10 for speed).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::small_bench_dataset;
use kiff_bench::runner::{run_hyrec, run_kiff, run_nndescent, RunOptions};

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(2);
    let opts = RunOptions {
        k: 10,
        threads: Some(2),
        seed: 7,
    };
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("kiff", |b| b.iter(|| black_box(run_kiff(&ds, opts))));
    group.bench_function("nndescent", |b| {
        b.iter(|| black_box(run_nndescent(&ds, opts)))
    });
    group.bench_function("hyrec", |b| b.iter(|| black_box(run_hyrec(&ds, opts))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
