//! Density-family derivation (§V-B3, Table IX).
//!
//! "Starting from ML-1, we progressively remove randomly chosen ratings and
//! obtain four additional datasets (numbered ML-2 to ML-5) showing
//! decreasing density values."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::generators::movielens::movielens_like;

/// Returns a copy of `dataset` keeping exactly `target_ratings` randomly
/// chosen ratings (all of them if the dataset is already smaller).
///
/// Users and items are preserved even if they end up with empty profiles,
/// matching the paper's construction where `|U|` and `|I|` stay fixed while
/// density drops.
pub fn subsample_ratings(dataset: &Dataset, target_ratings: usize, seed: u64) -> Dataset {
    let total = dataset.num_ratings();
    if target_ratings >= total {
        return dataset.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..total).collect();
    // Partial Fisher–Yates: the first `target_ratings` entries are a uniform
    // sample without replacement.
    for i in 0..target_ratings {
        let j = i + (rng.gen_range(0..total - i));
        indices.swap(i, j);
    }
    let mut keep = vec![false; total];
    for &idx in &indices[..target_ratings] {
        keep[idx] = true;
    }
    let mut builder = DatasetBuilder::new(dataset.name(), dataset.num_users(), dataset.num_items());
    builder.reserve(target_ratings);
    for (pos, (u, i, r)) in dataset.iter_ratings().enumerate() {
        if keep[pos] {
            builder.add_rating(u, i, r);
        }
    }
    builder.build()
}

/// Rating counts of the ML-1…ML-5 family (Table IX), expressed as fractions
/// of ML-1's 1,000,209 ratings.
pub const ML_FAMILY_FRACTIONS: [f64; 5] = [
    1.0,
    500_009.0 / 1_000_209.0,
    255_188.0 / 1_000_209.0,
    131_668.0 / 1_000_209.0,
    68_415.0 / 1_000_209.0,
];

/// Generates the full ML-1…ML-5 density family of Table IX.
///
/// `scale` shrinks the starting ML-1 stand-in (1.0 = paper size); each
/// successive dataset keeps the Table IX fraction of ML-1's ratings.
pub fn ml_family(scale: f64, seed: u64) -> Vec<Dataset> {
    let ml1 = movielens_like(scale, seed);
    let base = ml1.num_ratings();
    ML_FAMILY_FRACTIONS
        .iter()
        .enumerate()
        .map(|(idx, &fraction)| {
            let name = format!("ML-{}", idx + 1);
            if idx == 0 {
                ml1.clone().with_name(name)
            } else {
                let target = (base as f64 * fraction).round() as usize;
                subsample_ratings(&ml1, target, seed.wrapping_add(idx as u64)).with_name(name)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::figure2_toy;
    use crate::generators::bipartite::{generate_bipartite, BipartiteConfig};

    #[test]
    fn subsample_keeps_exact_count() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("s", 1));
        let sub = subsample_ratings(&ds, 500, 2);
        assert_eq!(sub.num_ratings(), 500);
        assert_eq!(sub.num_users(), ds.num_users());
        assert_eq!(sub.num_items(), ds.num_items());
    }

    #[test]
    fn subsample_is_a_subset() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("sub", 3));
        let sub = subsample_ratings(&ds, ds.num_ratings() / 3, 4);
        for u in 0..sub.num_users() as u32 {
            for (i, r) in sub.user_profile(u).iter() {
                assert_eq!(ds.user_profile(u).rating(i), Some(r));
            }
        }
    }

    #[test]
    fn oversized_target_returns_clone() {
        let ds = figure2_toy();
        let sub = subsample_ratings(&ds, 100, 5);
        assert_eq!(sub.num_ratings(), ds.num_ratings());
    }

    #[test]
    fn subsample_deterministic_in_seed() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("det", 6));
        let a = subsample_ratings(&ds, 700, 9);
        let b = subsample_ratings(&ds, 700, 9);
        assert_eq!(a.users_csr(), b.users_csr());
    }

    #[test]
    fn family_density_decreases() {
        let family = ml_family(0.05, 7);
        assert_eq!(family.len(), 5);
        for pair in family.windows(2) {
            assert!(
                pair[0].density() > pair[1].density(),
                "{} !> {}",
                pair[0].name(),
                pair[1].name()
            );
        }
        assert_eq!(family[0].name(), "ML-1");
        assert_eq!(family[4].name(), "ML-5");
    }

    #[test]
    fn family_matches_table9_fractions() {
        let family = ml_family(0.05, 8);
        let base = family[0].num_ratings() as f64;
        for (ds, &fraction) in family.iter().zip(ML_FAMILY_FRACTIONS.iter()) {
            let got = ds.num_ratings() as f64 / base;
            assert!(
                (got - fraction).abs() < 0.01,
                "{}: fraction {got} wanted {fraction}",
                ds.name()
            );
        }
    }
}
