//! Versioned binary [`KnnGraph`] codec for snapshot persistence.
//!
//! The TSV writer in [`crate::io`] prints similarities with 17
//! significant digits, which round-trips `f64` but costs parsing time
//! and space; a serving daemon snapshotting every few thousand updates
//! wants neither. This codec stores similarities as raw `f64` bit
//! patterns, so a restored engine's heaps are bit-identical to the
//! writer's and replay determinism is preserved.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  b"KIFG"
//! version u16       (currently 1)
//! header  u64 k, u64 num_users
//! rows    per user: u32 len (≤ k), then len × (u32 id, u64 f64-bits)
//! ```
//!
//! Corruption surfaces as [`std::io::ErrorKind::InvalidData`], matching
//! the dataset codec's convention.

use std::io::{self, Read, Write};

use kiff_dataset::UserId;

use crate::knn::{KnnGraph, Neighbor};

const MAGIC: &[u8; 4] = b"KIFG";
const VERSION: u16 = 1;

fn corrupt(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serializes `graph` into `w`.
pub fn write_graph<W: Write>(w: &mut W, graph: &KnnGraph) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u16(w, VERSION)?;
    write_u64(w, graph.k() as u64)?;
    write_u64(w, graph.num_users() as u64)?;
    for u in 0..graph.num_users() as UserId {
        let row = graph.neighbors(u);
        write_u32(
            w,
            u32::try_from(row.len()).map_err(|_| corrupt("neighbour row too long"))?,
        )?;
        for nb in row {
            write_u32(w, nb.id)?;
            write_u64(w, nb.sim.to_bits())?;
        }
    }
    Ok(())
}

/// Deserializes a graph from `r`, validating ids, row lengths, and
/// similarity values as it goes.
pub fn read_graph<R: Read>(r: &mut R) -> io::Result<KnnGraph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt(format!("bad graph magic {magic:?}")));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported graph codec version {version} (expected {VERSION})"
        )));
    }
    let k = usize::try_from(read_u64(r)?).map_err(|_| corrupt("k overflows usize"))?;
    if k == 0 {
        return Err(corrupt("k must be positive"));
    }
    let num_users =
        usize::try_from(read_u64(r)?).map_err(|_| corrupt("user count overflows usize"))?;
    let mut rows = Vec::with_capacity(num_users);
    for u in 0..num_users as UserId {
        let len = read_u32(r)? as usize;
        if len > k {
            return Err(corrupt(format!(
                "user {u} stores {len} neighbours with k = {k}"
            )));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            let id = read_u32(r)?;
            let sim = f64::from_bits(read_u64(r)?);
            if (id as usize) >= num_users || id == u {
                return Err(corrupt(format!("user {u} has invalid neighbour id {id}")));
            }
            if sim.is_nan() {
                return Err(corrupt(format!(
                    "user {u} -> {id} carries a NaN similarity"
                )));
            }
            row.push(Neighbor { id, sim });
        }
        rows.push(row);
    }
    Ok(KnnGraph::from_neighbors(k, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> KnnGraph {
        KnnGraph::from_neighbors(
            2,
            vec![
                vec![
                    Neighbor { id: 1, sim: 0.5 },
                    Neighbor {
                        id: 2,
                        sim: 1.0 / 3.0,
                    },
                ],
                vec![Neighbor { id: 0, sim: 0.5 }],
                vec![],
            ],
        )
    }

    #[test]
    fn round_trips_bit_identically() {
        let graph = toy_graph();
        let mut buf = Vec::new();
        write_graph(&mut buf, &graph).unwrap();
        let back = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(back.k(), graph.k());
        assert_eq!(back.num_users(), graph.num_users());
        for u in 0..graph.num_users() as UserId {
            let (a, b) = (graph.neighbors(u), back.neighbors(u));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.sim.to_bits(), y.sim.to_bits(), "exact bits survive");
            }
        }
    }

    #[test]
    fn corruption_is_rejected() {
        let graph = toy_graph();
        let mut buf = Vec::new();
        write_graph(&mut buf, &graph).unwrap();

        let mut evil = buf.clone();
        evil[1] = b'?';
        assert_eq!(
            read_graph(&mut evil.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Self-loop: patch user 1's single neighbour id (0 -> 1). Offset:
        // magic(4) + version(2) + k(8) + n(8) + row0(4 + 2*12) + row1 len(4).
        let mut looped = buf.clone();
        let offset = 4 + 2 + 8 + 8 + 4 + 24 + 4;
        looped[offset..offset + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(read_graph(&mut looped.as_slice()).is_err());

        assert!(read_graph(&mut &buf[..buf.len() - 1]).is_err());
    }
}
