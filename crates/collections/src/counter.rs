//! Sparse multiplicity counters for the KIFF counting phase.
//!
//! Building a ranked candidate set means computing, for one user `u`, the
//! multiset union of the item profiles of her items (Algorithm 1, line 4) —
//! i.e. counting how many items `u` shares with every co-rater. Three
//! strategies are provided and benchmarked against each other (see the
//! `ablations` bench target and the `counting` experiment):
//!
//! * [`SparseCounter`] — hash-map based; good when candidate batches are tiny.
//! * [`count_sorted_runs`] — sort + run-length-encode; cache-friendly on
//!   skewed, bursty batches without auxiliary state.
//! * [`DenseCounter`] — epoch-stamped dense array over dense `u32` keys;
//!   O(1) per increment with no hashing and no sort of the raw multiset,
//!   the fastest option once batches carry real multiplicity. Pays O(key
//!   universe) memory per instance, so one is kept per worker thread.

use crate::hash::FxHashMap;
use crate::radix::{radix_sort_u32, radix_sort_u32_with};

/// Hash-based sparse counter over `u32` keys.
///
/// A thin wrapper around an Fx-hashed map that keeps the per-batch workflow
/// (`add*`, `drain_sorted_by_count`, implicit reset) explicit at call sites.
#[derive(Debug, Default, Clone)]
pub struct SparseCounter {
    counts: FxHashMap<u32, u32>,
}

impl SparseCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty counter with space for `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            counts: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Increments the multiplicity of `key`.
    #[inline]
    pub fn add(&mut self, key: u32) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Increments every key in `keys`.
    pub fn add_all(&mut self, keys: &[u32]) {
        for &k in keys {
            self.add(k);
        }
    }

    /// Adds `n` to the multiplicity of `key` in one step (bulk seeding
    /// from a precomputed ranked candidate set).
    pub fn add_n(&mut self, key: u32, n: u32) {
        if n > 0 {
            *self.counts.entry(key).or_insert(0) += n;
        }
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no key has been counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Multiplicity of `key` (0 when unseen).
    pub fn get(&self, key: u32) -> u32 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Decrements the multiplicity of `key`, removing it at zero. Used by
    /// the online engine to retract a shared item when a rating is deleted.
    ///
    /// # Panics
    /// Panics if `key` is not currently counted — a decrement without a
    /// matching increment is an accounting bug upstream.
    pub fn sub(&mut self, key: u32) {
        let count = self
            .counts
            .get_mut(&key)
            .unwrap_or_else(|| panic!("sub on uncounted key {key}"));
        *count -= 1;
        if *count == 0 {
            self.counts.remove(&key);
        }
    }

    /// Iterates `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// The `limit` keys with the highest counts, ordered by descending
    /// count (ties: ascending key) — the ranked-candidate-set prefix,
    /// without draining. A partial select keeps this `O(n + limit log
    /// limit)` rather than sorting the whole counter.
    pub fn top_by_count(&self, limit: usize) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        let order = |a: &(u32, u32), b: &(u32, u32)| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0));
        if pairs.len() > limit {
            pairs.select_nth_unstable_by(limit, order);
            pairs.truncate(limit);
        }
        pairs.sort_unstable_by(order);
        pairs
    }

    /// Drains the counter into `(key, count)` pairs ordered by descending
    /// count, ties broken by ascending key — the ranked-candidate-set order.
    pub fn drain_sorted_by_count(&mut self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        self.drain_sorted_into(&mut pairs);
        pairs
    }

    /// [`SparseCounter::drain_sorted_by_count`] into a caller-owned buffer
    /// (cleared first) — the allocation-free variant hot loops reuse.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(u32, u32)>) {
        out.clear();
        out.extend(self.counts.drain());
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }
}

/// Epoch-stamped dense multiplicity counter over `u32` keys.
///
/// Counts live in a flat array indexed by key; a parallel stamp array
/// records which epoch each slot was last written in, so "resetting"
/// between batches is a single epoch increment instead of an O(universe)
/// clear. Touched keys are recorded in first-touch order, making a full
/// drain O(distinct).
///
/// This is the engine behind `CountStrategy::Dense` in `kiff-core`: one
/// instance per worker thread, `begin()` per user, `add()` per gathered
/// candidate, then [`DenseCounter::emit_ranked`] produces the RCS order via
/// a counting sort over multiplicities (which are bounded by the user's
/// degree — each rated item contributes at most one shared item per
/// co-rater).
#[derive(Debug, Clone)]
pub struct DenseCounter {
    count: Vec<u32>,
    stamp: Vec<u32>,
    /// Distinct keys of the current batch, in first-touch order.
    touched: Vec<u32>,
    /// Starts at 1: fresh slots carry stamp 0 and therefore read as
    /// untouched even before the first [`DenseCounter::begin`].
    epoch: u32,
    /// Scratch histogram for [`DenseCounter::emit_ranked`]'s counting sort.
    hist: Vec<u32>,
    /// Radix-sort scratch for [`DenseCounter::emit_ranked`].
    sort_scratch: Vec<u32>,
}

impl Default for DenseCounter {
    fn default() -> Self {
        Self {
            count: Vec::new(),
            stamp: Vec::new(),
            touched: Vec::new(),
            epoch: 1,
            hist: Vec::new(),
            sort_scratch: Vec::new(),
        }
    }
}

impl DenseCounter {
    /// An empty counter; slots grow on demand (see [`DenseCounter::add`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty counter with slots for keys `0..capacity` preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut c = Self::default();
        c.ensure_capacity(capacity);
        c
    }

    /// An empty counter with only *stamp* slots for keys `0..capacity`
    /// preallocated — the mark-only sizing configuration
    /// ([`DenseCounter::mark`] never touches the count array, so sizing
    /// passes pay 4 bytes per key instead of 8). Count slots still grow
    /// on demand if [`DenseCounter::add`] is used later.
    pub fn with_stamp_capacity(capacity: usize) -> Self {
        let mut c = Self::default();
        c.stamp.resize(capacity, 0);
        c
    }

    /// Grows the slot arrays to cover keys `0..capacity`.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.count.len() < capacity {
            self.count.resize(capacity, 0);
        }
        // Fresh slots carry stamp 0; epoch starts at 1, so they read as
        // untouched. Guarded separately: mark-only use grows stamps ahead
        // of counts, and resizing must never truncate.
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
        }
    }

    /// Starts a new batch: all keys read as count 0 again.
    pub fn begin(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            // Epoch wrap: hard-reset the stamps once every 2^32 batches.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Increments `key`'s multiplicity (growing the slot arrays if `key` is
    /// beyond the current capacity).
    #[inline]
    pub fn add(&mut self, key: u32) {
        let k = key as usize;
        if k >= self.count.len() {
            self.ensure_capacity(k + 1);
        }
        if self.stamp[k] == self.epoch {
            self.count[k] += 1;
        } else {
            self.stamp[k] = self.epoch;
            self.count[k] = 1;
            self.touched.push(key);
        }
    }

    /// Stamps `key` without maintaining its count, returning whether it
    /// was unseen in the current batch — the distinct-only fast path of
    /// sizing passes (no count-array traffic or allocation, no
    /// touched-list push).
    ///
    /// Do not mix with [`DenseCounter::add`] inside one batch: a marked
    /// key reads as count 0 but would not be re-registered by `add`.
    #[inline]
    pub fn mark(&mut self, key: u32) -> bool {
        let k = key as usize;
        if k >= self.stamp.len() {
            self.stamp.resize(k + 1, 0);
        }
        if self.stamp[k] == self.epoch {
            false
        } else {
            self.stamp[k] = self.epoch;
            true
        }
    }

    /// Multiplicity of `key` in the current batch (0 when untouched).
    #[inline]
    pub fn get(&self, key: u32) -> u32 {
        let k = key as usize;
        if k < self.count.len() && self.stamp[k] == self.epoch {
            self.count[k]
        } else {
            0
        }
    }

    /// Number of distinct keys in the current batch.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.touched.len()
    }

    /// Writes up to `cap` `(key, count)` pairs of the current batch in RCS
    /// order — descending count, ties by ascending key — into `ids` (and
    /// `counts`, when provided), returning how many were written.
    ///
    /// Order is produced by a counting sort over multiplicities: keys are
    /// first sorted ascending (radix over the distinct set, not the raw
    /// multiset), bucketed by count, and emitted bucket-by-bucket from the
    /// highest count down, each bucket preserving ascending-key order. Cost
    /// is `O(distinct + max_count)`; `max_count` is bounded by the batch's
    /// maximum multiplicity (the user degree, in the RCS use).
    ///
    /// # Panics
    /// Panics if `ids` (or a provided `counts`) is shorter than
    /// `min(cap, distinct)`.
    pub fn emit_ranked(
        &mut self,
        cap: usize,
        ids: &mut [u32],
        mut counts: Option<&mut [u32]>,
    ) -> usize {
        let out_len = self.touched.len().min(cap);
        if out_len == 0 {
            return 0;
        }
        // Ties break by ascending key: feed keys ascending into the buckets.
        radix_sort_u32_with(&mut self.touched, &mut self.sort_scratch);

        let mut max_count = 0u32;
        for &key in &self.touched {
            max_count = max_count.max(self.count[key as usize]);
        }
        let buckets = max_count as usize + 1;
        if self.hist.len() < buckets {
            self.hist.resize(buckets, 0);
        }
        let hist = &mut self.hist[..buckets];
        hist.fill(0);
        for &key in &self.touched {
            hist[self.count[key as usize] as usize] += 1;
        }
        // hist[c] becomes the first output slot of count c, with higher
        // counts placed first.
        let mut next = 0u32;
        for c in (1..buckets).rev() {
            let run = hist[c];
            hist[c] = next;
            next += run;
        }
        for &key in &self.touched {
            let c = self.count[key as usize];
            let slot = hist[c as usize] as usize;
            hist[c as usize] += 1;
            if slot < out_len {
                ids[slot] = key;
                if let Some(out_counts) = counts.as_deref_mut() {
                    out_counts[slot] = c;
                }
            }
        }
        out_len
    }

    /// Drains the current batch into `(key, count)` pairs in RCS order —
    /// the [`SparseCounter::drain_sorted_by_count`] twin, for tests and
    /// one-off callers.
    pub fn drain_sorted_by_count(&mut self) -> Vec<(u32, u32)> {
        let n = self.distinct();
        let mut ids = vec![0u32; n];
        let mut counts = vec![0u32; n];
        self.emit_ranked(n, &mut ids, Some(&mut counts));
        self.begin();
        ids.into_iter().zip(counts).collect()
    }
}

/// Sort-based counting: sorts `keys` in place, then returns `(key, count)`
/// pairs ordered by descending count (ties: ascending key).
///
/// Equivalent to feeding `keys` through [`SparseCounter`] — property-tested
/// below — but with better cache behaviour on large batches.
pub fn count_sorted_runs(keys: &mut [u32]) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    count_sorted_runs_into(keys, &mut pairs);
    pairs
}

/// [`count_sorted_runs`] into a caller-owned buffer (cleared first) — the
/// allocation-free variant hot loops reuse.
pub fn count_sorted_runs_into(keys: &mut [u32], pairs: &mut Vec<(u32, u32)>) {
    pairs.clear();
    if keys.is_empty() {
        return;
    }
    radix_sort_u32(keys);
    let mut run_key = keys[0];
    let mut run_len = 0u32;
    for &k in keys.iter() {
        if k == run_key {
            run_len += 1;
        } else {
            pairs.push((run_key, run_len));
            run_key = k;
            run_len = 1;
        }
    }
    pairs.push((run_key, run_len));
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_multiplicities() {
        let mut c = SparseCounter::new();
        c.add_all(&[3, 1, 3, 3, 2, 1]);
        assert_eq!(c.get(3), 3);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 1);
        assert_eq!(c.get(99), 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn drain_orders_by_count_then_key() {
        let mut c = SparseCounter::new();
        c.add_all(&[5, 5, 9, 9, 1, 2]);
        assert_eq!(
            c.drain_sorted_by_count(),
            vec![(5, 2), (9, 2), (1, 1), (2, 1)]
        );
        assert!(c.is_empty());
    }

    #[test]
    fn sub_retracts_and_removes_at_zero() {
        let mut c = SparseCounter::new();
        c.add_all(&[4, 4, 8]);
        c.sub(4);
        assert_eq!(c.get(4), 1);
        c.sub(4);
        assert_eq!(c.get(4), 0);
        assert_eq!(c.len(), 1, "zeroed key is dropped");
        c.sub(8);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "sub on uncounted key")]
    fn sub_on_missing_key_panics() {
        SparseCounter::new().sub(3);
    }

    #[test]
    fn top_by_count_is_the_ranked_prefix() {
        let mut c = SparseCounter::new();
        c.add_all(&[5, 5, 5, 9, 9, 1, 2, 2]);
        assert_eq!(c.top_by_count(2), vec![(5, 3), (2, 2)]);
        assert_eq!(c.top_by_count(3), vec![(5, 3), (2, 2), (9, 2)]);
        // Beyond the population: everything, still ranked.
        assert_eq!(c.top_by_count(100), vec![(5, 3), (2, 2), (9, 2), (1, 1)]);
        // Non-destructive.
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn sorted_runs_empty_input() {
        let mut keys = vec![];
        assert!(count_sorted_runs(&mut keys).is_empty());
    }

    #[test]
    fn sorted_runs_single_run() {
        let mut keys = vec![7, 7, 7];
        assert_eq!(count_sorted_runs(&mut keys), vec![(7, 3)]);
    }

    #[test]
    fn sorted_runs_matches_hand_example() {
        // RCS_Alice from the paper (§II-C): counts decide the rank.
        let mut keys = vec![
            1, 1, 1, 1, 1, 1, 1, 1, 1, 1, // Bob shares 10
            2, 2, 2, 2, 2, 2, 2, 2, 2, // Carl shares 9
            3, 3, 3, 3, 3, 3, 3, 3, // Dave 8
            4, 4, 4, 4, 4, 4, // Xavier 6
            5, 5, 5, // Yann 3
        ];
        assert_eq!(
            count_sorted_runs(&mut keys),
            vec![(1, 10), (2, 9), (3, 8), (4, 6), (5, 3)]
        );
    }

    #[test]
    fn dense_counter_counts_and_resets_by_epoch() {
        let mut c = DenseCounter::with_capacity(16);
        c.begin();
        for k in [3u32, 1, 3, 3, 2, 1] {
            c.add(k);
        }
        assert_eq!(c.get(3), 3);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 1);
        assert_eq!(c.get(9), 0);
        assert_eq!(c.distinct(), 3);
        // New batch: everything reads zero without clearing slots.
        c.begin();
        assert_eq!(c.get(3), 0);
        assert_eq!(c.distinct(), 0);
    }

    #[test]
    fn dense_counter_usable_before_first_begin() {
        let mut c = DenseCounter::new();
        c.add(5);
        c.add(5);
        assert_eq!(c.get(5), 2);
        assert_eq!(c.distinct(), 1);
        assert_eq!(c.drain_sorted_by_count(), vec![(5, 2)]);
        let mut m = DenseCounter::with_capacity(8);
        assert!(m.mark(3));
        assert!(!m.mark(3));
    }

    #[test]
    fn dense_counter_grows_on_demand() {
        let mut c = DenseCounter::new();
        c.begin();
        c.add(1000);
        c.add(1000);
        assert_eq!(c.get(1000), 2);
        assert_eq!(c.distinct(), 1);
    }

    #[test]
    fn dense_drain_matches_sparse_order() {
        let keys = [5u32, 5, 9, 9, 1, 2];
        let mut dense = DenseCounter::new();
        dense.begin();
        for &k in &keys {
            dense.add(k);
        }
        let mut sparse = SparseCounter::new();
        sparse.add_all(&keys);
        assert_eq!(
            dense.drain_sorted_by_count(),
            sparse.drain_sorted_by_count()
        );
    }

    #[test]
    fn emit_ranked_caps_at_the_best_entries() {
        let mut c = DenseCounter::new();
        c.begin();
        for k in [5u32, 5, 5, 9, 9, 1, 2, 2] {
            c.add(k);
        }
        let mut ids = [0u32; 2];
        let mut counts = [0u32; 2];
        let written = c.emit_ranked(2, &mut ids, Some(&mut counts));
        assert_eq!(written, 2);
        assert_eq!(ids, [5, 2]);
        assert_eq!(counts, [3, 2]);
    }

    #[test]
    fn emit_ranked_empty_batch_writes_nothing() {
        let mut c = DenseCounter::new();
        c.begin();
        assert_eq!(c.emit_ranked(10, &mut [], None), 0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Hash-based and sort-based counting agree exactly.
            #[test]
            fn strategies_agree(keys in proptest::collection::vec(0u32..300, 0..600)) {
                let mut hash = SparseCounter::new();
                hash.add_all(&keys);
                let mut keys_mut = keys.clone();
                prop_assert_eq!(hash.drain_sorted_by_count(), count_sorted_runs(&mut keys_mut));
            }

            /// Dense counting agrees with both reference strategies across
            /// consecutive batches (epoch reuse).
            #[test]
            fn dense_agrees_across_batches(
                batches in proptest::collection::vec(
                    proptest::collection::vec(0u32..300, 0..200), 1..4)
            ) {
                let mut dense = DenseCounter::new();
                for keys in &batches {
                    dense.begin();
                    for &k in keys {
                        dense.add(k);
                    }
                    let mut keys_mut = keys.clone();
                    prop_assert_eq!(
                        dense.drain_sorted_by_count(),
                        count_sorted_runs(&mut keys_mut)
                    );
                }
            }

            /// Total multiplicity equals input length.
            #[test]
            fn counts_sum_to_len(keys in proptest::collection::vec(any::<u32>(), 0..400)) {
                let mut keys_mut = keys.clone();
                let total: u64 = count_sorted_runs(&mut keys_mut)
                    .iter()
                    .map(|&(_, c)| u64::from(c))
                    .sum();
                prop_assert_eq!(total, keys.len() as u64);
            }
        }
    }
}
