//! Lock-free read path benchmark: `BENCH_reads.json`.
//!
//! Proves ISSUE 10's serving property on a live TCP daemon: queries are
//! answered from the published read view and never wait on the writer's
//! mutex. Two measured windows over the same planted dataset:
//!
//! 1. **Idle** — 8 reader threads hammer `neighbors` with no writer.
//! 2. **Contended** — the same 8 readers while one writer streams
//!    Zipf-skewed update batches back-to-back.
//!
//! Gates (hard, via `ctx.violations`):
//!
//! - `serve.read_wait_ns` p99 stays under a millisecond in *both*
//!   windows: the view load is an atomic epoch check, so even a writer
//!   mid-`apply_batch` cannot stall it. This is the direct lock-freedom
//!   instrument and is core-count independent.
//! - Contended read p99 and throughput stay within a factor of the idle
//!   window. The factors are tiered by `available_parallelism`: with 8+
//!   cores the readers and the writer genuinely run in parallel and the
//!   paper numbers apply (p99 <= 5x idle, throughput >= 0.9x); on
//!   smaller hosts the writer *timeshares the CPU* with the readers, so
//!   the gate relaxes to a bound that still fails a mutex-serialized
//!   read path (which collapses throughput by 10-50x, not percents).
//! - Every reader observes monotone view versions, and the daemon's
//!   final state equals a fault-free mirror run batch-for-batch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use kiff_dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff_dataset::zipf::Zipf;
use kiff_dataset::Dataset;
use kiff_online::{KnnEngine, OnlineConfig, OnlineKnn, Update};
use kiff_serve::{Client, EngineHost, Request, Server};
use kiff_telemetry::Registry;

use super::{Ctx, STREAM_K};

const BATCH: usize = 32;
const READERS: usize = 8;
/// View loads must stay sub-millisecond at p99 even under write load —
/// an epoch check plus an occasional `Arc` clone, never a mutex wait.
const MAX_READ_WAIT_P99_US: f64 = 1_000.0;
/// Idle p99 below this is timer noise; the ratio gate floors on it.
const IDLE_P99_FLOOR_US: f64 = 50.0;

/// (max contended p99 / idle p99, min contended qps / idle qps) tiered
/// by how much real parallelism the host has. Below 8 cores the writer
/// steals CPU from the readers, which is scheduling, not locking.
fn contention_gates(cores: usize) -> (f64, f64) {
    if cores >= 8 {
        (5.0, 0.9)
    } else if cores >= 2 {
        (15.0, 0.6)
    } else {
        (30.0, 0.3)
    }
}

fn reads_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    let users = ((10_000.0 * m) as usize).max(1_500);
    generate_planted(&PlantedConfig {
        name: "bench-reads".to_string(),
        num_users: users,
        num_items: (users * 4) / 5,
        communities: 8,
        ratings_per_user: 20,
        affinity: 0.8,
        ..PlantedConfig::tiny("bench-reads", seed)
    })
    .0
}

/// Zipf-skewed arrivals, deterministic in the seed — the daemon and the
/// mirror apply the identical stream at identical batch boundaries.
fn reads_stream(ds: &Dataset, seed: u64) -> Vec<Update> {
    let user_dist = Zipf::new(ds.num_users(), 1.1);
    let item_dist = Zipf::new(ds.num_items(), 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ds.num_users())
        .map(|_| Update::AddRating {
            user: user_dist.sample(&mut rng) as u32,
            item: item_dist.sample(&mut rng) as u32,
            rating: 1.0,
        })
        .collect()
}

/// What one reader thread brings home from a measured window.
struct ReaderReport {
    latencies_ns: Vec<u64>,
    queries: u64,
    max_view: u64,
}

/// Spawns `READERS` threads querying `neighbors` round-robin until
/// `stop` flips, each asserting the stamped view version never goes
/// backwards on its connection.
fn spawn_readers(
    addr: &str,
    num_users: u32,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<ReaderReport>> {
    (0..READERS)
        .map(|r| {
            let addr = addr.to_string();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("reader connects");
                let mut report = ReaderReport {
                    latencies_ns: Vec::new(),
                    queries: 0,
                    max_view: 0,
                };
                let mut u = r as u32;
                while !stop.load(Ordering::Relaxed) {
                    let started = Instant::now();
                    let reply = client
                        .request(&Request::Neighbors {
                            user: u % num_users,
                        })
                        .expect("neighbors over the wire");
                    report
                        .latencies_ns
                        .push(started.elapsed().as_nanos() as u64);
                    let view = reply
                        .get("view")
                        .and_then(serde_json::Value::as_u64)
                        .expect("view-served responses stamp a version");
                    assert!(
                        view >= report.max_view,
                        "view went backwards: {view} after {}",
                        report.max_view
                    );
                    report.max_view = view;
                    report.queries += 1;
                    u = u.wrapping_add(READERS as u32);
                }
                report
            })
        })
        .collect()
}

/// Joins one window's readers into (p99 us, aggregate qps, max view).
fn collect(handles: Vec<std::thread::JoinHandle<ReaderReport>>, window_s: f64) -> (f64, f64, u64) {
    let mut latencies = Vec::new();
    let mut queries = 0u64;
    let mut max_view = 0u64;
    for h in handles {
        let report = h.join().expect("reader thread");
        latencies.extend(report.latencies_ns);
        queries += report.queries;
        max_view = max_view.max(report.max_view);
    }
    latencies.sort_unstable();
    let p99 = if latencies.is_empty() {
        0.0
    } else {
        latencies[(latencies.len() - 1) * 99 / 100] as f64 / 1_000.0
    };
    (p99, queries as f64 / window_s.max(1e-9), max_view)
}

/// Runs the lock-free read benchmark and writes `BENCH_reads.json`.
pub fn reads(ctx: &mut Ctx) -> String {
    let base = reads_dataset(ctx.scale.multiplier, ctx.seed);
    let stream = reads_stream(&base, ctx.seed);
    let num_users = base.num_users() as u32;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (max_p99_ratio, min_qps_ratio) = contention_gates(cores);

    // Storeless daemon: the WAL's fsync cost belongs to the `serve`
    // benchmark; this one isolates the read path against the in-memory
    // apply, which is where the old mutex serialization lived.
    let registry = Registry::new();
    let config = OnlineConfig::new(STREAM_K).with_telemetry(registry.clone());
    let engine = Box::new(OnlineKnn::new(&base, config));
    let host = EngineHost::new(engine, None, registry.clone());
    let server = Server::bind("127.0.0.1:0", host).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    // Window 1: write-idle baseline.
    let stop = Arc::new(AtomicBool::new(false));
    let readers = spawn_readers(&addr, num_users, &stop);
    let idle_start = Instant::now();
    std::thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    let idle_s = idle_start.elapsed().as_secs_f64();
    let (idle_p99_us, idle_qps, _) = collect(readers, idle_s);

    // Window 2: the same readers against a writer streaming the whole
    // update stream back-to-back.
    let stop = Arc::new(AtomicBool::new(false));
    let readers = spawn_readers(&addr, num_users, &stop);
    let contended_start = Instant::now();
    let writer_addr = addr.clone();
    let writer_stream = stream.clone();
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(&writer_addr).expect("writer connects");
        for chunk in writer_stream.chunks(BATCH) {
            client.update(chunk).expect("update batch acked");
        }
    });
    writer.join().expect("writer thread");
    stop.store(true, Ordering::Relaxed);
    let contended_s = contended_start.elapsed().as_secs_f64();
    let (cont_p99_us, cont_qps, max_view) = collect(readers, contended_s);

    // Mirror run: identical stream, identical batch boundaries. The
    // daemon's served answers must match it exactly.
    let mut mirror = OnlineKnn::new(&base, OnlineConfig::new(STREAM_K));
    for chunk in stream.chunks(BATCH) {
        mirror.apply_batch(chunk.to_vec());
    }
    let batches = stream.chunks(BATCH).len() as u64;
    let mut probe = Client::connect(&addr).expect("probe connects");
    let stats = probe.stats().expect("stats over the wire");
    let served_updates = stats
        .get("updates")
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0);
    let mirror_graph = mirror.graph();
    for u in (0..num_users).step_by((num_users as usize / 16).max(1)) {
        let served = probe.neighbors(u).expect("neighbors over the wire");
        let expected = mirror_graph.neighbors(u);
        assert_eq!(
            served.len(),
            expected.len(),
            "served neighbor list diverges from the mirror at user {u}"
        );
        for (s, e) in served.iter().zip(expected) {
            assert_eq!(s.id, e.id, "neighbor ids diverge at user {u}");
        }
    }
    probe.shutdown().expect("graceful shutdown");
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");

    let read_wait_p99_us = registry
        .snapshot()
        .histogram("serve.read_wait_ns")
        .map(|h| h.p99 as f64 / 1_000.0)
        .unwrap_or(0.0);
    let idle_floor_us = idle_p99_us.max(IDLE_P99_FLOOR_US);
    let p99_ratio = cont_p99_us / idle_floor_us.max(1e-9);
    let qps_ratio = cont_qps / idle_qps.max(1e-9);

    let mut out = String::new();
    out.push_str(&format!(
        "Lock-free read path on {}: {} users, {READERS} readers, \
         {} streamed updates (k={STREAM_K}, batch {BATCH}, {cores} cores)\n\n\
         {:>24}: {idle_qps:>10.0} queries/s (p99 {idle_p99_us:.0} us, {idle_s:.2} s window)\n\
         {:>24}: {cont_qps:>10.0} queries/s (p99 {cont_p99_us:.0} us, {contended_s:.2} s window)\n\
         {:>24}: {qps_ratio:>10.2}x (gate >= {min_qps_ratio})\n\
         {:>24}: {p99_ratio:>10.2}x (gate <= {max_p99_ratio}, idle floored at {IDLE_P99_FLOOR_US} us)\n\
         {:>24}: {read_wait_p99_us:>10.1} us (gate <= {MAX_READ_WAIT_P99_US})\n\
         {:>24}: {max_view:>10} (of {batches} batches; monotone per connection)\n",
        base.name(),
        base.num_users(),
        stream.len(),
        "idle reads",
        "contended reads",
        "throughput ratio",
        "p99 ratio",
        "view load p99",
        "max view seen",
    ));

    if read_wait_p99_us > MAX_READ_WAIT_P99_US {
        let msg = format!(
            "reads/lock-free: serve.read_wait_ns p99 {read_wait_p99_us:.1}us exceeds \
             {MAX_READ_WAIT_P99_US}us — reads are waiting on the writer"
        );
        eprintln!("READ PATH VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    if p99_ratio > max_p99_ratio {
        let msg = format!(
            "reads/latency: contended p99 {cont_p99_us:.0}us is {p99_ratio:.1}x idle \
             ({idle_floor_us:.0}us floored), gate {max_p99_ratio}x at {cores} cores"
        );
        eprintln!("READ PATH VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    if qps_ratio < min_qps_ratio {
        let msg = format!(
            "reads/throughput: contended {cont_qps:.0} q/s is {qps_ratio:.2}x idle \
             {idle_qps:.0} q/s, gate {min_qps_ratio}x at {cores} cores"
        );
        eprintln!("READ PATH VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    if served_updates != mirror.stats().updates {
        let msg = format!(
            "reads/consistency: daemon applied {served_updates} updates, mirror {}",
            mirror.stats().updates
        );
        eprintln!("READ PATH VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }

    let dataset_v = serde_json::json!({
        "name": base.name(),
        "num_users": base.num_users(),
        "num_items": base.num_items(),
        "streamed_updates": stream.len()
    });
    let idle_v = serde_json::json!({
        "qps": idle_qps, "p99_us": idle_p99_us, "window_s": idle_s
    });
    let contended_v = serde_json::json!({
        "qps": cont_qps, "p99_us": cont_p99_us, "window_s": contended_s
    });
    let ratios_v = serde_json::json!({ "qps": qps_ratio, "p99": p99_ratio });
    let gates_v = serde_json::json!({
        "max_p99_ratio": max_p99_ratio,
        "min_qps_ratio": min_qps_ratio,
        "max_read_wait_p99_us": MAX_READ_WAIT_P99_US
    });
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": STREAM_K,
        "batch": BATCH,
        "readers": READERS,
        "cores": cores,
        "idle": idle_v,
        "contended": contended_v,
        "ratios": ratios_v,
        "gates": gates_v,
        "read_wait_p99_us": read_wait_p99_us,
        "batches": batches,
        "max_view": max_view
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_reads.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_reads.json: {e}"));
    }
    ctx.finish(
        "reads",
        "Lock-free read path: query p99 and throughput under write load vs idle",
        out,
        &payload,
    )
}
