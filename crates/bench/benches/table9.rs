//! Bench for Table IX: density-family derivation (random rating removal)
//! and the counting phase across densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_core::{build_rcs, CountingConfig};
use kiff_dataset::subsample_ratings;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(9);
    let mut group = c.benchmark_group("table9");
    group.sample_size(20);
    group.bench_function("subsample_half", |b| {
        b.iter(|| black_box(subsample_ratings(&ds, ds.num_ratings() / 2, 1)))
    });
    for keep in [100usize, 50, 25] {
        let sub = subsample_ratings(&ds, ds.num_ratings() * keep / 100, 2);
        let _ = sub.item_profiles();
        group.bench_with_input(
            BenchmarkId::new("counting_phase_pct", keep),
            &sub,
            |b, sub| b.iter(|| black_box(build_rcs(sub, &CountingConfig::default()))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
