//! Table I (dataset description) and Fig. 4 (profile-size CCDFs).

use kiff_dataset::stats::{item_profile_sizes, user_profile_sizes};
use kiff_dataset::{DatasetStats, PaperDataset};
use kiff_eval::table::{fmt_percent, Table};
use kiff_eval::Ccdf;

use super::Ctx;

/// Table I: `|U|`, `|I|`, `|E|`, density, average profile sizes — measured
/// on our calibrated stand-ins, with the paper's reference values inline.
pub fn table1(ctx: &mut Ctx) -> String {
    let mut table = Table::new(&[
        "Dataset",
        "#Users |U|",
        "#Items |I|",
        "#Ratings |E|",
        "Density",
        "Avg |UP|",
        "Avg |IP|",
    ]);
    let mut rows = Vec::new();
    for d in PaperDataset::ALL {
        let ds = ctx.dataset(d);
        let stats = DatasetStats::compute(&ds);
        let paper = d.paper_row();
        table.push_row(&[
            d.name().to_string(),
            format!("{}", stats.num_users),
            format!("{}", stats.num_items),
            format!("{}", stats.num_ratings),
            fmt_percent(stats.density),
            format!("{:.1}", stats.avg_user_profile),
            format!("{:.1}", stats.avg_item_profile),
        ]);
        table.push_row(&[
            "  (paper)".to_string(),
            format!("{}", paper.users),
            format!("{}", paper.items),
            format!("{}", paper.ratings),
            format!("{:.4}%", paper.density_percent),
            format!("{:.1}", paper.avg_up),
            format!("{:.1}", paper.avg_ip),
        ]);
        rows.push(stats);
    }
    let text = format!(
        "Table I: dataset description (calibrated synthetic stand-ins; scale multiplier {:.3})\n\n{}",
        ctx.scale.multiplier,
        table.render()
    );
    ctx.finish("table1", "Dataset description (Table I)", text, &rows)
}

/// Fig. 4: CCDF of user- and item-profile sizes, sampled at log-spaced
/// points.
pub fn fig4(ctx: &mut Ctx) -> String {
    let mut out = String::from("Fig. 4: CCDF of profile sizes, P(size >= x)\n");
    let mut payload = Vec::new();
    for d in PaperDataset::ALL {
        let ds = ctx.dataset(d);
        let up = Ccdf::from_observations(&user_profile_sizes(&ds));
        let ip = Ccdf::from_observations(&item_profile_sizes(&ds));
        out.push_str(&format!("\n-- {} --\n", d.name()));
        let mut table = Table::new(&["x", "P(|UP|>=x)", "P(|IP|>=x)"]);
        for x in [1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1000] {
            table.push_row(&[
                x.to_string(),
                format!("{:.4}", up.at(x)),
                format!("{:.4}", ip.at(x)),
            ]);
        }
        out.push_str(&table.render());
        payload.push((d.name().to_string(), up.log_samples(4), ip.log_samples(4)));
    }
    out.push_str(
        "\nLong tails on every dataset: most users have few ratings, a few have \
         very many (consistent with the paper's Fig. 4).\n",
    );
    ctx.finish(
        "fig4",
        "CCDF of user/item profile sizes (Fig. 4)",
        out,
        &payload,
    )
}
