//! Skew stress: deterministic power-law (Zipf) streams that unbalance a
//! fixed-at-admission sharding, pinning the two rebalancing claims:
//!
//! * with the [`Rebalancer`](kiff::online::RebalanceConfig) active, the
//!   `shard_sizes()` max/min ratio stays under the configured bound on a
//!   stream that provably blows past it without rebalancing;
//! * on the same stream, [`CommunityPartitioner`] sends strictly fewer
//!   cross-shard messages than [`HashPartitioner`] — co-locating
//!   co-raters is what the message queues stop paying for.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use kiff::dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff::dataset::zipf::Zipf;
use kiff::dataset::Dataset;
use kiff::online::{
    CommunityPartitioner, HashPartitioner, OnlineConfig, Partitioner, RangePartitioner,
    RebalanceConfig, ShardConfig, ShardedOnlineKnn, Update,
};

const SHARDS: usize = 4;
const MAX_RATIO: f64 = 2.0;

fn planted(seed: u64) -> Dataset {
    generate_planted(&PlantedConfig {
        num_users: 240,
        num_items: 200,
        communities: SHARDS,
        ratings_per_user: 10,
        affinity: 0.9,
        ..PlantedConfig::tiny("shard-stress", seed)
    })
    .0
}

/// A power-law arrival stream: `updates` ratings whose users are drawn
/// Zipf-skewed over the population (hot users dominate), plus
/// `new_users` brand-new users appended with small hot-block profiles —
/// the growth pattern that floods a range-sharded tail. The bench's
/// `rebalance` experiment replays the same shape at benchmark scale
/// (`crates/bench/src/experiments/rebalance.rs`); keep the two in step.
fn zipf_stream(ds: &Dataset, updates: usize, new_users: u32, seed: u64) -> Vec<Update> {
    let n = ds.num_users() as u32;
    let items = ds.num_items() as u32;
    let user_dist = Zipf::new(n as usize, 1.1);
    let item_dist = Zipf::new(items as usize, 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(updates + 3 * new_users as usize);
    for _ in 0..updates {
        stream.push(Update::AddRating {
            user: user_dist.sample(&mut rng) as u32,
            item: item_dist.sample(&mut rng) as u32,
            rating: 1.0,
        });
    }
    for i in 0..new_users {
        for j in 0..3u32 {
            stream.push(Update::AddRating {
                user: n + i,
                item: (i * 11 + j * 5) % (items / SHARDS as u32),
                rating: 1.0,
            });
        }
    }
    stream
}

fn replay(
    base: &Dataset,
    stream: &[Update],
    partitioner: Arc<dyn Partitioner>,
    rebalance: Option<RebalanceConfig>,
) -> ShardedOnlineKnn {
    let mut config = ShardConfig::new(SHARDS)
        .with_threads(2)
        .with_partitioner(partitioner);
    if let Some(r) = rebalance {
        config = config.with_rebalance(r);
    }
    let mut engine = ShardedOnlineKnn::new(base, OnlineConfig::new(5), config);
    for chunk in stream.chunks(64) {
        engine.apply_batch(chunk.iter().copied());
    }
    engine.validate_invariants();
    engine
}

fn size_ratio(engine: &ShardedOnlineKnn) -> f64 {
    let sizes = engine.shard_sizes();
    let max = *sizes.iter().max().expect("shards") as f64;
    let min = (*sizes.iter().min().expect("shards")).max(1) as f64;
    max / min
}

/// Range sharding + growing ids: without the rebalancer the tail shard
/// hoards every new user and the size ratio blows past the bound; with
/// it, the ratio stays under the bound and the graph state stays
/// consistent.
#[test]
fn rebalancer_bounds_shard_size_ratio_under_zipf_growth() {
    let base = planted(7);
    let stream = zipf_stream(&base, 600, 120, 7);
    let range = RangePartitioner::for_population(base.num_users(), SHARDS);

    let skewed = replay(&base, &stream, Arc::new(range), None);
    assert!(
        size_ratio(&skewed) > MAX_RATIO,
        "stream too tame to test the bound: ratio {:.2}, sizes {:?}",
        size_ratio(&skewed),
        skewed.shard_sizes()
    );
    assert_eq!(skewed.migrations_total(), 0, "no rebalancer, no moves");

    let balanced = replay(
        &base,
        &stream,
        Arc::new(range),
        Some(RebalanceConfig::new(MAX_RATIO)),
    );
    assert!(
        size_ratio(&balanced) <= MAX_RATIO,
        "rebalancer missed the bound: ratio {:.2}, sizes {:?}",
        size_ratio(&balanced),
        balanced.shard_sizes()
    );
    let rb = balanced.rebalance_stats();
    assert!(rb.cycles > 0 && rb.migrations > 0, "{rb:?}");
    // Same stream, same ratings — rebalancing moved ownership only.
    assert_eq!(
        balanced.data().num_ratings(),
        skewed.data().num_ratings(),
        "migration lost ratings"
    );
}

/// Community-aware placement sends strictly fewer cross-shard messages
/// than hash placement on the same Zipf stream.
#[test]
fn community_partitioner_beats_hash_on_cross_traffic() {
    let base = planted(11);
    let stream = zipf_stream(&base, 800, 0, 11);

    let hash = replay(&base, &stream, Arc::new(HashPartitioner), None);
    let community = replay(
        &base,
        &stream,
        Arc::new(CommunityPartitioner::from_dataset(&base, SHARDS)),
        None,
    );
    assert_eq!(
        hash.data().num_ratings(),
        community.data().num_ratings(),
        "replays diverged"
    );
    let (h, c) = (
        hash.cross_shard_messages(),
        community.cross_shard_messages(),
    );
    assert!(h > 0, "hash run never crossed shards — stream too tame");
    assert!(
        c < h,
        "community partitioner did not cut cross traffic: community {c} vs hash {h}"
    );
}

/// The per-shard cross-traffic counters sum to the engine total, and a
/// community layout concentrates what little traffic remains.
#[test]
fn cross_traffic_counters_are_consistent() {
    let base = planted(13);
    let stream = zipf_stream(&base, 300, 10, 13);
    let engine = replay(
        &base,
        &stream,
        Arc::new(CommunityPartitioner::from_dataset(&base, SHARDS)),
        Some(RebalanceConfig::new(MAX_RATIO)),
    );
    assert_eq!(
        engine.shard_cross_traffic().iter().sum::<u64>(),
        engine.cross_shard_messages(),
        "per-shard counters must sum to the lifetime total"
    );
    assert_eq!(
        engine.lifetime_stats().cross_messages,
        engine.cross_shard_messages()
    );
}
