//! Tie-aware recall (Eq. 2–4 of the paper).
//!
//! "The recall is then obtained by comparing the similarity values of the
//! ideal neighborhoods and those of the approximated ones" (§IV-C): an
//! approximate neighbour counts if its similarity reaches the k-th best
//! exact similarity. This realises Eq. (3)'s maximum over all optimal KNN
//! sets without enumerating them — any neighbour at or above the threshold
//! belongs to some optimal set.

use kiff_similarity::SIM_EPSILON;

use crate::knn::{KnnGraph, Neighbor};

/// Recall of one user's approximate neighbourhood against the exact one.
///
/// `exact` and `approx` are sorted best-first; `k` is the target
/// neighbourhood size. When the exact graph has fewer than `k` positive
/// neighbours, the k-th exact similarity is 0 and missing approximate slots
/// are vacuously correct (an empty slot "ties" the zero threshold), which
/// matches Eq. (3)'s handling of non-unique KNN sets.
pub fn recall_user(exact: &[Neighbor], approx: &[Neighbor], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let threshold = if exact.len() >= k {
        exact[k - 1].sim
    } else {
        0.0
    };
    let mut matched = approx
        .iter()
        .take(k)
        .filter(|n| n.sim >= threshold - SIM_EPSILON)
        .count();
    if threshold <= SIM_EPSILON {
        // Zero threshold: absent entries tie trivially.
        matched += k.saturating_sub(approx.len().min(k));
    }
    (matched.min(k)) as f64 / k as f64
}

/// Per-user recalls of `approx` against `exact`.
pub fn recall_per_user(exact: &KnnGraph, approx: &KnnGraph) -> Vec<f64> {
    assert_eq!(
        exact.num_users(),
        approx.num_users(),
        "graphs cover different user sets"
    );
    let k = exact.k();
    (0..exact.num_users() as u32)
        .map(|u| recall_user(exact.neighbors(u), approx.neighbors(u), k))
        .collect()
}

/// Average recall over all users (Eq. 4).
pub fn recall(exact: &KnnGraph, approx: &KnnGraph) -> f64 {
    let per_user = recall_per_user(exact, approx);
    if per_user.is_empty() {
        return 1.0;
    }
    per_user.iter().sum::<f64>() / per_user.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(id: u32, sim: f64) -> Neighbor {
        Neighbor { id, sim }
    }

    #[test]
    fn perfect_match_is_one() {
        let exact = vec![nb(1, 0.9), nb(2, 0.8)];
        assert_eq!(recall_user(&exact, &exact, 2), 1.0);
    }

    #[test]
    fn half_match() {
        let exact = vec![nb(1, 0.9), nb(2, 0.8)];
        let approx = vec![nb(1, 0.9), nb(3, 0.5)];
        assert_eq!(recall_user(&exact, &approx, 2), 0.5);
    }

    #[test]
    fn ties_at_kth_value_are_not_penalised() {
        // Exact kept ids {1, 2} but id 3 has the same similarity as id 2:
        // {1, 3} is an equally optimal KNN set (Eq. 3).
        let exact = vec![nb(1, 0.9), nb(2, 0.8)];
        let approx = vec![nb(1, 0.9), nb(3, 0.8)];
        assert_eq!(recall_user(&exact, &approx, 2), 1.0);
    }

    #[test]
    fn short_exact_neighbourhood_gives_zero_threshold() {
        // Only one positive candidate exists; any second approx slot (or
        // its absence) is vacuously optimal.
        let exact = vec![nb(1, 0.9)];
        let approx_full = vec![nb(1, 0.9), nb(7, 0.0)];
        assert_eq!(recall_user(&exact, &approx_full, 2), 1.0);
        let approx_short = vec![nb(1, 0.9)];
        assert_eq!(recall_user(&exact, &approx_short, 2), 1.0);
        let approx_wrong = vec![nb(5, 0.0), nb(7, 0.0)];
        assert_eq!(recall_user(&exact, &approx_wrong, 2), 1.0);
    }

    #[test]
    fn missing_good_neighbor_is_penalised() {
        let exact = vec![nb(1, 0.9), nb(2, 0.8)];
        let approx: Vec<Neighbor> = vec![];
        assert_eq!(recall_user(&exact, &approx, 2), 0.0);
    }

    #[test]
    fn extra_entries_beyond_k_ignored() {
        let exact = vec![nb(1, 0.9), nb(2, 0.8)];
        let approx = vec![nb(3, 0.1), nb(4, 0.1), nb(1, 0.9)];
        // Only the first k = 2 approx entries are the neighbourhood.
        assert_eq!(recall_user(&exact, &approx, 2), 0.0);
    }

    #[test]
    fn graph_recall_averages_users() {
        let exact = KnnGraph::from_neighbors(1, vec![vec![nb(1, 0.9)], vec![nb(0, 0.9)]]);
        let approx = KnnGraph::from_neighbors(1, vec![vec![nb(1, 0.9)], vec![nb(1, 0.0)]]);
        // User 1's approx list contains a self-ish wrong entry with sim 0 <
        // 0.9 threshold: recall 0. Average = 0.5.
        assert_eq!(recall(&exact, &approx), 0.5);
    }

    #[test]
    #[should_panic(expected = "different user sets")]
    fn mismatched_graphs_panic() {
        let a = KnnGraph::from_neighbors(1, vec![vec![]]);
        let b = KnnGraph::from_neighbors(1, vec![vec![], vec![]]);
        let _ = recall(&a, &b);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Recall is always in [0, 1], and the exact graph scores 1
            /// against itself.
            #[test]
            fn recall_bounds(
                sims in proptest::collection::vec(0u32..100, 0..30),
                k in 1usize..10,
            ) {
                let mut exact: Vec<Neighbor> = sims
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| nb(i as u32 + 1, f64::from(s) / 100.0))
                    .filter(|n| n.sim > 0.0)
                    .collect();
                exact.sort_by(|a, b| b.sim.partial_cmp(&a.sim).unwrap());
                let r = recall_user(&exact, &exact, k);
                prop_assert!((0.0..=1.0).contains(&r));
                prop_assert_eq!(r, 1.0);
            }

            /// Removing entries from the approximation can only lower (or
            /// keep) recall.
            #[test]
            fn recall_monotone_in_prefix(
                sims in proptest::collection::vec(1u32..100, 1..30),
                k in 1usize..10,
                cut in 0usize..30,
            ) {
                let mut exact: Vec<Neighbor> = sims
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| nb(i as u32 + 1, f64::from(s) / 100.0))
                    .collect();
                exact.sort_by(|a, b| b.sim.partial_cmp(&a.sim).unwrap());
                let cut = cut.min(exact.len());
                let full = recall_user(&exact, &exact, k);
                let partial = recall_user(&exact, &exact[..cut], k);
                prop_assert!(partial <= full + 1e-12);
            }
        }
    }
}
