//! Cross-crate property-based tests on randomly generated datasets.

use proptest::prelude::*;

use kiff::prelude::*;
use kiff_core::{build_rcs, CountingConfig, KiffConfig};
use kiff_dataset::subsample_ratings;
use kiff_graph::exact_knn_brute;
use kiff_similarity::intersect_count;

/// A small random dataset strategy: up to 40 users, 30 items.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        2usize..40,
        2usize..30,
        proptest::collection::vec((0u32..40, 0u32..30, 1u32..5), 1..300),
    )
        .prop_map(|(nu, ni, triples)| {
            let mut b = DatasetBuilder::new("prop", nu, ni);
            for (u, i, r) in triples {
                b.add_rating(u % nu as u32, i % ni as u32, r as f32);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// KIFF in exact mode (γ = ∞, β = 0) equals brute force on any random
    /// dataset — the paper's §III-D optimality claim.
    #[test]
    fn kiff_exact_equals_brute_force(ds in arb_dataset(), k in 1usize..8) {
        let sim = WeightedCosine::fit(&ds);
        let kiff = Kiff::new(KiffConfig::exact(k).with_threads(1)).run(&ds, &sim).graph;
        let brute = exact_knn_brute(&ds, &sim, k, Some(1));
        for u in 0..ds.num_users() as u32 {
            prop_assert_eq!(kiff.neighbors(u), brute.neighbors(u), "user {}", u);
        }
    }

    /// The scan rate of any KIFF run never exceeds the RCS-induced bound
    /// (§III-D: #similarity computations ≤ Σ|RCS|).
    #[test]
    fn scan_rate_bounded_by_rcs(ds in arb_dataset(), k in 1usize..6) {
        let sim = WeightedCosine::fit(&ds);
        let result = Kiff::new(KiffConfig::new(k).with_threads(1)).run(&ds, &sim);
        let rcs = build_rcs(&ds, &CountingConfig::default());
        prop_assert!(result.stats.sim_evals as usize <= rcs.total());
    }

    /// Recall of KIFF with default parameters against exact ground truth
    /// is high on any dataset (the paper's headline 0.99; small random
    /// data occasionally dips slightly, so assert ≥ 0.9).
    #[test]
    fn kiff_default_recall_high(ds in arb_dataset()) {
        let k = 3;
        let sim = WeightedCosine::fit(&ds);
        let exact = exact_knn(&ds, &sim, k, Some(1));
        let graph = Kiff::new(KiffConfig::new(k).with_threads(1)).run(&ds, &sim).graph;
        prop_assert!(recall(&exact, &graph) >= 0.9);
    }

    /// The pivoted RCSs partition the sharing pairs: the total RCS size
    /// equals the number of user pairs with at least one shared item.
    #[test]
    fn rcs_total_counts_sharing_pairs(ds in arb_dataset()) {
        let rcs = build_rcs(&ds, &CountingConfig { threads: Some(1), ..Default::default() });
        let n = ds.num_users() as u32;
        let mut sharing_pairs = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                if intersect_count(ds.user_profile(u).items, ds.user_profile(v).items) > 0 {
                    sharing_pairs += 1;
                }
            }
        }
        prop_assert_eq!(rcs.total(), sharing_pairs);
    }

    /// Subsampling ratings never increases density, and the subsampled
    /// dataset still supports the full pipeline.
    #[test]
    fn density_family_pipeline(ds in arb_dataset(), keep_pct in 10usize..100) {
        let target = ds.num_ratings() * keep_pct / 100;
        let sub = subsample_ratings(&ds, target, 9);
        prop_assert!(sub.density() <= ds.density() + 1e-12);
        prop_assert_eq!(sub.num_users(), ds.num_users());
        let graph = KnnGraphBuilder::new(2).threads(1).build(&sub);
        prop_assert_eq!(graph.num_users(), sub.num_users());
    }

    /// Graph-level invariants of KIFF outputs: sorted unique neighbours,
    /// no self-loops, similarities within the metric's range.
    #[test]
    fn kiff_graph_invariants(ds in arb_dataset(), k in 1usize..6) {
        let graph = KnnGraphBuilder::new(k).threads(1).build(&ds);
        for u in 0..ds.num_users() as u32 {
            let ns = graph.neighbors(u);
            prop_assert!(ns.len() <= k);
            prop_assert!(ns.windows(2).all(|w| w[0].sim >= w[1].sim));
            prop_assert!(ns.iter().all(|n| n.id != u));
            prop_assert!(ns.iter().all(|n| (0.0..=1.0 + 1e-9).contains(&n.sim)));
            let mut ids: Vec<u32> = ns.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), ns.len());
        }
    }

    /// Recall is monotone in the quality of the approximation: the exact
    /// graph always scores 1.0 against itself, and the empty graph can
    /// only win via zero-similarity ties.
    #[test]
    fn recall_extremes(ds in arb_dataset(), k in 1usize..5) {
        let sim = WeightedCosine::fit(&ds);
        let exact = exact_knn(&ds, &sim, k, Some(1));
        prop_assert_eq!(recall(&exact, &exact), 1.0);
        let empty = KnnGraph::from_neighbors(k, vec![Vec::new(); ds.num_users()]);
        let r = recall(&exact, &empty);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// The §VII RCS length cap yields exactly the prefix of the uncapped
    /// ranking — never a different selection — and the induced scan rate
    /// respects the `cap · |U|` bound.
    #[test]
    fn max_rcs_is_a_prefix(ds in arb_dataset(), cap in 1usize..12) {
        let full = build_rcs(&ds, &CountingConfig { threads: Some(1), ..Default::default() });
        let capped = build_rcs(&ds, &CountingConfig {
            threads: Some(1),
            max_rcs: Some(cap),
            ..Default::default()
        });
        for u in 0..ds.num_users() as u32 {
            let f = full.rcs(u);
            let c = capped.rcs(u);
            prop_assert!(c.len() <= cap);
            prop_assert_eq!(c, &f[..c.len()], "user {}", u);
        }
        prop_assert!(capped.total() <= cap * ds.num_users());
        // KIFF under the cap stays within the §III-D bound of the capped
        // RCSs.
        let sim = WeightedCosine::fit(&ds);
        let result = Kiff::new(KiffConfig::new(3).with_threads(1).with_max_rcs(cap))
            .run(&ds, &sim);
        prop_assert!(result.stats.sim_evals as usize <= capped.total());
    }
}
