//! Online-maintenance trajectory: `BENCH_online.json`.
//!
//! Streams the held-out 10% of an ML-4-like dataset (the shared
//! [`StreamScenario`]) through the `kiff-online` engine — one update at a
//! time and in amortised batches — and compares against rebuilding from
//! scratch. The machine-readable twin `BENCH_online.json` is the perf
//! baseline future PRs must beat.

use std::time::Instant;

use kiff_graph::{recall, KnnGraph};
use kiff_online::{OnlineConfig, OnlineKnn, Update};

use super::{Ctx, StreamScenario, STREAM_K};

const BATCH: usize = 100;

/// One replay mode's outcome.
struct Replay {
    label: &'static str,
    updates: u64,
    elapsed_s: f64,
    sim_evals_per_update: f64,
    repaired_edges_per_update: f64,
    recall_vs_exact: f64,
}

fn replay(sc: &StreamScenario, batch: usize, exact: &KnnGraph) -> Replay {
    let mut engine = OnlineKnn::from_graph(&sc.base, &sc.seed_graph, OnlineConfig::new(STREAM_K));
    let start = Instant::now();
    let updates = sc
        .held
        .iter()
        .map(|&(user, item, rating)| Update::AddRating { user, item, rating });
    if batch <= 1 {
        for update in updates {
            engine.apply(update);
        }
    } else {
        let all: Vec<Update> = updates.collect();
        for chunk in all.chunks(batch) {
            engine.apply_batch(chunk.iter().copied());
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let life = *engine.lifetime_stats();
    Replay {
        label: if batch <= 1 { "one-by-one" } else { "batched" },
        updates: life.updates,
        elapsed_s,
        sim_evals_per_update: life.sim_evals_per_update(),
        repaired_edges_per_update: life.edits_per_update(),
        recall_vs_exact: recall(exact, &engine.graph()),
    }
}

/// Runs the online-maintenance benchmark and writes `BENCH_online.json`.
pub fn online(ctx: &mut Ctx) -> String {
    let sc = ctx.stream_scenario();
    let runs = [replay(&sc, 1, &sc.exact), replay(&sc, BATCH, &sc.exact)];
    let rebuild_recall = sc.rebuild_recall;
    let rebuild_s = sc.rebuild_s;

    let mut out = String::new();
    out.push_str(&format!(
        "Online maintenance on {}: {} users, {} items, {} ratings ({} streamed)\n\
         full rebuild: {} sim evals in {rebuild_s:.3}s, recall {rebuild_recall:.4}\n\n",
        sc.full.name(),
        sc.full.num_users(),
        sc.full.num_items(),
        sc.full.num_ratings(),
        sc.held.len(),
        sc.rebuild_sim_evals,
    ));
    for r in &runs {
        out.push_str(&format!(
            "{:<10}: {:.0} updates/s, {:.1} sim evals/update ({:.0}x below rebuild), \
             {:.2} repaired edges/update, recall {:.4} ({:.3}x rebuild)\n",
            r.label,
            r.updates as f64 / r.elapsed_s.max(1e-9),
            r.sim_evals_per_update,
            sc.rebuild_sim_evals as f64 / r.sim_evals_per_update.max(1e-9),
            r.repaired_edges_per_update,
            r.recall_vs_exact,
            r.recall_vs_exact / rebuild_recall.max(1e-9),
        ));
        ctx.enforce_recall_floor(
            "online",
            r.label,
            r.recall_vs_exact / rebuild_recall.max(1e-9),
        );
    }
    out.push_str(
        "\nExpected shape: per-update work stays orders of magnitude below one \
         rebuild while recall lands within a few percent of it; batching trades \
         a little recall for amortised repair.\n",
    );

    let dataset_v = serde_json::json!({
        "name": sc.full.name(),
        "num_users": sc.full.num_users(),
        "num_items": sc.full.num_items(),
        "num_ratings": sc.full.num_ratings(),
        "streamed_updates": sc.held.len()
    });
    let rebuild_v = serde_json::json!({
        "sim_evals": sc.rebuild_sim_evals,
        "wall_time_s": rebuild_s,
        "recall": rebuild_recall
    });
    let runs_v: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "mode": r.label,
                "updates": r.updates,
                "updates_per_sec": r.updates as f64 / r.elapsed_s.max(1e-9),
                "sim_evals_per_update": r.sim_evals_per_update,
                "repaired_edges_per_update": r.repaired_edges_per_update,
                "recall": r.recall_vs_exact
            })
        })
        .collect();
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": STREAM_K,
        "rebuild": rebuild_v,
        "runs": runs_v
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_online.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_online.json: {e}"));
    }
    ctx.finish(
        "online",
        "Streaming maintenance vs rebuild (kiff-online)",
        out,
        &payload,
    )
}
