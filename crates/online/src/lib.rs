#![warn(missing_docs)]

//! Incremental KNN-graph maintenance under streaming rating updates.
//!
//! The KIFF pipeline of the paper is strictly batch: it counts shared
//! items over a frozen dataset, refines once, and stops. A serving system
//! receives a continuous stream of new ratings, new users, and deletions;
//! rebuilding the graph per update is intractable. This crate keeps a
//! KIFF-quality graph *live* instead (cf. Zhao's generic online
//! construction and Debatty's online NN-Descent in the related work):
//!
//! ```
//! use kiff_dataset::dataset::figure2_toy;
//! use kiff_online::{OnlineConfig, OnlineKnn, Update};
//!
//! let mut engine = OnlineKnn::new(&figure2_toy(), OnlineConfig::new(2));
//! // Carl picks up coffee — he becomes reachable from Alice and Bob.
//! let stats = engine.apply(Update::AddRating { user: 2, item: 1, rating: 1.0 });
//! assert!(stats.sim_evals > 0);
//! assert!(engine.neighbors(2).iter().any(|n| n.id == 0 || n.id == 1));
//! ```
//!
//! # Consistency model
//!
//! The engine is **eventually consistent with a bounded repair radius**:
//!
//! * The *dataset view* ([`kiff_dataset::DeltaDataset`]) and the live
//!   shared-item counters are always exact — counter maintenance touches
//!   precisely the co-raters of the touched item and is not approximated.
//! * The *graph* is repaired locally: the updated user is re-scored
//!   against its refreshed candidate-prefix (top [`OnlineConfig::repair_width`]
//!   by live shared-item count) plus its current and reverse neighbours;
//!   degradations then propagate through reverse edges (Debatty-style)
//!   until no heap changes, capped by [`OnlineConfig::max_propagation`].
//!   A single update can only change similarities incident to the updated
//!   user, so this radius recovers almost all of the batch recall at a
//!   small, bounded fraction of a rebuild's similarity evaluations.
//! * Storage re-compacts in batches: mutated profiles live in an overlay
//!   folded back into a fresh CSR when it covers
//!   [`OnlineConfig::compaction_threshold`] of the users.
//!
//! [`OnlineKnn::apply_batch`] amortises repair across many updates — the
//! realistic serving pattern — re-scoring each touched user once against
//! the batch-final state.
//!
//! # Scaling out
//!
//! [`ShardedOnlineKnn`] partitions users across shards (hash by default,
//! pluggable via [`Partitioner`]) and runs the counter and repair phases
//! on all shards in parallel, exchanging cross-shard heap and
//! reverse-edge edits through asynchronous message queues. Same
//! consistency model, `apply_batch` throughput scaling with cores.
//! Skewed streams are handled live: a [`RebalanceConfig`]-driven
//! rebalancer migrates users out of overloaded shards during quiescent
//! periods, and [`CommunityPartitioner`] co-locates co-raters to cut
//! cross-shard message volume (see [`sharded`] for the mechanics).

//!
//! # One façade over both engines
//!
//! Consumers that work with either engine — the serving daemon, the CLI
//! replay, the bench harness — dispatch through the object-safe
//! [`KnnEngine`] trait instead of duplicating per-engine code paths.

pub mod api;
pub mod config;
pub mod engine;
pub mod sharded;
pub mod update;

pub use api::{KnnEngine, ReadView};
pub use config::{OnlineConfig, OnlineMetric};
pub use engine::OnlineKnn;
pub use sharded::{
    CommunityPartitioner, HashPartitioner, ModuloPartitioner, Partitioner, RangePartitioner,
    RebalanceConfig, RebalanceStats, ShardConfig, ShardedOnlineKnn,
};
pub use update::{Update, UpdateStats};
