//! Counting-phase experiments: Tables IV–VII and Figs 6–7.

use std::time::Instant;

use kiff_core::{initial_rcs_graph, Kiff, KiffConfig};
use kiff_dataset::{paper_k, DatasetBuilder, PaperDataset};
use kiff_eval::table::{fmt_percent, Table};
use kiff_eval::{mean, spearman, Ccdf};
use kiff_graph::recall;
use kiff_similarity::{Jaccard, Similarity, WeightedCosine};

use super::Ctx;
use crate::runner::run_kiff;

/// Table IV: overhead of item-profile construction — time to build user
/// profiles alone versus user + item profiles, against KIFF's total time.
pub fn table4(ctx: &mut Ctx) -> String {
    let mut table = Table::new(&["Dataset", "(UP) ms", "(UP)&(IP) ms", "delta ms", "% total"]);
    let mut payload = Vec::new();
    for d in PaperDataset::ALL {
        let ds = ctx.dataset(d);
        let triples: Vec<(u32, u32, f32)> = ds.iter_ratings().collect();

        let t0 = Instant::now();
        let mut builder = DatasetBuilder::new(ds.name(), ds.num_users(), ds.num_items());
        builder.reserve(triples.len());
        for &(u, i, r) in &triples {
            builder.add_rating(u, i, r);
        }
        let rebuilt = builder.build();
        let up_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let _ip = rebuilt.build_item_profiles();
        let delta_ms = t1.elapsed().as_secs_f64() * 1e3;

        let total_s = run_kiff(&ds, ctx.opts(paper_k(d))).record.wall_time_s;
        table.push_row(&[
            d.name().to_string(),
            format!("{up_ms:.0}"),
            format!("{:.0}", up_ms + delta_ms),
            format!("{delta_ms:.0}"),
            fmt_percent(delta_ms / 1e3 / total_s),
        ]);
        payload.push((d.name().to_string(), up_ms, delta_ms, total_s));
    }
    let text = format!(
        "Table IV: overhead of item profile construction in KIFF\n\n{}\n(Paper: item profiles cost at most 1.9% of KIFF's total running time.)\n",
        table.render()
    );
    ctx.finish(
        "table4",
        "Overhead of item-profile construction (Table IV)",
        text,
        &payload,
    )
}

/// Table V: RCS construction time, share of KIFF's total time, average
/// |RCS| and the max scan rate the RCSs induce.
pub fn table5(ctx: &mut Ctx) -> String {
    let mut table = Table::new(&[
        "Dataset",
        "RCS const. ms",
        "% total",
        "avg |RCS|",
        "max scan rate",
    ]);
    let mut payload = Vec::new();
    for d in PaperDataset::ALL {
        let ds = ctx.dataset(d);
        let k = paper_k(d);
        let outcome = run_kiff(&ds, ctx.opts(k));
        let rcs = Kiff::new(KiffConfig::new(k)).counting_phase(&ds);
        let rcs_ms = rcs.build_time.as_secs_f64() * 1e3;
        table.push_row(&[
            d.name().to_string(),
            format!("{rcs_ms:.0}"),
            fmt_percent(rcs_ms / 1e3 / outcome.record.wall_time_s),
            format!("{:.1}", rcs.avg_len()),
            fmt_percent(rcs.max_scan_rate()),
        ]);
        payload.push((
            d.name().to_string(),
            rcs_ms,
            outcome.record.wall_time_s,
            rcs.avg_len(),
            rcs.max_scan_rate(),
        ));
    }
    let text = format!(
        "Table V: overhead of RCS construction & statistics\n\n{}\n(Paper: RCS construction is 7.5-13.1% of total time; the max scan rate closely \
         bounds the actual scan rate of Table II.)\n",
        table.render()
    );
    ctx.finish(
        "table5",
        "RCS construction overhead (Table V)",
        text,
        &payload,
    )
}

fn truncation_stats(ctx: &mut Ctx, d: PaperDataset) -> (usize, usize, f64, Vec<usize>) {
    let ds = ctx.dataset(d);
    let k = paper_k(d);
    let outcome = run_kiff(&ds, ctx.opts(k));
    let gamma = 2 * k;
    let cut = outcome.record.iterations * gamma;
    let rcs = Kiff::new(KiffConfig::new(k)).counting_phase(&ds);
    let sizes = rcs.sizes();
    let above = sizes.iter().filter(|&&s| s > cut).count();
    let frac = above as f64 / sizes.len().max(1) as f64;
    (outcome.record.iterations, cut, frac, sizes)
}

/// Table VI: iterations, the truncation size `|RCS|cut = #iters × γ`, and
/// the share of users whose RCS is truncated.
pub fn table6(ctx: &mut Ctx) -> String {
    let mut table = Table::new(&["Dataset", "#iters", "|RCS|cut", "%user |RCS|>cut"]);
    let mut payload = Vec::new();
    for d in PaperDataset::ALL {
        let (iters, cut, frac, _) = truncation_stats(ctx, d);
        table.push_row(&[
            d.name().to_string(),
            iters.to_string(),
            cut.to_string(),
            fmt_percent(frac),
        ]);
        payload.push((d.name().to_string(), iters, cut, frac));
    }
    let text = format!(
        "Table VI: impact of KIFF's termination mechanism\n\n{}\n(Paper: 4.8-16.2% of users have truncated RCSs.)\n",
        table.render()
    );
    ctx.finish("table6", "Impact of termination (Table VI)", text, &payload)
}

/// Fig. 6: CCDF of RCS sizes with the truncation cut-offs of Table VI.
pub fn fig6(ctx: &mut Ctx) -> String {
    let mut out = String::from("Fig. 6: CCDF of |RCS| with termination cut-offs\n");
    let mut payload = Vec::new();
    for d in PaperDataset::ALL {
        let (_, cut, frac, sizes) = truncation_stats(ctx, d);
        let ccdf = Ccdf::from_observations(&sizes);
        out.push_str(&format!(
            "\n-- {} (cut = {cut}, {} of users above) --\n",
            d.name(),
            fmt_percent(frac)
        ));
        let mut table = Table::new(&["x", "P(|RCS|>=x)"]);
        for x in [1u64, 10, 50, 100, 500, 1000, 5000, 10000] {
            table.push_row(&[x.to_string(), format!("{:.4}", ccdf.at(x))]);
        }
        table.push_row(&[format!("cut={cut}"), format!("{:.4}", ccdf.at(cut as u64))]);
        out.push_str(&table.render());
        payload.push((d.name().to_string(), cut, ccdf.log_samples(4)));
    }
    ctx.finish("fig6", "CCDF of RCS sizes (Fig. 6)", out, &payload)
}

/// Fig. 7: Spearman correlation between the RCS order (common-item counts)
/// and the cosine / Jaccard orders, for Wikipedia users with truncated
/// RCSs.
pub fn fig7(ctx: &mut Ctx) -> String {
    let d = PaperDataset::Wikipedia;
    let (_, table6_cut, _, sizes) = truncation_stats(ctx, d);
    let ds = ctx.dataset(d);
    let k = paper_k(d);
    let rcs = Kiff::new(KiffConfig::new(k)).counting_phase(&ds);
    let cosine = WeightedCosine::fit(&ds);

    // At reduced scales the termination cut can exceed every RCS (nothing
    // is truncated); fall back to the 90th-percentile RCS size so the
    // rank-correlation analysis still covers the heavy tail the paper
    // plots.
    let truncated_users = sizes.iter().filter(|&&s| s > table6_cut).count();
    let cut = if truncated_users >= 20 {
        table6_cut
    } else {
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        sorted[sorted.len() * 9 / 10]
    };

    let mut points: Vec<(usize, f64, f64)> = Vec::new();
    for u in 0..ds.num_users() as u32 {
        let size = rcs.len(u);
        if size <= cut {
            continue;
        }
        let ids = rcs.rcs(u);
        let counts: Vec<f64> = rcs
            .counts(u)
            .expect("counts kept")
            .iter()
            .map(|&c| f64::from(c))
            .collect();
        let cos: Vec<f64> = ids.iter().map(|&v| cosine.sim(&ds, u, v)).collect();
        let jac: Vec<f64> = ids.iter().map(|&v| Jaccard.sim(&ds, u, v)).collect();
        points.push((size, spearman(&counts, &cos), spearman(&counts, &jac)));
    }
    points.sort_unstable_by_key(|p| p.0);

    let avg_cos = mean(&points.iter().map(|p| p.1).collect::<Vec<_>>());
    let avg_jac = mean(&points.iter().map(|p| p.2).collect::<Vec<_>>());
    let mut out = format!(
        "Fig. 7: rank correlation between RCS order and final metrics\n\
         (Wikipedia users with |RCS| > cut = {cut}; {} users)\n\n\
         average Spearman vs cosine:  {avg_cos:.2}\n\
         average Spearman vs Jaccard: {avg_jac:.2}\n\
         (Paper: 0.63 for cosine, 0.60 for Jaccard, increasing with RCS size.)\n\n",
        points.len()
    );
    // Bucketed summary (the paper plots a point cloud vs RCS size).
    let mut table = Table::new(&["|RCS| bucket", "n", "Spearman cos", "Spearman jac"]);
    let mut lo = cut;
    while lo < cut * 8 {
        let hi = lo + cut / 2;
        let bucket: Vec<&(usize, f64, f64)> =
            points.iter().filter(|p| p.0 > lo && p.0 <= hi).collect();
        if !bucket.is_empty() {
            table.push_row(&[
                format!("{lo}-{hi}"),
                bucket.len().to_string(),
                format!(
                    "{:.2}",
                    mean(&bucket.iter().map(|p| p.1).collect::<Vec<_>>())
                ),
                format!(
                    "{:.2}",
                    mean(&bucket.iter().map(|p| p.2).collect::<Vec<_>>())
                ),
            ]);
        }
        lo = hi;
    }
    out.push_str(&table.render());
    ctx.finish("fig7", "RCS rank vs metric rank (Fig. 7)", out, &points)
}

/// Table VII: recall of the initial approximation — top-k from the
/// (unpivoted) RCS versus a random graph.
pub fn table7(ctx: &mut Ctx) -> String {
    let mut table = Table::new(&["Dataset", "Top k from RCS", "Random"]);
    let mut payload = Vec::new();
    for d in PaperDataset::ALL {
        let ds = ctx.dataset(d);
        let k = paper_k(d);
        let exact = ctx.ground_truth(d, k);
        let sim = WeightedCosine::fit(&ds);
        let init = initial_rcs_graph(&ds, &sim, k, ctx.threads);
        let random = kiff_baselines::random_graph(&ds, &sim, k, ctx.seed);
        let (r_init, r_rand) = (recall(&exact, &init), recall(&exact, &random));
        table.push_row(&[
            d.name().to_string(),
            format!("{r_init:.2}"),
            format!("{r_rand:.2}"),
        ]);
        payload.push((d.name().to_string(), r_init, r_rand));
    }
    let text = format!(
        "Table VII: impact of initialization method on initial recall\n\n{}\n(Paper: 0.54-0.82 from the RCS top-k vs 0.01-0.15 random.)\n",
        table.render()
    );
    ctx.finish(
        "table7",
        "Initial recall: RCS top-k vs random (Table VII)",
        text,
        &payload,
    )
}
