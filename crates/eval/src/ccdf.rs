//! Complementary cumulative distribution functions.
//!
//! Figs 4 and 6 plot `P(X ≥ x)` of profile and RCS sizes on log-x axes.

use serde::{Deserialize, Serialize};

/// An empirical CCDF over non-negative integer observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ccdf {
    /// Distinct observed values, ascending.
    values: Vec<u64>,
    /// `probability[i] = P(X ≥ values[i])`.
    probabilities: Vec<f64>,
    count: usize,
}

impl Ccdf {
    /// Builds the CCDF of `observations`.
    pub fn from_observations(observations: &[usize]) -> Self {
        let mut sorted: Vec<u64> = observations.iter().map(|&x| x as u64).collect();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut values = Vec::new();
        let mut probabilities = Vec::new();
        let mut i = 0;
        while i < n {
            let v = sorted[i];
            // P(X >= v) = fraction of observations at or after index i.
            values.push(v);
            probabilities.push((n - i) as f64 / n as f64);
            while i < n && sorted[i] == v {
                i += 1;
            }
        }
        Self {
            values,
            probabilities,
            count: n,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `P(X ≥ x)`.
    pub fn at(&self, x: u64) -> f64 {
        // First distinct value >= x carries the probability.
        match self.values.partition_point(|&v| v < x) {
            i if i < self.values.len() => self.probabilities[i],
            _ => 0.0,
        }
    }

    /// The `(value, P(X ≥ value))` support points, ascending in value.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values
            .iter()
            .copied()
            .zip(self.probabilities.iter().copied())
    }

    /// Samples the CCDF at logarithmically spaced x values (how the paper's
    /// figures are drawn), returning `(x, P(X ≥ x))` rows.
    pub fn log_samples(&self, points_per_decade: usize) -> Vec<(u64, f64)> {
        let max = match self.values.last() {
            Some(&m) if m >= 1 => m,
            _ => return vec![],
        };
        let mut out = Vec::new();
        let mut last_x = 0u64;
        let decades = (max as f64).log10().ceil() as usize + 1;
        for i in 0..=(decades * points_per_decade) {
            let x = 10f64.powf(i as f64 / points_per_decade as f64).round() as u64;
            if x == last_x || x > max {
                continue;
            }
            last_x = x;
            out.push((x, self.at(x)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_distribution() {
        let ccdf = Ccdf::from_observations(&[1, 2, 2, 4]);
        assert_eq!(ccdf.count(), 4);
        assert_eq!(ccdf.at(0), 1.0);
        assert_eq!(ccdf.at(1), 1.0);
        assert_eq!(ccdf.at(2), 0.75);
        assert_eq!(ccdf.at(3), 0.25);
        assert_eq!(ccdf.at(4), 0.25);
        assert_eq!(ccdf.at(5), 0.0);
    }

    #[test]
    fn monotone_nonincreasing() {
        let obs: Vec<usize> = (0..500).map(|i| (i * 7919) % 97).collect();
        let ccdf = Ccdf::from_observations(&obs);
        let probs: Vec<f64> = ccdf.points().map(|(_, p)| p).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(probs[0], 1.0);
    }

    #[test]
    fn log_samples_cover_range() {
        let obs: Vec<usize> = (1..=1000).collect();
        let ccdf = Ccdf::from_observations(&obs);
        let samples = ccdf.log_samples(3);
        assert!(samples.len() > 5);
        assert_eq!(samples[0].0, 1);
        assert!(samples.iter().all(|&(x, _)| x <= 1000));
        // x ascending, probabilities non-increasing.
        assert!(samples
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 >= w[1].1));
    }

    #[test]
    fn empty_observations() {
        let ccdf = Ccdf::from_observations(&[]);
        assert_eq!(ccdf.count(), 0);
        assert_eq!(ccdf.at(1), 0.0);
        assert!(ccdf.log_samples(5).is_empty());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// CCDF probabilities match the brute-force definition.
            #[test]
            fn matches_definition(obs in proptest::collection::vec(0usize..60, 1..200)) {
                let ccdf = Ccdf::from_observations(&obs);
                for x in 0u64..=61 {
                    let expected =
                        obs.iter().filter(|&&o| o as u64 >= x).count() as f64 / obs.len() as f64;
                    prop_assert!((ccdf.at(x) - expected).abs() < 1e-12, "x={x}");
                }
            }
        }
    }
}
