//! The public KIFF facade tying both phases together.

use std::time::Instant;

use kiff_dataset::Dataset;
use kiff_graph::KnnGraph;
use kiff_similarity::Similarity;

use crate::config::KiffConfig;
use crate::counting::{build_rcs, CountingConfig, RankedCandidates};
use crate::refine::{refine, IterationObserver, KiffStats, NoObserver};

/// A configured KIFF instance.
///
/// ```
/// use kiff_core::{Kiff, KiffConfig};
/// use kiff_dataset::dataset::figure2_toy;
/// use kiff_similarity::WeightedCosine;
///
/// let dataset = figure2_toy();
/// let result = Kiff::new(KiffConfig::new(1)).run(&dataset, &WeightedCosine::new());
/// assert_eq!(result.graph.neighbors(0)[0].id, 1); // Alice's 1-NN is Bob
/// assert!(result.stats.scan_rate <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Kiff {
    config: KiffConfig,
}

/// Output of a KIFF run: the approximate KNN graph plus instrumentation.
#[derive(Debug, Clone)]
pub struct KiffResult {
    /// The constructed graph.
    pub graph: KnnGraph,
    /// Phase timings, scan rate, iteration traces (§IV-C metrics).
    pub stats: KiffStats,
}

impl Kiff {
    /// Creates an instance with `config`.
    pub fn new(config: KiffConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KiffConfig {
        &self.config
    }

    /// Runs both phases on `dataset` under `sim`.
    pub fn run<S: Similarity + ?Sized>(&self, dataset: &Dataset, sim: &S) -> KiffResult {
        self.run_observed(dataset, sim, &mut NoObserver)
    }

    /// Runs both phases, invoking `observer` after every refinement
    /// iteration (used to trace convergence as in Fig. 8).
    pub fn run_observed<S: Similarity + ?Sized>(
        &self,
        dataset: &Dataset,
        sim: &S,
        observer: &mut dyn IterationObserver,
    ) -> KiffResult {
        let total_start = Instant::now();
        let tele = &self.config.telemetry;
        let total_span = tele.histogram("core.phase.total_ns").span();

        // Counting phase. Item profiles are timed separately (Table IV)
        // from RCS construction (Table V).
        let ip_start = Instant::now();
        {
            let _span = tele.histogram("core.phase.item_profiles_ns").span();
            let _ = dataset.item_profiles();
        }
        let item_profile_time = ip_start.elapsed();

        let rcs_span = tele.histogram("core.phase.rcs_ns").span();
        let rcs = build_rcs(
            dataset,
            &CountingConfig {
                pivot: true,
                keep_counts: false,
                threads: self.config.threads,
                strategy: self.config.count_strategy,
                rating_threshold: self.config.rating_threshold,
                max_rcs: self.config.max_rcs,
            },
        );
        rcs_span.finish();

        // Refinement phase.
        let (graph, mut stats) = refine(dataset, sim, &rcs, &self.config, observer);
        total_span.finish();
        stats.item_profile_time = item_profile_time;
        stats.rcs_time = rcs.build_time;
        stats.total_time = total_start.elapsed();
        KiffResult { graph, stats }
    }

    /// Runs only the counting phase (with counts kept), for the
    /// statistics-oriented experiments (Tables V/VI/IX, Figs 6/7).
    pub fn counting_phase(&self, dataset: &Dataset) -> RankedCandidates {
        build_rcs(
            dataset,
            &CountingConfig {
                pivot: true,
                keep_counts: true,
                threads: self.config.threads,
                strategy: self.config.count_strategy,
                rating_threshold: self.config.rating_threshold,
                max_rcs: self.config.max_rcs,
            },
        )
    }
}

/// One-call convenience: KIFF with the paper's defaults under weighted
/// cosine.
pub fn kiff_knn(dataset: &Dataset, k: usize) -> KnnGraph {
    let sim = kiff_similarity::WeightedCosine::fit(dataset);
    Kiff::new(KiffConfig::new(k)).run(dataset, &sim).graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_graph::{exact_knn, recall};
    use kiff_similarity::{Jaccard, WeightedCosine};

    #[test]
    fn facade_runs_end_to_end() {
        let ds = figure2_toy();
        let result = Kiff::new(KiffConfig::new(1)).run(&ds, &WeightedCosine::new());
        assert_eq!(result.graph.neighbors(0)[0].id, 1);
        assert!(result.stats.total_time >= result.stats.rcs_time);
    }

    #[test]
    fn default_parameters_reach_high_recall() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("hr", 61));
        let sim = WeightedCosine::fit(&ds);
        let result = Kiff::new(KiffConfig::new(10)).run(&ds, &sim);
        let exact = exact_knn(&ds, &sim, 10, None);
        let r = recall(&exact, &result.graph);
        // The paper reports 0.99 across datasets; on this small synthetic
        // workload the defaults should do at least as well.
        assert!(r > 0.95, "recall = {r}");
    }

    #[test]
    fn works_with_other_metrics() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("jac", 67));
        let result = Kiff::new(KiffConfig::new(5)).run(&ds, &Jaccard);
        let exact = exact_knn(&ds, &Jaccard, 5, None);
        let r = recall(&exact, &result.graph);
        assert!(r > 0.9, "recall = {r}");
    }

    #[test]
    fn kiff_knn_convenience() {
        let ds = figure2_toy();
        let graph = kiff_knn(&ds, 1);
        assert_eq!(graph.neighbors(2)[0].id, 3);
    }

    #[test]
    fn telemetry_registry_mirrors_stats() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("tele", 71));
        let sim = WeightedCosine::fit(&ds);
        let registry = kiff_telemetry::Registry::new();
        let result = Kiff::new(KiffConfig::new(5).with_telemetry(registry.clone())).run(&ds, &sim);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("core.refine.sims"),
            Some(result.stats.sim_evals),
            "registry sims disagree with KiffStats"
        );
        assert_eq!(
            snap.counter("core.refine.iterations"),
            Some(result.stats.iterations as u64)
        );
        assert_eq!(
            snap.counter("core.refine.heap_offers"),
            Some(2 * result.stats.sim_evals)
        );
        for phase in [
            "core.phase.item_profiles_ns",
            "core.phase.rcs_ns",
            "core.phase.refine_ns",
            "core.phase.total_ns",
        ] {
            assert_eq!(snap.histogram(phase).unwrap().count, 1, "{phase}");
        }
        // Prepared scoring routed through the instrumented workspaces.
        assert!(snap.counter("similarity.scores").unwrap_or(0) > 0);
        // A disabled registry records nothing but still runs correctly.
        let off = kiff_telemetry::Registry::disabled();
        let result2 = Kiff::new(KiffConfig::new(5).with_telemetry(off.clone())).run(&ds, &sim);
        assert_eq!(result2.stats.sim_evals, result.stats.sim_evals);
        assert_eq!(off.snapshot().counter("core.refine.sims"), Some(0));
    }

    #[test]
    fn counting_phase_exposes_counts() {
        let ds = figure2_toy();
        let rcs = Kiff::new(KiffConfig::new(1)).counting_phase(&ds);
        assert_eq!(rcs.counts(0).unwrap(), &[1]);
    }
}
