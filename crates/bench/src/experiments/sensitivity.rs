//! Sensitivity analyses: Table VIII (impact of `k`) and Fig. 9 (impact of
//! `γ`).

use kiff_dataset::{paper_k, reduced_k, PaperDataset};
use kiff_eval::table::{fmt_percent, fmt_secs, Table};

use super::Ctx;
use crate::runner::{compare_all, run_kiff_with};

/// Table VIII: all three algorithms with the reduced `k` (20 → 10, DBLP
/// 50 → 20). The greedy baselines speed up but lose substantial recall;
/// KIFF's recall is unaffected.
pub fn table8(ctx: &mut Ctx) -> String {
    let baseline = ctx.table2_records();
    let mut table = Table::new(&["Approach", "recall", "wall-time", "scan rate"]);
    let mut payload = Vec::new();
    for d in PaperDataset::ALL {
        let k_small = reduced_k(d);
        let ds = ctx.dataset(d);
        let exact = ctx.ground_truth(d, k_small);
        eprintln!("  table8: {} (k={k_small})", d.name());
        table.push_row(&[format!("[{} | k={k_small}]", d.name())]);
        for outcome in compare_all(&ds, ctx.opts(k_small), &exact) {
            let r = &outcome.record;
            // Change vs the paper-default k of Table II.
            let reference = baseline
                .iter()
                .find(|b| b.dataset == d.name() && b.algorithm == r.algorithm);
            let (d_recall, speed) = match reference {
                Some(b) => (r.recall - b.recall, b.wall_time_s / r.wall_time_s),
                None => (0.0, 1.0),
            };
            table.push_row(&[
                format!("  {}", r.algorithm),
                format!("{:.2} ({:+.2})", r.recall, d_recall),
                format!("{} (/{:.2})", fmt_secs(r.wall_time_s), speed),
                fmt_percent(r.scan_rate),
            ]);
            payload.push(r.clone());
        }
    }
    let text = format!(
        "Table VIII: impact of a smaller k (k=10, DBLP k=20); brackets show the \
         change vs Table II's k\n\n{}\n(Paper: NN-Descent/HyRec speed up 2.3-4.1x but lose 0.10-0.57 recall; \
         KIFF keeps recall 0.99 with a 1.1-1.4x speed-up.)\n",
        table.render()
    );
    ctx.finish("table8", "Impact of k (Table VIII)", text, &payload)
}

/// Fig. 9: KIFF wall-time as a function of `γ`.
pub fn fig9(ctx: &mut Ctx) -> String {
    let gammas = [5usize, 10, 20, 30, 40, 60, 80];
    let mut out = String::from("Fig. 9: impact of gamma on KIFF's wall-time\n\n");
    let mut payload = Vec::new();
    let mut table = Table::new(&[
        "Dataset", "g=5", "g=10", "g=20", "g=30", "g=40", "g=60", "g=80",
    ]);
    for d in PaperDataset::ALL {
        let ds = ctx.dataset(d);
        let k = paper_k(d);
        let mut cells = vec![d.name().to_string()];
        for &g in &gammas {
            let outcome = run_kiff_with(&ds, ctx.opts(k), Some(g), None);
            cells.push(fmt_secs(outcome.record.wall_time_s));
            payload.push((d.name().to_string(), g, outcome.record.wall_time_s));
        }
        table.push_row(&cells);
    }
    out.push_str(&table.render());
    out.push_str(
        "\n(Paper: wall-time varies little with gamma; very small gamma adds \
         iteration overhead.)\n",
    );
    ctx.finish(
        "fig9",
        "Impact of gamma on wall-time (Fig. 9)",
        out,
        &payload,
    )
}
