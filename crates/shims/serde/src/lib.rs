//! Workspace-local stand-in for `serde` (+ `serde_derive`).
//!
//! The offline build environment cannot fetch crates.io, so this crate
//! provides the slice of serde's surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (value-tree based, not the
//! upstream visitor architecture), a JSON-shaped [`Value`] tree, and the
//! derive macros for structs with named fields. The sibling `serde_json`
//! shim supplies text parsing/printing and the `json!` macro on top.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object entries preserve insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers round-trip up to 2^53).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup as deserialization demands it.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n == other)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error("expected bool".into()))
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    _ => Err(Error(format!(
                        "expected number, found {v:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error("expected string".into()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error("expected array".into())),
        }
    }
}

impl<K: fmt::Display, T: Serialize> Serialize for BTreeMap<K, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: fmt::Display, T: Serialize> Serialize for HashMap<K, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error("expected tuple array".into()))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error(format!(
                        "expected tuple of {expected}, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let v: Vec<(u32, u32, f32)> = vec![(1, 2, 0.5), (3, 4, 1.0)];
        let tree = v.to_value();
        let back: Vec<(u32, u32, f32)> = Deserialize::from_value(&tree).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![("id".into(), Value::String("table1".into()))]);
        assert_eq!(v["id"], "table1");
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        let back: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
        let back: Option<u32> = Deserialize::from_value(&Value::Number(3.0)).unwrap();
        assert_eq!(back, Some(3));
    }
}
